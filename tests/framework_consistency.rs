//! The packed production path must agree with the reference (float)
//! path: quantization may perturb scores slightly, but orderings with a
//! real margin survive.

use ctxrank::features::{InterestFeatures, RelevantTerms};
use ctxrank::framework::{
    GlobalTidTable, PackedInterestStore, PackedRelevanceStore, RuntimeRanker,
};
use ctxrank::ltr::{train, RankGroup, SvmConfig};
use ctxrank::text::stem;

fn features(freq: u64, wiki: u32) -> InterestFeatures {
    InterestFeatures {
        freq_exact: freq,
        freq_phrase_contained: freq * 2,
        unit_score: 0.5,
        searchengine_phrase: freq / 2,
        concept_size: 1,
        number_of_chars: 8,
        subconcepts: 0,
        high_level_type: 1,
        wiki_word_count: wiki,
    }
}

#[test]
fn packed_scores_match_reference_model() {
    // 20 concepts with spread-out features.
    let concepts: Vec<(String, InterestFeatures)> = (0..20)
        .map(|i| {
            (
                format!("concept{i}"),
                features(10 + i * 137, (i * 53) as u32),
            )
        })
        .collect();
    let interest = PackedInterestStore::build(&concepts);

    let mut tids = GlobalTidTable::new();
    let keyword_sets: Vec<(String, RelevantTerms)> = (0..20)
        .map(|i| {
            (
                format!("concept{i}"),
                RelevantTerms {
                    terms: (0..10)
                        .map(|j| (stem(&format!("keyword{}", (i + j) % 25)), 1.0 + j as f64))
                        .collect(),
                },
            )
        })
        .collect();
    let relevance = PackedRelevanceStore::build(
        keyword_sets.iter().map(|(s, rt)| (s.as_str(), rt)),
        &mut tids,
    );

    // A simple linear model over the 10 features.
    let groups: Vec<RankGroup> = (0..25)
        .map(|g| {
            RankGroup::from_pairs((0..4).map(|i| {
                let mut f = vec![0.0; 10];
                f[0] = (g * 4 + i) as f64 * 0.37 % 9.0;
                f[9] = i as f64;
                (f, 0.01 * (i + 1) as f64)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());

    let context_text = (0..25)
        .map(|j| format!("keyword{j}"))
        .collect::<Vec<_>>()
        .join(" ");
    let candidates: Vec<String> = concepts.iter().map(|(s, _)| s.clone()).collect();

    // Reference path: float features straight into the model.
    let context_stems: std::collections::HashSet<String> =
        ctxrank::text::stemmed_terms(&context_text)
            .into_iter()
            .collect();
    let mut reference: Vec<(String, f64)> = concepts
        .iter()
        .map(|(surface, feats)| {
            let mut f = feats.to_dense();
            let rel: f64 = keyword_sets
                .iter()
                .find(|(s, _)| s == surface)
                .map(|(_, rt)| rt.score_context(&context_stems))
                .unwrap_or(0.0);
            f.push(rel.ln_1p());
            (surface.clone(), model.score(&f))
        })
        .collect();
    reference.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    // Packed path.
    let ranker = RuntimeRanker::new(interest, relevance, tids, model);
    let packed = ranker.rank(&context_text, &candidates);

    // Scores agree within a small tolerance concept by concept.
    for p in &packed {
        let r = reference
            .iter()
            .find(|(s, _)| s == &p.surface)
            .expect("concept in reference");
        assert!(
            (p.score - r.1).abs() < 0.05,
            "{}: packed {} vs reference {}",
            p.surface,
            p.score,
            r.1
        );
    }

    // Orderings with real margins are preserved: compare top-5 sets.
    let top_packed: std::collections::HashSet<&str> =
        packed.iter().take(5).map(|p| p.surface.as_str()).collect();
    let top_ref: std::collections::HashSet<&str> =
        reference.iter().take(5).map(|(s, _)| s.as_str()).collect();
    let overlap = top_packed.intersection(&top_ref).count();
    assert!(overlap >= 4, "top-5 overlap only {overlap}");
}
