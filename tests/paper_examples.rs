//! The paper's worked examples, checked through the public API.

use ctxrank::eval::{ndcg_at_k, pair_stats, weighted_pair_stats};
use ctxrank::text::{sentences, stem, tokenize};

/// §V-A.2: CTRs [(A,.15),(B,.05),(C,.02),(D,.01)]; R1=[A,B,D,C] and
/// R2=[B,A,C,D] both make one pairwise mistake (16.67%), but weighted
/// error rates are 2.22% and 22.22%.
#[test]
fn weighted_error_rate_worked_example() {
    let ctrs = [0.15, 0.05, 0.02, 0.01];
    let r1 = [4.0, 3.0, 1.0, 2.0];
    let r2 = [3.0, 4.0, 2.0, 1.0];

    assert!((pair_stats(&r1, &ctrs).rate() - 1.0 / 6.0).abs() < 1e-9);
    assert!((pair_stats(&r2, &ctrs).rate() - 1.0 / 6.0).abs() < 1e-9);
    assert!((weighted_pair_stats(&r1, &ctrs).rate() - 0.022222).abs() < 1e-4);
    assert!((weighted_pair_stats(&r2, &ctrs).rate() - 0.222222).abs() < 1e-4);
}

/// §V-A.2: with score(j) = CTR(j)·10, ndcg@1 is 1.0 for R1 and 0.23 for
/// R2; @2 = 1.0/0.75; @3 = 0.98/0.76.
#[test]
fn ndcg_worked_example() {
    let ctrs = [0.15f64, 0.05, 0.02, 0.01];
    let gains: Vec<f64> = ctrs.iter().map(|c| 2f64.powf(c * 10.0) - 1.0).collect();
    let r1 = [4.0, 3.0, 1.0, 2.0];
    let r2 = [3.0, 4.0, 2.0, 1.0];
    assert!((ndcg_at_k(&r1, &gains, 1) - 1.0).abs() < 1e-9);
    assert!((ndcg_at_k(&r2, &gains, 1) - 0.2266).abs() < 0.002);
    assert!((ndcg_at_k(&r2, &gains, 2) - 0.75).abs() < 0.01);
    assert!((ndcg_at_k(&r1, &gains, 3) - 0.98).abs() < 0.005);
    assert!((ndcg_at_k(&r2, &gains, 3) - 0.76).abs() < 0.005);
}

/// The §I example snippet: pre-processing keeps "Sen. Clinton" inside
/// one sentence and tokenizes the named entities cleanly.
#[test]
fn introduction_snippet_preprocessing() {
    let text = "President Bush's position was similar to that of New York Sen. \
                Clinton, who argued at a debate with Obama last week in Texas that \
                there should be no talks with Cuba until it makes progress on \
                releasing political prisoners and improving human rights.";
    // One sentence: the Sen. abbreviation must not split it.
    assert_eq!(sentences(text).len(), 1);
    let tokens: Vec<&str> = tokenize(text).into_iter().map(|t| t.text).collect();
    for entity in ["Bush's", "Clinton", "Obama", "Texas", "Cuba"] {
        assert!(tokens.contains(&entity), "{entity} missing from {tokens:?}");
    }
}

/// §IV-B works on stemmed terms: "releasing political prisoners" and
/// "release political prisoner" collide after stemming.
#[test]
fn relevance_mining_stems_collide() {
    assert_eq!(stem("releasing"), stem("release"));
    assert_eq!(stem("prisoners"), stem("prisoner"));
    assert_eq!(stem("improving"), stem("improve"));
}

/// The paper's memory arithmetic (§VI): 9 fields × 2 bytes = 18 B per
/// concept; 100 pairs × 32 bits = 400 B per concept; TIDs fit 22 bits.
#[test]
fn framework_arithmetic() {
    assert_eq!(ctxrank::framework::MAX_TID, (1 << 22) - 1);
    assert_eq!(ctxrank::features::InterestFeatures::DIM * 2, 18);
    assert_eq!(ctxrank::framework::relstore::MAX_KEYWORDS * 4, 400);
    assert_eq!(ctxrank::framework::relstore::MAX_QSCORE, 1023);
}
