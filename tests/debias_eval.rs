//! Pinned-seed smoke for the position-bias debiasing experiment — the
//! same configuration the perf report's `debias_eval` rows run, so the
//! CI gate on `BENCH_throughput.json` and this test assert one fact:
//! on a PBM-biased log the IPW adjuster beats the naive adjuster on
//! golden NDCG (exact sign test, p < 0.05), and on an unbiased log the
//! two arms tie.

use ctxrank_bench::{run_debias_experiment, DebiasConfig};
use ctxrank_eval::DebiasVerdict;

#[test]
fn pinned_seed_pbm_log_ipw_beats_naive() {
    let report = run_debias_experiment(&DebiasConfig::default());
    assert_eq!(report.mode, "pbm");
    assert_eq!(report.stories, 120);
    assert_eq!(report.events, 120 * 48 * 8);
    assert_eq!(
        report.outcome.verdict,
        DebiasVerdict::Win,
        "sign test: {:?}",
        report.outcome.sign_test
    );
    assert!(report.outcome.sign_test.p_value < 0.05);
    assert!(
        report.outcome.mean_ndcg_treatment > report.outcome.mean_ndcg_control,
        "ipw {} vs naive {}",
        report.outcome.mean_ndcg_treatment,
        report.outcome.mean_ndcg_control
    );
    // The EM curve recovered a decaying examination profile without
    // ever seeing a relevance label.
    let fitted = &report.fitted_propensities;
    assert_eq!(fitted.len(), 8);
    assert!((fitted[0] - 1.0).abs() < 1e-12, "normalized to rank 0");
    assert!(fitted[7] < 0.5 * fitted[0], "{fitted:?}");
}

#[test]
fn pinned_seed_unbiased_log_ties() {
    let report = run_debias_experiment(&DebiasConfig {
        biased: false,
        ..DebiasConfig::default()
    });
    assert_eq!(report.mode, "unbiased");
    assert_eq!(report.outcome.verdict, DebiasVerdict::Tie);
    assert!(report.outcome.sign_test.p_value >= 0.05);
    // Without bias the fitted curve stays near-flat: no rank loses more
    // than a sliver of examination.
    for &rel in &report.fitted_propensities {
        assert!(rel > 0.8, "{:?}", report.fitted_propensities);
    }
}
