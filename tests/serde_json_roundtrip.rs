//! Property tests for the vendored `serde_json` string fast paths.
//!
//! `write_escaped` emits maximal unescaped runs with one `push_str`,
//! and `Parser::string` scans to the next quote/backslash and validates
//! UTF-8 once per run. Both are equivalence-checked here against the
//! obvious one-char-at-a-time implementations over seeded random
//! strings mixing ASCII, multi-byte UTF-8, control characters and the
//! escape-relevant punctuation.

use serde_json::Value;

/// Deterministic xorshift64* stream for the generators.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One random char, biased toward the cases the fast paths branch on.
fn random_char(rng: &mut Rng) -> char {
    match rng.below(8) {
        // Plain ASCII: the bulk-run case.
        0..=2 => (b' ' + rng.below(95) as u8) as char,
        // The characters that force an escape.
        3 => *['"', '\\', '\n', '\r', '\t']
            .get(rng.below(5) as usize)
            .unwrap(),
        // Control characters → \uXXXX.
        4 => char::from_u32(rng.below(0x20) as u32).unwrap(),
        // Two-to-four-byte UTF-8: accents, CJK, emoji.
        5 => *['é', 'ß', '中', '語', '🚀', '😀', '𝕊', '\u{0301}']
            .get(rng.below(8) as usize)
            .unwrap(),
        // Arbitrary scalar values (skipping the surrogate gap).
        _ => loop {
            if let Some(c) = char::from_u32((rng.below(0x11_0000)) as u32) {
                break c;
            }
        },
    }
}

fn random_string(rng: &mut Rng, max_len: u64) -> String {
    let len = rng.below(max_len + 1);
    (0..len).map(|_| random_char(rng)).collect()
}

/// The textbook escaper `write_escaped` must agree with: one match per
/// char, no run batching.
fn naive_escape(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[test]
fn escape_matches_the_naive_slow_path() {
    let mut rng = Rng::new(0x5EED_0001);
    for _ in 0..500 {
        let s = random_string(&mut rng, 120);
        let fast = serde_json::to_string(&Value::Str(s.clone())).expect("serialize");
        assert_eq!(fast, naive_escape(&s), "input: {s:?}");
    }
}

#[test]
fn strings_round_trip_through_parse() {
    let mut rng = Rng::new(0x5EED_0002);
    for _ in 0..500 {
        let s = random_string(&mut rng, 120);
        let json = serde_json::to_string(&Value::Str(s.clone())).expect("serialize");
        let back: Value = serde_json::from_str(&json).expect("parse back");
        assert_eq!(back.as_str(), Some(s.as_str()), "json: {json}");
    }
}

/// Escaped and raw spellings of the same string must parse
/// identically — this is the `\uXXXX` decode path against the bulk
/// raw-scan path.
#[test]
fn unicode_escapes_agree_with_raw_utf8() {
    let cases = [
        ("\"\\u0041\\u0042\"", "AB"),
        ("\"\\u00e9\"", "\u{e9}"),
        ("\"\\u4e2d\\u6587\"", "\u{4e2d}\u{6587}"),
        // Surrogate pair -> one astral scalar.
        ("\"\\ud83d\\ude00\"", "\u{1f600}"),
        ("\"\\u0000\"", "\u{0}"),
        // Raw multi-byte UTF-8 through the bulk scan.
        ("\"\u{e9}\u{4e2d}\u{1f600}\"", "\u{e9}\u{4e2d}\u{1f600}"),
        // Lone surrogates decode to U+FFFD instead of failing.
        ("\"\\ud800\"", "\u{FFFD}"),
        ("\"\\udc00x\"", "\u{FFFD}x"),
    ];
    for (json, want) in cases {
        let v: Value = serde_json::from_str(json).expect(json);
        assert_eq!(v.as_str(), Some(want), "json: {json}");
    }
}

/// The fast paths also sit under object keys and nested values.
#[test]
fn objects_with_hostile_keys_round_trip() {
    let mut rng = Rng::new(0x5EED_0003);
    for _ in 0..100 {
        let key = random_string(&mut rng, 40);
        let val = random_string(&mut rng, 80);
        let obj = Value::Map(vec![(key.clone(), Value::Str(val.clone()))]);
        let json = serde_json::to_string(&obj).expect("serialize");
        let back: Value = serde_json::from_str(&json).expect("parse back");
        let Value::Map(entries) = back else {
            panic!("not an object: {json}");
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, key);
        assert_eq!(entries[0].1.as_str(), Some(val.as_str()));
    }
}
