//! Deterministic fault-injection harness for the persist → publish →
//! serve path (see DESIGN.md §11).
//!
//! Every test resolves its seed through `CTXRANK_FAULT_SEED` and prints
//! it on entry, so any failure in CI is replayed locally with
//! `CTXRANK_FAULT_SEED=<seed> cargo test --test fault_injection`.
//!
//! The invariants, everywhere:
//!
//! * injected corruption surfaces as a typed [`PersistError`] or an
//!   HTTP error status — never a panic, never a hang;
//! * a save that dies mid-way never clobbers the previous good
//!   manifest: the directory stays loadable;
//! * the served epoch never regresses, and every `/rank` response is
//!   consistent with exactly the snapshot its epoch names;
//! * with an empty [`FaultPlan`], behavior is bit-for-bit the
//!   happy path.

use ctxrank_faultsim::net::{
    send_oversized, send_partial_request, send_slowloris, send_then_vanish, ChaosProxy, NetOutcome,
};
use ctxrank_faultsim::{seed_from_env, FaultKind, FaultPlan, FaultyFs};
use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::persist::{
    load_service, load_service_with, load_snapshot, load_snapshot_with, save_service,
    save_service_with, save_snapshot, save_snapshot_legacy, save_snapshot_with, PersistError,
    PersistFs,
};
use ctxrank_framework::{
    partition_snapshot, GlobalTidTable, PackedInterestStore, PackedRelevanceStore, ServiceHandle,
    Snapshot, SnapshotBuilder,
};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_querylog::{Event, SegmentConfig, SegmentFs, SegmentStore, StdSegmentFs};
use ctxrank_router::{RouterConfig, ScatterGather, ShardSpec};
use ctxrank_serve::client::{one_shot, request_with_retry, ClientConfig, Conn};
use ctxrank_serve::{render_rank_response, ServeConfig, Server};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------- helpers

/// A per-test scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "ctxrank-faultsim-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Print the resolved seed so a CI failure is replayable verbatim.
fn announce(test: &str, seed: u64) {
    eprintln!("{test}: seed = {seed} (replay with CTXRANK_FAULT_SEED={seed})");
}

/// Same distinguishable-snapshot builder as the serve integration
/// tests: the probe text scores ~`weight`, so `(epoch, relevance)`
/// pairs identify which snapshot served a response.
fn snapshot(weight: f64) -> Arc<Snapshot> {
    let interest = PackedInterestStore::build(&[(
        "solar flares".to_string(),
        InterestFeatures {
            freq_exact: 100,
            ..InterestFeatures::default()
        },
    )]);
    let mut tids = GlobalTidTable::new();
    let kw = RelevantTerms {
        terms: vec![(ctxrank_text::stem("sunspot"), weight)],
    };
    let relevance = PackedRelevanceStore::build(vec![("solar flares", &kw)], &mut tids);
    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[9] = (g + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("test snapshot")
}

const PROBE_TEXT: &str = "sunspot radiation from the telescope";
const RANK_BODY: &str =
    r#"{"text": "sunspot radiation from the telescope", "candidates": ["solar flares"]}"#;

/// The probe relevance a handle currently serves (exactly what `/rank`
/// reports for `RANK_BODY`, modulo JSON float formatting).
fn probe(handle: &ServiceHandle) -> f64 {
    let ranked = handle.rank(PROBE_TEXT, &["solar flares".to_string()]);
    assert_eq!(ranked.len(), 1);
    ranked[0].relevance
}

fn parse_rank_response(body: &str) -> (u64, f64) {
    let v: serde_json::Value = serde_json::from_str(body).expect("response JSON");
    let epoch = v.get("epoch").and_then(|e| e.as_u64()).expect("epoch");
    let results = match v.get("results") {
        Some(serde_json::Value::Seq(items)) => items,
        other => panic!("malformed results: {other:?}"),
    };
    assert_eq!(results.len(), 1, "one candidate in, one result out");
    let relevance = results[0]
        .get("relevance")
        .and_then(|r| r.as_f64())
        .expect("relevance");
    assert!(results[0].get("surface").and_then(|s| s.as_str()) == Some("solar flares"));
    (epoch, relevance)
}

// ------------------------------------------------------------- persist

/// The acceptance sweep: 200 seeded iterations at a 10% injection rate.
/// A faulty save over a good directory must never leave it unloadable
/// (the manifest is the commit point), and a faulty load must return
/// `Ok` or a typed [`PersistError`] — zero panics, zero aborts.
#[test]
fn persist_sweep_survives_200_seeded_iterations() {
    let base = seed_from_env(0xC0FF_EE00);
    announce("persist_sweep", base);

    let mut save_failures = 0u32;
    let mut save_successes = 0u32;
    let mut load_failures = 0u32;
    for iter in 0..200u64 {
        let seed = base.wrapping_add(iter);
        let dir = TempDir::new("sweep");

        // A known-good directory.
        let good = Arc::new(ServiceHandle::new(snapshot(10.0)));
        save_service(&good, dir.path()).expect("clean save");

        // A faulty save of a *newer* snapshot on top of it.
        let next = Arc::new(ServiceHandle::new(snapshot(20.0)));
        let fs = FaultyFs::new(Arc::new(FaultPlan::new(seed, 100)));
        match save_service_with(&next, dir.path(), &fs) {
            Ok(()) => save_successes += 1,
            Err(e) => {
                // Typed, displayable, never a panic.
                let _ = e.to_string();
                save_failures += 1;
            }
        }

        // Whatever happened above, the directory must still load
        // cleanly, as either the old or the new epoch — per-file
        // atomicity plus manifest-last makes anything else a bug.
        let reloaded = load_service(dir.path())
            .unwrap_or_else(|e| panic!("seed {seed}: faulty save clobbered the directory: {e}"));
        assert!(
            reloaded.epoch() == good.epoch() || reloaded.epoch() == next.epoch(),
            "seed {seed}: reloaded epoch {} is neither {} nor {}",
            reloaded.epoch(),
            good.epoch(),
            next.epoch()
        );

        // A faulty *load* of the same directory: Ok or typed error.
        let fs = FaultyFs::new(Arc::new(FaultPlan::new(seed ^ 0xA5A5_A5A5, 100)));
        match load_service_with(dir.path(), &fs) {
            Ok(h) => {
                let _ = probe(&h);
            }
            Err(e @ (PersistError::Io { .. } | PersistError::Corrupt { .. })) => {
                let _ = e.to_string();
                load_failures += 1;
            }
        }
    }
    eprintln!(
        "persist_sweep: {save_failures} save failures, {save_successes} save successes, \
         {load_failures} load failures over 200 iterations"
    );
    // At a 10% per-operation rate the schedule must actually have hit
    // all three regimes; all-zero means injection is broken.
    assert!(save_failures > 0, "no save ever failed at 10% injection");
    assert!(
        save_successes > 0,
        "no save ever succeeded at 10% injection"
    );
    assert!(load_failures > 0, "no load ever failed at 10% injection");
}

/// An empty plan is the identity: persist through `FaultyFs` must be
/// byte-equivalent to persist through `StdFs`.
#[test]
fn empty_plan_changes_nothing() {
    let dir = TempDir::new("identity");
    let handle = Arc::new(ServiceHandle::new(snapshot(30.0)));
    let clean_score = probe(&handle);

    let fs = FaultyFs::new(Arc::new(FaultPlan::empty()));
    save_service_with(&handle, dir.path(), &fs).expect("save under empty plan");
    let via_faultsim = load_service_with(dir.path(), &fs).expect("load under empty plan");
    let via_std = load_service(dir.path()).expect("load via StdFs");

    assert_eq!(via_faultsim.epoch(), via_std.epoch());
    assert_eq!(via_faultsim.epoch(), handle.epoch());
    assert_eq!(probe(&via_faultsim), clean_score);
    assert_eq!(probe(&via_std), clean_score);
}

// --------------------------------------------------------- arena format

/// The arena-format acceptance sweep: 200 seeded iterations of torn
/// writes against `snapshot.ctxr` followed by bit flips / truncation
/// on the read side. On every seed:
///
/// * a torn save never clobbers the committed arena file — the
///   `.tmp` → rename commit means a clean load always sees exactly the
///   previous good snapshot or the new one, never a prefix;
/// * a faulty load returns the intact snapshot or a typed
///   [`PersistError`] — the whole-file checksum means a flipped bit
///   can never decode into silently wrong data.
#[test]
fn arena_sweep_torn_writes_and_bit_flips_over_snapshot_ctxr() {
    let base = seed_from_env(0xDEAD_BEEF);
    announce("arena_sweep", base);

    let good = snapshot(10.0);
    let next = snapshot(20.0);
    let good_score = probe(&ServiceHandle::new(Arc::clone(&good)));
    let next_score = probe(&ServiceHandle::new(Arc::clone(&next)));
    let expected = |epoch: u64, seed: u64| {
        if epoch == good.epoch() {
            good_score
        } else if epoch == next.epoch() {
            next_score
        } else {
            panic!("seed {seed}: loaded epoch {epoch} is neither good nor next");
        }
    };

    let mut torn_saves = 0u32;
    let mut clean_saves = 0u32;
    let mut faulted_loads = 0u32;
    let mut intact_loads = 0u32;
    for iter in 0..200u64 {
        let seed = base.wrapping_add(iter);
        let dir = TempDir::new("arena");

        // A committed good arena file.
        save_snapshot(&good, dir.path()).expect("clean arena save");
        assert!(
            dir.path().join("snapshot.ctxr").exists(),
            "arena save must produce snapshot.ctxr"
        );

        // Tear the save of a newer snapshot on top of it. Write faults
        // only, so every failure here is a torn `snapshot.ctxr.tmp`.
        let fs = FaultyFs::new(Arc::new(FaultPlan::with_kinds(
            seed,
            250,
            &[],
            &[FaultKind::TornWrite],
        )));
        match save_snapshot_with(&next, dir.path(), &fs) {
            Ok(()) => clean_saves += 1,
            Err(e) => {
                let _ = e.to_string();
                torn_saves += 1;
            }
        }

        // Clean load: exactly one of the two good snapshots, with the
        // relevance that snapshot actually computes.
        let loaded = load_snapshot(dir.path())
            .unwrap_or_else(|e| panic!("seed {seed}: torn save clobbered the arena file: {e}"));
        let score = probe(&ServiceHandle::new(Arc::clone(&loaded)));
        let want = expected(loaded.epoch(), seed);
        assert!(
            (score - want).abs() < 0.5,
            "seed {seed}: epoch {} served {score}, want ~{want}",
            loaded.epoch()
        );

        // Faulty load of the committed file: bit flips, truncation and
        // short reads. `Ok` must be byte-intact (registered score),
        // anything else a typed error — never a panic, never a wrong
        // score.
        let fs = FaultyFs::new(Arc::new(FaultPlan::with_kinds(
            seed ^ 0x0BAD_F00D,
            250,
            &[FaultKind::BitFlip, FaultKind::Eof, FaultKind::ShortRead],
            &[],
        )));
        match load_snapshot_with(dir.path(), &fs) {
            Ok(s) => {
                intact_loads += 1;
                let score = probe(&ServiceHandle::new(Arc::clone(&s)));
                let want = expected(s.epoch(), seed);
                assert!(
                    (score - want).abs() < 0.5,
                    "seed {seed}: faulted load decoded silently wrong data \
                     (epoch {} served {score}, want ~{want})",
                    s.epoch()
                );
            }
            Err(e @ (PersistError::Io { .. } | PersistError::Corrupt { .. })) => {
                let _ = e.to_string();
                faulted_loads += 1;
            }
        }
    }
    eprintln!(
        "arena_sweep: {torn_saves} torn saves, {clean_saves} clean saves, \
         {faulted_loads} rejected loads, {intact_loads} intact loads over 200 iterations"
    );
    // The schedule must actually have hit all four regimes; an all-zero
    // counter means the sweep is not exercising what it claims to.
    assert!(torn_saves > 0, "no save was ever torn at 25% injection");
    assert!(clean_saves > 0, "no save ever survived at 25% injection");
    assert!(
        faulted_loads > 0,
        "no load was ever rejected at 25% injection"
    );
    assert!(intact_loads > 0, "no load ever survived at 25% injection");
}

/// The propensity-table acceptance sweep: 200 seeded iterations of
/// torn writes against a service save carrying a propensity table,
/// followed by deterministic bit flips over the committed
/// `propensity.bin`. On every seed:
///
/// * a torn save never leaves a mixed table — a clean load sees
///   exactly the old table or the new one, byte-identical (each
///   component file commits via tmp → rename);
/// * a single flipped bit in `propensity.bin` *always* surfaces as
///   `PersistError::Corrupt { file: "propensity.bin" }` — the table
///   is IPW weights, so a silently skewed load would corrupt every
///   subsequent click estimate (the failure mode the binary
///   checksummed codec exists to kill).
#[test]
fn propensity_sweep_torn_writes_and_bit_flips_never_skew_the_table() {
    use ctxrank_framework::PropensityTable;

    let base = seed_from_env(0xDEB1_A5ED);
    announce("propensity_sweep", base);

    let table_a =
        PropensityTable::from_examination(&[1.0, 0.5, 0.25, 0.125], 10.0).expect("table a");
    let table_b =
        PropensityTable::from_examination(&[1.0, 0.8, 0.6, 0.4, 0.2], 8.0).expect("table b");

    let mut torn_saves = 0u32;
    let mut clean_saves = 0u32;
    let mut flips_rejected = 0u32;
    for iter in 0..200u64 {
        let seed = base.wrapping_add(iter);
        let dir = TempDir::new("propensity");

        // A committed good save with table A installed.
        let good = Arc::new(ServiceHandle::new(snapshot(10.0)));
        good.install_propensities(table_a.clone());
        save_service(&good, dir.path()).expect("clean save");
        let bin = dir.path().join("propensity.bin");
        assert!(bin.exists(), "save with a table must write propensity.bin");

        // Tear the save of a newer state (table B) on top of it.
        let next = Arc::new(ServiceHandle::new(snapshot(20.0)));
        next.install_propensities(table_b.clone());
        let fs = FaultyFs::new(Arc::new(FaultPlan::with_kinds(
            seed,
            250,
            &[],
            &[FaultKind::TornWrite],
        )));
        match save_service_with(&next, dir.path(), &fs) {
            Ok(()) => clean_saves += 1,
            Err(e) => {
                let _ = e.to_string();
                torn_saves += 1;
            }
        }

        // Whatever the tear did, a clean load must see exactly one of
        // the two real tables — never a prefix, never a blend.
        let reloaded = load_service(dir.path())
            .unwrap_or_else(|e| panic!("seed {seed}: torn save clobbered the directory: {e}"));
        let loaded_table = reloaded
            .adjuster_state()
            .propensities()
            .cloned()
            .unwrap_or_else(|| panic!("seed {seed}: reload lost the propensity table"));
        assert!(
            loaded_table == table_a || loaded_table == table_b,
            "seed {seed}: loaded table matches neither saved table: {loaded_table:?}"
        );

        // Deterministic bit flip over the committed propensity bytes:
        // the load must reject with a typed Corrupt naming the file.
        let clean_bytes = std::fs::read(&bin).expect("read propensity.bin");
        let bit = (seed as usize) % (clean_bytes.len() * 8);
        let mut flipped = clean_bytes.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&bin, &flipped).expect("write flipped bytes");
        match load_service(dir.path()) {
            Err(PersistError::Corrupt { file, detail }) => {
                assert_eq!(
                    file, "propensity.bin",
                    "seed {seed}: corruption attributed to the wrong file"
                );
                assert!(!detail.is_empty());
                flips_rejected += 1;
            }
            Err(other) => panic!("seed {seed}: bit flip surfaced as non-Corrupt: {other}"),
            Ok(h) => {
                // The only acceptable Ok is a flip the codec provably
                // cannot see — there is none: every byte of the format
                // is covered by magic, length, payload or checksum.
                let t = h.adjuster_state().propensities().cloned();
                panic!("seed {seed}: flipped bit {bit} loaded silently (table {t:?})");
            }
        }

        // Restoring the clean bytes restores the load, byte-identical.
        std::fs::write(&bin, &clean_bytes).expect("restore clean bytes");
        let restored = load_service(dir.path()).expect("restored load");
        let restored_table = restored
            .adjuster_state()
            .propensities()
            .cloned()
            .expect("restored table");
        assert_eq!(restored_table.encode(), loaded_table.encode());
    }
    eprintln!(
        "propensity_sweep: {torn_saves} torn saves, {clean_saves} clean saves, \
         {flips_rejected} rejected bit flips over 200 iterations"
    );
    assert!(torn_saves > 0, "no save was ever torn at 25% injection");
    assert!(clean_saves > 0, "no save ever survived at 25% injection");
    assert_eq!(flips_rejected, 200, "every single bit flip must be caught");
}

/// The legacy directory format and the arena file are two encodings of
/// the same snapshot: loading either must produce identical epochs and
/// identical rank output.
#[test]
fn legacy_and_arena_loads_agree_on_rank() {
    let legacy_dir = TempDir::new("parity-legacy");
    let arena_dir = TempDir::new("parity-arena");
    let snap = snapshot(40.0);

    save_snapshot_legacy(&snap, legacy_dir.path()).expect("legacy save");
    save_snapshot(&snap, arena_dir.path()).expect("arena save");
    assert!(
        !legacy_dir.path().join("snapshot.ctxr").exists(),
        "legacy save must not write the arena file"
    );

    let via_legacy = load_snapshot(legacy_dir.path()).expect("legacy load");
    let via_arena = load_snapshot(arena_dir.path()).expect("arena load");
    assert_eq!(via_legacy.epoch(), via_arena.epoch());
    assert_eq!(via_legacy.epoch(), snap.epoch());

    let legacy_handle = ServiceHandle::new(via_legacy);
    let arena_handle = ServiceHandle::new(via_arena);
    assert_eq!(probe(&legacy_handle), probe(&arena_handle));
    // Full rank output, not just the probe: same candidates, same
    // order, same scores, bit for bit.
    let candidates = vec!["solar flares".to_string(), "unknown concept".to_string()];
    let a = legacy_handle.rank(PROBE_TEXT, &candidates);
    let b = arena_handle.rank(PROBE_TEXT, &candidates);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.surface, y.surface);
        assert_eq!(x.score, y.score);
        assert_eq!(x.relevance, y.relevance);
    }
}

// --------------------------------------------------------------- serve

/// Hostile clients — slowloris, partial request, oversized payload,
/// vanish mid-request — against a live server, interleaved with good
/// traffic. Every hostile connection must end in an error status or a
/// close (never a hang), good traffic must keep getting 200s, and the
/// timeout counter must move.
#[test]
fn hostile_clients_cannot_hang_the_server() {
    let seed = seed_from_env(0x5E12_7E57);
    announce("hostile_clients", seed);

    let handle = Arc::new(ServiceHandle::new(snapshot(10.0)));
    let server = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            workers: 4,
            keep_alive_timeout: Duration::from_millis(400),
            request_deadline: Duration::from_millis(250),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();
    let patience = Duration::from_secs(5);

    std::thread::scope(|scope| {
        // Slowloris: 25 bytes at 30ms/byte blows the 250ms deadline.
        let loris = scope.spawn(move || {
            send_slowloris(
                addr,
                b"GET /healthz HTTP/1.1\r\n\r\n",
                Duration::from_millis(30),
                patience,
            )
            .expect("slowloris connect")
        });
        // A body that never arrives.
        let partial = scope.spawn(move || {
            send_partial_request(
                addr,
                b"POST /rank HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort",
                patience,
            )
            .expect("partial connect")
        });
        // Content-Length far over MAX_BODY_BYTES.
        let oversized = scope.spawn(move || {
            send_oversized(addr, 64 * 1024 * 1024, patience).expect("oversized connect")
        });
        // Peers that disappear mid-request-line.
        let vanish = scope.spawn(move || {
            for _ in 0..4 {
                send_then_vanish(addr, b"GET /hea").expect("vanish connect");
            }
        });

        // Good traffic throughout, with the hardened retrying client.
        let good = scope.spawn(move || {
            let config = ClientConfig {
                retries: 3,
                backoff_base: Duration::from_millis(5),
                jitter_seed: seed,
                ..ClientConfig::default()
            };
            for _ in 0..10 {
                let (status, _, body) =
                    request_with_retry(addr, "POST", "/rank", Some(RANK_BODY), &config)
                        .expect("good rank request");
                assert_eq!(status, 200, "body: {body}");
                let (_, relevance) = parse_rank_response(&body);
                assert!((relevance - 10.0).abs() < 0.5, "got {relevance}");
                std::thread::sleep(Duration::from_millis(20));
            }
        });

        let loris = loris.join().expect("slowloris thread");
        assert!(
            matches!(loris, NetOutcome::Status(408) | NetOutcome::Closed),
            "slowloris outcome: {loris:?}"
        );
        let partial = partial.join().expect("partial thread");
        assert!(
            matches!(partial, NetOutcome::Status(400) | NetOutcome::Closed),
            "partial-request outcome: {partial:?}"
        );
        let oversized = oversized.join().expect("oversized thread");
        assert!(
            matches!(oversized, NetOutcome::Status(413) | NetOutcome::Closed),
            "oversized outcome: {oversized:?}"
        );
        vanish.join().expect("vanish thread");
        good.join().expect("good client thread");
    });

    // The slowloris blew the deadline, so the counter must have moved,
    // and it must be visible on the wire.
    assert!(
        server.metrics().timeout_total() >= 1,
        "slowloris did not register in ctxrank_timeout_total"
    );
    let (status, _, metrics_body) = one_shot(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics_body.contains("ctxrank_timeout_total"));
    assert!(metrics_body.contains("ctxrank_io_error_total"));

    // The server is still healthy after the abuse.
    let (status, _, _) = one_shot(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);

    server.shutdown();
}

// ------------------------------------------------------------- publish

/// The end-to-end chaos test: a publisher keeps persisting and
/// reloading snapshots through a faulty filesystem and publishes only
/// the ones that survive validation, while clients hammer `/rank`.
/// Served epochs must never regress per connection, and every response
/// must match the registered score of exactly the epoch it claims.
#[test]
fn publish_chaos_never_regresses_epochs_or_serves_torn_snapshots() {
    let base = seed_from_env(0xFA57_0001);
    announce("publish_chaos", base);

    let first = snapshot(10.0);
    let handle = Arc::new(ServiceHandle::new(first));
    // epoch → the probe relevance that snapshot actually serves,
    // registered before the epoch can ever appear in a response.
    let scores: Arc<Mutex<HashMap<u64, f64>>> = Arc::new(Mutex::new(HashMap::new()));
    scores
        .lock()
        .unwrap()
        .insert(handle.epoch(), probe(&handle));

    let server = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    const CLIENTS: usize = 3;
    const REQUESTS: usize = 60;
    const MAX_ROUNDS: u64 = 120;
    const WANT_PUBLISHES: u32 = 3;

    let observed: Vec<(u64, f64)> = std::thread::scope(|scope| {
        let mut client_threads = Vec::new();
        for _ in 0..CLIENTS {
            client_threads.push(scope.spawn(move || {
                let mut conn = Conn::connect(addr).expect("connect");
                let mut seen = Vec::with_capacity(REQUESTS);
                let mut last_epoch = 0u64;
                for _ in 0..REQUESTS {
                    let (status, _, body) = conn
                        .request("POST", "/rank", Some(RANK_BODY))
                        .expect("rank request");
                    assert_eq!(status, 200, "body: {body}");
                    let (epoch, relevance) = parse_rank_response(&body);
                    assert!(
                        epoch >= last_epoch,
                        "epoch regressed on one connection: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    seen.push((epoch, relevance));
                }
                seen
            }));
        }

        let publisher_handle = Arc::clone(&handle);
        let publisher_scores = Arc::clone(&scores);
        let publisher = scope.spawn(move || {
            let dir = TempDir::new("publish");
            let mut published = 0u32;
            let mut save_errors = 0u32;
            let mut load_errors = 0u32;
            let mut rejected = 0u32;
            for round in 0..MAX_ROUNDS {
                if published >= WANT_PUBLISHES {
                    break;
                }
                let weight = 10.0 * (round + 2) as f64;
                let snap = snapshot(weight);
                let expected_epoch = snap.epoch();

                let save_fs =
                    FaultyFs::new(Arc::new(FaultPlan::new(base.wrapping_add(round), 100)));
                if save_snapshot_with(&snap, dir.path(), &save_fs).is_err() {
                    // The manifest still names the previous snapshot;
                    // the load below sees a stale epoch and skips.
                    save_errors += 1;
                }

                let load_fs = FaultyFs::new(Arc::new(FaultPlan::new(
                    base.wrapping_add(round) ^ 0x0DD_C0DE,
                    100,
                )));
                let loaded = match load_snapshot_with(dir.path(), &load_fs) {
                    Ok(s) => s,
                    Err(_) => {
                        load_errors += 1;
                        continue;
                    }
                };
                // Publisher-side guards, as in production: never swap
                // in an older epoch, never swap in a snapshot that
                // fails its smoke probe (a bit flip can survive
                // decoding with a wrong score).
                if loaded.epoch() <= publisher_handle.epoch() {
                    rejected += 1;
                    continue;
                }
                let staging = ServiceHandle::new(Arc::clone(&loaded));
                let score = probe(&staging);
                if loaded.epoch() != expected_epoch || (score - weight).abs() > 0.5 {
                    rejected += 1;
                    continue;
                }
                // Register the score before the epoch can serve.
                publisher_scores
                    .lock()
                    .unwrap()
                    .insert(loaded.epoch(), score);
                publisher_handle.publish(loaded);
                published += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            eprintln!(
                "publish_chaos: {published} published, {save_errors} save errors, \
                 {load_errors} load errors, {rejected} rejected"
            );
            published
        });

        let mut all = Vec::new();
        for t in client_threads {
            all.extend(t.join().expect("client thread"));
        }
        let published = publisher.join().expect("publisher thread");
        assert!(
            published >= 1,
            "chaos publisher never got a snapshot through at 10% injection"
        );
        all
    });

    assert_eq!(observed.len(), CLIENTS * REQUESTS);
    let scores = scores.lock().unwrap();
    for (epoch, relevance) in &observed {
        let expected = scores
            .get(epoch)
            .unwrap_or_else(|| panic!("response claimed unregistered epoch {epoch}"));
        // Registered weights are 10 apart; a torn or corrupt snapshot
        // misses by ~10, quantization noise by far less than 0.5.
        assert!(
            (relevance - expected).abs() < 0.5,
            "epoch {epoch} expected relevance ~{expected}, got {relevance}"
        );
    }
    // Epoch is also monotone across the handle itself.
    assert!(handle.epoch() >= scores.keys().copied().min().unwrap_or(0));

    server.shutdown();
}

// ------------------------------------------------------------- segments

/// Adapts the persist-layer [`FaultyFs`] to the segment store's fs
/// trait. The two traits expose the same four primitives, so the same
/// seeded fault plans drive the event-log sweeps.
struct FaultSegmentFs(FaultyFs);

impl SegmentFs for FaultSegmentFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read>> {
        PersistFs::open_read(&self.0, path)
    }
    fn create_write(&self, path: &Path) -> io::Result<Box<dyn Write>> {
        PersistFs::create_write(&self.0, path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        PersistFs::rename(&self.0, from, to)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        PersistFs::create_dir_all(&self.0, path)
    }
}

fn faulty_segment_fs(plan: FaultPlan) -> Arc<dyn SegmentFs> {
    Arc::new(FaultSegmentFs(FaultyFs::new(Arc::new(plan))))
}

/// A deterministic mixed click/query stream for the segment sweeps.
fn segment_events(n: usize) -> Vec<Event> {
    (0..n)
        .map(|i| {
            if i % 4 == 3 {
                Event::Query {
                    terms: vec![format!("term{}", i % 6), "probe".to_string()],
                    freq: i as u64 + 1,
                }
            } else {
                Event::Click {
                    story: (i / 3) as u64,
                    surface: format!("surface {}", i % 5),
                    views: 100 + i as u64,
                    clicks: (i % 9) as u64,
                }
            }
        })
        .collect()
}

/// Torn-write sweep over segment append + seal: a tear in the WAL or a
/// dying seal must truncate cleanly to the last valid record on
/// recovery — sealed history is never corrupted, and the recovered
/// unsealed tail is always a strict prefix of what was appended.
#[test]
fn segment_sweep_torn_appends_recover_a_clean_prefix() {
    let base = seed_from_env(0xC11C_5E65);
    announce("segment_sweep_torn_appends_recover_a_clean_prefix", base);

    const SEALED: usize = 12;
    const TAIL: usize = 10;
    let mut sync_failures = 0usize;
    let mut seal_failures = 0usize;
    let mut clean_runs = 0usize;
    let mut truncated_tails = 0usize;

    for round in 0..200u64 {
        let seed = base.wrapping_add(round);
        let dir = TempDir::new("seg-torn");

        // A good store with sealed history, written through a clean fs.
        let committed = segment_events(SEALED);
        let config = SegmentConfig {
            segment_bytes: 1 << 20,
        };
        {
            let mut store = SegmentStore::open(Arc::new(StdSegmentFs), dir.path(), config)
                .expect("open clean store");
            for e in &committed {
                store.append(e).expect("clean append");
            }
            store.seal().expect("clean seal");
        }

        // Append an unsealed tail through a torn-write-only fs: every
        // failure below is a partial write followed by an error, never
        // a silently dropped byte. ~13 faultable writes per round, so
        // 15% keeps every regime (clean, torn sync, torn seal) well
        // populated for arbitrary CI seeds.
        let fs = faulty_segment_fs(FaultPlan::with_kinds(
            seed,
            150,
            &[],
            &[FaultKind::TornWrite],
        ));
        let tail = segment_events(SEALED + TAIL)[SEALED..].to_vec();
        let mut round_failed = false;
        let final_seal_ok = {
            let mut store = SegmentStore::open(fs, dir.path(), config).expect("reads are clean");
            for e in &tail {
                store.append(e).expect("append only buffers in memory");
                if let Err(e) = store.sync() {
                    assert!(!e.to_string().is_empty(), "sync error must display");
                    sync_failures += 1;
                    round_failed = true;
                }
            }
            match store.seal() {
                Ok(meta) => {
                    assert!(meta.is_some(), "non-empty buffer seals to a segment");
                    true
                }
                Err(e) => {
                    assert!(!e.to_string().is_empty(), "seal error must display");
                    seal_failures += 1;
                    round_failed = true;
                    false
                }
            }
        };
        if !round_failed {
            clean_runs += 1;
        }

        // Crash and recover through a clean fs. Sealed history replays
        // intact; the recovered tail is a prefix of what was appended.
        let mut recovered = SegmentStore::open(Arc::new(StdSegmentFs), dir.path(), config)
            .expect("recovery after torn writes");
        if final_seal_ok {
            // The manifest committed: the whole tail is sealed history.
            assert_eq!(recovered.active_events(), 0);
            let mut expected = committed.clone();
            expected.extend(tail.iter().cloned());
            assert_eq!(recovered.replay().expect("replay"), expected);
        } else {
            let kept = recovered.active_events() as usize;
            assert!(kept <= TAIL, "recovered more events than were appended");
            if kept < TAIL {
                truncated_tails += 1;
            }
            assert_eq!(
                recovered.replay().expect("replay"),
                committed,
                "a torn tail write corrupted sealed history"
            );
            // Sealing the recovered tail yields exactly a prefix of the
            // appended events — nothing reordered, nothing invented.
            recovered.seal().expect("seal recovered tail");
            let mut expected = committed.clone();
            expected.extend(tail[..kept].iter().cloned());
            assert_eq!(recovered.replay().expect("replay recovered"), expected);
        }
    }

    eprintln!(
        "segment torn sweep: {sync_failures} torn syncs, {seal_failures} torn seals, \
         {clean_runs} clean runs, {truncated_tails} truncated tails"
    );
    assert!(sync_failures > 0, "sweep never tore a WAL sync");
    assert!(seal_failures > 0, "sweep never tore a seal");
    assert!(clean_runs > 0, "sweep never completed a clean round");
    assert!(truncated_tails > 0, "sweep never truncated a torn tail");
}

/// Read-fault sweep over sealed-segment replay: bit flips, premature
/// EOF, and short reads either leave replay byte-intact or surface as a
/// typed [`ctxrank_querylog::SegmentError`] — never a panic, never
/// silently wrong events.
#[test]
fn segment_sweep_bit_flips_never_corrupt_replay() {
    let base = seed_from_env(0x5E63_F11B);
    announce("segment_sweep_bit_flips_never_corrupt_replay", base);

    const SEALED: usize = 24;
    const TAIL: usize = 4;
    let mut open_rejected = 0usize;
    let mut replay_rejected = 0usize;
    let mut intact = 0usize;

    for round in 0..200u64 {
        let seed = base.wrapping_add(round) ^ 0x0BAD_F00D;
        let dir = TempDir::new("seg-flip");

        // Good on-disk state: several sealed segments plus a synced
        // unsealed tail, all through a clean fs. The tail goes in via a
        // large-segment reopen so it cannot auto-seal.
        let events = segment_events(SEALED + TAIL);
        let config = SegmentConfig { segment_bytes: 128 };
        {
            let mut store = SegmentStore::open(Arc::new(StdSegmentFs), dir.path(), config)
                .expect("open clean store");
            for e in &events[..SEALED] {
                store.append(e).expect("clean append");
            }
            store.seal().expect("clean seal");
        }
        {
            let tail_config = SegmentConfig {
                segment_bytes: 1 << 20,
            };
            let mut store = SegmentStore::open(Arc::new(StdSegmentFs), dir.path(), tail_config)
                .expect("reopen for tail");
            for e in &events[SEALED..] {
                store.append(e).expect("clean tail append");
            }
            store.sync().expect("clean sync");
        }

        // Reopen and replay through a read-fault-only fs. Replaying
        // many small segments touches ~20 faultable reads per round, so
        // the rate is lower than the write sweeps' to keep a healthy
        // population of fully intact rounds.
        let fs = faulty_segment_fs(FaultPlan::with_kinds(
            seed,
            100,
            &[FaultKind::BitFlip, FaultKind::Eof, FaultKind::ShortRead],
            &[],
        ));
        match SegmentStore::open(fs, dir.path(), config) {
            Err(e) => {
                // Manifest or WAL read faulted: typed and displayable.
                assert!(!e.to_string().is_empty(), "open error must display");
                open_rejected += 1;
            }
            Ok(store) => {
                // A flipped WAL byte fails its record checksum, so the
                // recovered tail can only shrink, never mutate.
                assert!(
                    store.active_events() as usize <= TAIL,
                    "faulted WAL recovery invented events"
                );
                match store.replay() {
                    Ok(replayed) => {
                        assert_eq!(
                            replayed,
                            &events[..SEALED],
                            "replay returned Ok with corrupted events"
                        );
                        intact += 1;
                    }
                    Err(e) => {
                        assert!(!e.to_string().is_empty(), "replay error must display");
                        replay_rejected += 1;
                    }
                }
            }
        }
    }

    eprintln!(
        "segment flip sweep: {open_rejected} opens rejected, \
         {replay_rejected} replays rejected, {intact} intact"
    );
    assert!(
        open_rejected + replay_rejected > 0,
        "sweep never detected an injected read fault"
    );
    assert!(intact > 0, "sweep never replayed an intact store");
}

// --------------------------------------------------------------- router

/// A multi-concept snapshot so a 2-way partition puts real entries on
/// both shards (the single-concept [`snapshot`] helper would leave one
/// shard empty).
fn cluster_snapshot() -> Arc<Snapshot> {
    const N: usize = 6;
    let concepts: Vec<(String, InterestFeatures)> = (0..N)
        .map(|i| {
            (
                format!("concept {i}"),
                InterestFeatures {
                    freq_exact: 100 + i as u64 * 7,
                    unit_score: (i as f64 * 0.13) % 1.0,
                    ..InterestFeatures::default()
                },
            )
        })
        .collect();
    let interest = PackedInterestStore::build(&concepts);
    let keyword_sets: Vec<RelevantTerms> = (0..N)
        .map(|i| RelevantTerms {
            terms: (0..3)
                .map(|j| (format!("kw{}x{j}", i), 1.0 + (i + j) as f64))
                .collect(),
        })
        .collect();
    let mut tids = GlobalTidTable::new();
    let relevance = PackedRelevanceStore::build(
        concepts
            .iter()
            .map(|(s, _)| s.as_str())
            .zip(keyword_sets.iter()),
        &mut tids,
    );
    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[0] = (g + i) as f64;
                f[9] = (g * 2 + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("cluster snapshot")
}

/// The router failover acceptance sweep: 200 seeded rounds with a
/// [`ChaosProxy`] between the router and shard 0's primary, killing
/// connections mid-exchange at a 40% per-write rate. Every round the
/// scatter must still produce the full, single-epoch, byte-identical
/// merged answer — the replica covers whatever the chaos kills — and
/// over the sweep the proxy must actually have dropped connections.
#[test]
fn router_failover_sweep_answers_from_replica() {
    let base = seed_from_env(0x0F41_0E42);
    announce("router_failover_sweep", base);

    let full = cluster_snapshot();
    let parts = partition_snapshot(&full, 2).expect("partition");
    let start_shard = |part: usize| {
        Server::start(
            Arc::new(ServiceHandle::new(parts[part].snapshot.clone())),
            ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            }
            .as_shard(parts[part].bounds),
        )
        .expect("start shard server")
    };
    let primary0 = start_shard(0);
    let replica0 = start_shard(0);
    let shard1 = start_shard(1);

    // The chaos-free reference answer, byte-exact.
    let text = "kw0x0 kw1x1 kw2x2 kw3x0 kw4x1 kw5x2 filler";
    let candidates: Vec<String> = (0..6)
        .map(|i| format!("concept {i}"))
        .chain(std::iter::once("unknown concept".to_string()))
        .collect();
    let handle = ServiceHandle::new(Arc::clone(&full));
    let (epoch, expected) = handle.rank_batch_online(&[(text, &candidates)]);
    let expected_body = render_rank_response(epoch, &expected[0]).body;
    let body = serde_json::to_string(&serde_json::json!({
        "text": text,
        "candidates": serde_json::Value::Seq(
            candidates.iter().cloned().map(serde_json::Value::Str).collect()
        ),
    }))
    .expect("request body");

    let mut dropped_total = 0u64;
    for round in 0..200u64 {
        let round_seed = base ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plan = Arc::new(FaultPlan::new(round_seed, 400));
        let proxy = ChaosProxy::start(primary0.local_addr(), plan).expect("start chaos proxy");
        // A fresh router per round: connection pools start cold, so the
        // chaos schedule is a pure function of the round seed.
        let sg = ScatterGather::new(
            vec![
                ShardSpec {
                    primary: proxy.local_addr(),
                    replicas: vec![replica0.local_addr()],
                },
                ShardSpec::single(shard1.local_addr()),
            ],
            RouterConfig {
                client: ClientConfig {
                    connect_timeout: Duration::from_millis(500),
                    read_timeout: Duration::from_millis(500),
                    retries: 0,
                    ..ClientConfig::default()
                },
                gather_retries: 2,
                retry_backoff: Duration::from_millis(1),
            },
        );
        for query in 0..2 {
            let outcome = sg.rank(&body).unwrap_or_else(|e| {
                panic!("seed {round_seed} query {query}: failover did not save the scatter: {e}")
            });
            assert_eq!(
                outcome.epoch, epoch,
                "seed {round_seed}: merged response left the published epoch"
            );
            assert_eq!(
                outcome.merged, expected[0],
                "seed {round_seed}: chaos changed the merged ranking"
            );
            assert_eq!(
                outcome.render().body,
                expected_body,
                "seed {round_seed}: merged body is not byte-identical under chaos"
            );
        }
        dropped_total += proxy.dropped_connections();
        proxy.shutdown();
    }
    eprintln!("router_failover_sweep: {dropped_total} proxied connections killed over 200 rounds");
    assert!(
        dropped_total > 0,
        "the chaos proxy never killed a connection at 40% injection"
    );

    primary0.shutdown();
    replica0.shutdown();
    shard1.shutdown();
}
