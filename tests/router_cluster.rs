//! Scatter-gather cluster integration tests (DESIGN.md §15).
//!
//! Two invariants, end-to-end over real sockets:
//!
//! * **Bit-identity** — the router's merged `/rank` body over a
//!   2-shard partition is byte-equal to the unsharded single-process
//!   server's, and the library-level merge is element-equal to
//!   `ServiceHandle::rank_batch_online`, across owned, unknown, and
//!   duplicated candidates.
//! * **Epoch consistency** — under a storm of ≥12 two-phase publishes
//!   racing concurrent router traffic, every merged response's scores
//!   are consistent with exactly one epoch's snapshot (a mixed-epoch
//!   merge would pair scores no single epoch ever produced), and the
//!   epochs each client observes never regress.

use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::persist::save_snapshot;
use ctxrank_framework::{
    owner_shard, partition_snapshot, GlobalTidTable, PackedInterestStore, PackedRelevanceStore,
    ServiceHandle, ShardBounds, Snapshot, SnapshotBuilder,
};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_router::{RouterConfig, RouterServer, RouterServerConfig, ScatterGather, ShardSpec};
use ctxrank_serve::{request_classified, ClientConfig, ServeConfig, Server};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------- helpers

/// A per-test scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "ctxrank-router-cluster-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `n` concepts with 3 distinct keywords each (scores scale with
/// `weight`, so different `weight`s are distinguishable epochs), plus a
/// keywordless concept. Same shape as the partition unit tests.
fn full_snapshot(n: usize, weight: f64) -> Arc<Snapshot> {
    let concepts: Vec<(String, InterestFeatures)> = (0..n)
        .map(|i| {
            (
                format!("concept {i}"),
                InterestFeatures {
                    freq_exact: 100 + i as u64 * 7,
                    unit_score: (i as f64 * 0.13) % 1.0,
                    ..InterestFeatures::default()
                },
            )
        })
        .chain(std::iter::once((
            "keywordless".to_string(),
            InterestFeatures::default(),
        )))
        .collect();
    let interest = PackedInterestStore::build(&concepts);

    let keyword_sets: Vec<RelevantTerms> = (0..n)
        .map(|i| RelevantTerms {
            terms: (0..3)
                .map(|j| (format!("kw{}x{j}", i), weight + (i + j) as f64))
                .collect(),
        })
        .chain(std::iter::once(RelevantTerms { terms: Vec::new() }))
        .collect();
    let mut tids = GlobalTidTable::new();
    let relevance = PackedRelevanceStore::build(
        concepts
            .iter()
            .map(|(s, _)| s.as_str())
            .zip(keyword_sets.iter()),
        &mut tids,
    );

    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[0] = (g + i) as f64;
                f[9] = (g * 2 + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("test snapshot")
}

/// A document mentioning keywords of several concepts, so rankings are
/// non-trivial on both shards.
const PROBE_TEXT: &str = "kw0x0 kw1x1 kw2x2 kw3x0 kw4x1 kw5x2 plus untracked filler words";

/// Start one shard server. Worker count is explicit: on a single-core
/// box the default pool of 1 would let the router's pooled keep-alive
/// connection starve the admin endpoints.
fn start_shard(snapshot: Arc<Snapshot>, bounds: ShardBounds) -> Server {
    Server::start(
        Arc::new(ServiceHandle::new(snapshot)),
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 6,
            ..ServeConfig::default()
        }
        .as_shard(bounds),
    )
    .expect("start shard server")
}

fn shard_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(5),
        retries: 0,
        ..ClientConfig::default()
    }
}

fn rank_request(candidates: &[&str]) -> String {
    serde_json::to_string(&serde_json::json!({
        "text": PROBE_TEXT,
        "candidates": serde_json::Value::Seq(
            candidates.iter().map(|c| serde_json::Value::Str(c.to_string())).collect()
        ),
    }))
    .expect("request body")
}

// ------------------------------------------------------------- bit-identity

/// Router-merged responses — library level and over HTTP — must be
/// indistinguishable from the unsharded single process.
#[test]
fn merged_rank_is_bit_identical_to_unsharded_server() {
    let full = full_snapshot(10, 1.0);
    let parts = partition_snapshot(&full, 2).expect("partition");
    let shard0 = start_shard(parts[0].snapshot.clone(), parts[0].bounds);
    let shard1 = start_shard(parts[1].snapshot.clone(), parts[1].bounds);
    let handle = Arc::new(ServiceHandle::new(full.clone()));
    let single = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 6,
            ..ServeConfig::default()
        },
    )
    .expect("start unsharded server");

    let sg = Arc::new(ScatterGather::new(
        vec![
            ShardSpec::single(shard0.local_addr()),
            ShardSpec::single(shard1.local_addr()),
        ],
        RouterConfig::default(),
    ));
    let router =
        RouterServer::start(Arc::clone(&sg), RouterServerConfig::default()).expect("start router");

    // Owned on both shards, globally unknown, duplicated unknown,
    // duplicated owned, keywordless, empty.
    let cases: Vec<Vec<&str>> = vec![
        vec![
            "concept 0",
            "concept 5",
            "concept 9",
            "keywordless",
            "no such concept",
        ],
        vec!["no such concept", "no such concept", "also unknown"],
        vec!["concept 3", "concept 3", "concept 7"],
        vec![],
    ];
    let client = shard_client();
    for candidates in &cases {
        let body = rank_request(candidates);
        // Library-level merge against the in-process batch API.
        let outcome = sg.rank(&body).expect("router rank");
        let owned: Vec<String> = candidates.iter().map(|s| s.to_string()).collect();
        let (epoch, expected) = handle.rank_batch_online(&[(PROBE_TEXT, &owned)]);
        assert_eq!(outcome.epoch, epoch);
        assert_eq!(outcome.merged, expected[0], "candidates {candidates:?}");

        // Wire-level: byte-identical bodies.
        let (status, _, merged_body) =
            request_classified(router.local_addr(), "POST", "/rank", Some(&body), &client)
                .expect("router http rank");
        assert_eq!(status, 200, "{merged_body}");
        let (status, _, single_body) =
            request_classified(single.local_addr(), "POST", "/rank", Some(&body), &client)
                .expect("unsharded http rank");
        assert_eq!(status, 200, "{single_body}");
        assert_eq!(merged_body, single_body, "candidates {candidates:?}");
    }
    assert!(sg.metrics().fanout_total() >= 8);
    assert_eq!(sg.metrics().epoch_mismatch_total(), 0);

    router.shutdown();
    single.shutdown();
    shard0.shutdown();
    shard1.shutdown();
}

// --------------------------------------------------------- epoch barrier

/// Scores for the two probe concepts as one epoch's snapshot ranks
/// them — the fingerprint that identifies which epoch produced a
/// response.
fn epoch_fingerprint(snapshot: &Arc<Snapshot>, a: &str, b: &str) -> (f64, f64) {
    let handle = ServiceHandle::new(Arc::clone(snapshot));
    let ranked = handle.rank(PROBE_TEXT, &[a.to_string(), b.to_string()]);
    let score_of = |surface: &str| {
        ranked
            .iter()
            .find(|r| r.surface == surface)
            .expect("probe concept ranked")
            .score
    };
    (score_of(a), score_of(b))
}

/// ≥12 two-phase publishes race concurrent router clients; every 200
/// response must carry a `(score_a, score_b)` pair some single epoch
/// produced — a merge mixing epochs would pair scores no registered
/// epoch has — and per-client epochs must be monotone.
#[test]
fn publish_storm_never_yields_a_mixed_epoch_merge() {
    const PUBLISHES: usize = 12;
    let full = full_snapshot(8, 1.0);
    let parts = partition_snapshot(&full, 2).expect("partition");
    let shard0 = start_shard(parts[0].snapshot.clone(), parts[0].bounds);
    let shard1 = start_shard(parts[1].snapshot.clone(), parts[1].bounds);

    // Two probe concepts owned by *different* shards, so a torn merge
    // would visibly pair scores from different epochs.
    let concept_names: Vec<String> = (0..8).map(|i| format!("concept {i}")).collect();
    let on_shard = |want: usize| {
        concept_names
            .iter()
            .find(|c| owner_shard(&full, 2, c) == want)
            .unwrap_or_else(|| panic!("no concept owned by shard {want}"))
            .clone()
    };
    let concept_a = on_shard(0);
    let concept_b = on_shard(1);

    let sg = Arc::new(ScatterGather::new(
        vec![
            ShardSpec::single(shard0.local_addr()),
            ShardSpec::single(shard1.local_addr()),
        ],
        RouterConfig::default(),
    ));
    let router =
        RouterServer::start(Arc::clone(&sg), RouterServerConfig::default()).expect("start router");

    // epoch -> the (score_a, score_b) fingerprint that epoch serves.
    let expected: Arc<Mutex<HashMap<u64, (f64, f64)>>> = Arc::new(Mutex::new(HashMap::new()));
    expected.lock().expect("expected map").insert(
        full.epoch(),
        epoch_fingerprint(&full, &concept_a, &concept_b),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let expected = Arc::clone(&expected);
            let router_addr = router.local_addr();
            let body = rank_request(&[&concept_a, &concept_b]);
            let (concept_a, concept_b) = (concept_a.clone(), concept_b.clone());
            std::thread::spawn(move || {
                let client = shard_client();
                let mut last_epoch = 0u64;
                let mut responses = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let Ok((status, _, text)) =
                        request_classified(router_addr, "POST", "/rank", Some(&body), &client)
                    else {
                        continue;
                    };
                    if status != 200 {
                        // Mixed-epoch gathers past the retry budget
                        // surface as 503 — a *refusal*, never a torn
                        // merge. Retry.
                        assert_eq!(status, 503, "{text}");
                        continue;
                    }
                    let value: serde_json::Value =
                        serde_json::from_str(&text).expect("response JSON");
                    let epoch = value
                        .get("epoch")
                        .and_then(|e| e.as_u64())
                        .expect("epoch field");
                    let score_of = |surface: &str| {
                        let serde_json::Value::Seq(results) =
                            value.get("results").expect("results")
                        else {
                            panic!("results not an array: {text}")
                        };
                        results
                            .iter()
                            .find(|r| r.get("surface").and_then(|s| s.as_str()) == Some(surface))
                            .and_then(|r| r.get("score").and_then(|s| s.as_f64()))
                            .expect("probe score")
                    };
                    let got = (score_of(&concept_a), score_of(&concept_b));
                    let map = expected.lock().expect("expected map");
                    let fingerprint = map.get(&epoch).unwrap_or_else(|| {
                        panic!("response epoch {epoch} was never registered: {text}")
                    });
                    assert_eq!(
                        got, *fingerprint,
                        "epoch {epoch} response carries scores that epoch never produced \
                         (a mixed-epoch merge): {text}"
                    );
                    drop(map);
                    assert!(
                        epoch >= last_epoch,
                        "client-observed epoch regressed: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    responses += 1;
                }
                responses
            })
        })
        .collect();

    // The publish storm: each round builds the next epoch's full
    // snapshot, registers its fingerprint, then runs the two-phase
    // barrier (prepare everywhere, then commit everywhere).
    let scratch = TempDir::new("storm");
    let admin = shard_client();
    let mut last_epoch = full.epoch();
    for round in 0..PUBLISHES {
        let next = full_snapshot(8, 1.0 + (round as f64 + 1.0) * 0.25);
        assert!(next.epoch() > last_epoch);
        last_epoch = next.epoch();
        expected.lock().expect("expected map").insert(
            next.epoch(),
            epoch_fingerprint(&next, &concept_a, &concept_b),
        );
        let next_parts = partition_snapshot(&next, 2).expect("partition next");
        let backends = [(&shard0, 0usize), (&shard1, 1usize)];
        for (i, (server, part)) in backends.iter().enumerate() {
            let dir = scratch.path().join(format!("round{round}-backend{i}"));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            save_snapshot(&next_parts[*part].snapshot, &dir).expect("save partition");
            let prepare = serde_json::to_string(&serde_json::json!({
                "dir": dir.to_string_lossy().into_owned(),
                "epoch": next.epoch(),
            }))
            .expect("prepare body");
            let (status, _, text) = request_classified(
                server.local_addr(),
                "POST",
                "/admin/epoch/prepare",
                Some(&prepare),
                &admin,
            )
            .expect("prepare");
            assert_eq!(status, 200, "prepare round {round}: {text}");
        }
        let commit =
            serde_json::to_string(&serde_json::json!({"epoch": next.epoch()})).expect("commit");
        for (server, _) in backends.iter() {
            let (status, _, text) = request_classified(
                server.local_addr(),
                "POST",
                "/admin/epoch/commit",
                Some(&commit),
                &admin,
            )
            .expect("commit");
            assert_eq!(status, 200, "commit round {round}: {text}");
        }
        // A beat of traffic against each published epoch.
        std::thread::sleep(Duration::from_millis(15));
    }

    stop.store(true, Ordering::Release);
    let totals: Vec<usize> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    assert!(
        totals.iter().sum::<usize>() >= PUBLISHES,
        "clients observed too few responses to exercise the storm: {totals:?}"
    );

    // After the last commit the router must settle on the final epoch.
    let body = rank_request(&[&concept_a, &concept_b]);
    let outcome = sg.rank(&body).expect("final rank");
    assert_eq!(outcome.epoch, last_epoch);
    assert_eq!(sg.observed_epoch(), last_epoch);

    router.shutdown();
    shard0.shutdown();
    shard1.shutdown();
}

/// Re-preparing a newer epoch replaces staging, commits must name the
/// staged epoch, and a stale prepare is refused — driven through the
/// shard server's admin surface (the unit-level state machine lives in
/// `ctxrank_framework::partition`).
#[test]
fn epoch_admin_rejects_stale_and_misnamed_transitions() {
    let full = full_snapshot(4, 1.0);
    let parts = partition_snapshot(&full, 2).expect("partition");
    let shard0 = start_shard(parts[0].snapshot.clone(), parts[0].bounds);
    let admin = shard_client();
    let scratch = TempDir::new("admin");

    // A stale prepare: same epoch as currently served.
    let dir = scratch.path().join("stale");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    save_snapshot(&parts[0].snapshot, &dir).expect("save partition");
    let stale = serde_json::to_string(&serde_json::json!({
        "dir": dir.to_string_lossy().into_owned(),
        "epoch": full.epoch(),
    }))
    .expect("body");
    let (status, _, text) = request_classified(
        shard0.local_addr(),
        "POST",
        "/admin/epoch/prepare",
        Some(&stale),
        &admin,
    )
    .expect("stale prepare");
    assert_eq!(status, 409, "{text}");

    // Committing an epoch nothing staged is refused.
    let commit =
        serde_json::to_string(&serde_json::json!({"epoch": full.epoch() + 1})).expect("body");
    let (status, _, text) = request_classified(
        shard0.local_addr(),
        "POST",
        "/admin/epoch/commit",
        Some(&commit),
        &admin,
    )
    .expect("commit");
    assert_eq!(status, 409, "{text}");

    // Prepare a real next epoch, then commit the wrong number: refused,
    // staging intact; committing the right number flips the epoch.
    let next = full_snapshot(4, 2.0);
    let next_parts = partition_snapshot(&next, 2).expect("partition next");
    let dir = scratch.path().join("next");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    save_snapshot(&next_parts[0].snapshot, &dir).expect("save partition");
    let prepare = serde_json::to_string(&serde_json::json!({
        "dir": dir.to_string_lossy().into_owned(),
        "epoch": next.epoch(),
    }))
    .expect("body");
    let (status, _, text) = request_classified(
        shard0.local_addr(),
        "POST",
        "/admin/epoch/prepare",
        Some(&prepare),
        &admin,
    )
    .expect("prepare");
    assert_eq!(status, 200, "{text}");
    let wrong =
        serde_json::to_string(&serde_json::json!({"epoch": next.epoch() + 7})).expect("body");
    let (status, _, text) = request_classified(
        shard0.local_addr(),
        "POST",
        "/admin/epoch/commit",
        Some(&wrong),
        &admin,
    )
    .expect("wrong commit");
    assert_eq!(status, 409, "{text}");
    let right = serde_json::to_string(&serde_json::json!({"epoch": next.epoch()})).expect("body");
    let (status, _, text) = request_classified(
        shard0.local_addr(),
        "POST",
        "/admin/epoch/commit",
        Some(&right),
        &admin,
    )
    .expect("right commit");
    assert_eq!(status, 200, "{text}");
    let (status, _, health) =
        request_classified(shard0.local_addr(), "GET", "/healthz", None, &admin).expect("healthz");
    assert_eq!(status, 200);
    assert!(
        health.contains(&format!("\"epoch\":{}", next.epoch())),
        "{health}"
    );

    shard0.shutdown();
}
