//! Seed robustness: the paper's qualitative orderings must hold across
//! different world seeds, not just the headline seed. This is the
//! repository's core scientific claim, so it is enforced by a test.
//!
//! Small worlds keep the test fast; orderings are checked with modest
//! slack because small datasets are noisy.

use ctxrank::eval::ErrorRateAccumulator;
use ctxrank::features::{FeatureExtractor, MiningResource, RelevanceModel, RelevanceModelBuilder};
use ctxrank::ltr::{train, RankGroup, SvmConfig};
use ctxrank::querylog::{extract_units, UnitConfig};
use ctxrank::shortcuts::{DictionaryEntry, EntityDictionary, Pipeline, PipelineConfig};
use ctxrank::synth::clicks::simulate_story;
use ctxrank::synth::news::ground_truth_relevance;
use ctxrank::synth::{ClickConfig, ConceptId, SynthWorld, WorldConfig};
use std::collections::HashMap;

struct MiniEval {
    random: f64,
    learned: f64,
}

/// A compact version of the experiment pipeline: annotate, click,
/// featurize, 2-fold cross-validate.
fn run_world(seed: u64) -> MiniEval {
    let world = SynthWorld::generate(WorldConfig::small(seed));
    let units = extract_units(&world.query_log, &UnitConfig::default());
    let mut dict = EntityDictionary::new();
    for c in world.universe.all() {
        if let Some((hlt, subtype)) = c.entity_type {
            dict.insert(DictionaryEntry {
                terms: c.terms.clone(),
                type_code: hlt.code(),
                subtype: subtype.to_string(),
                geo: c.geo,
                context_terms: Vec::new(),
            });
        }
    }
    let pipeline = Pipeline::new(
        &dict,
        &units,
        |t| world.corpus.idf(t),
        PipelineConfig::default(),
    );
    let mut by_surface: HashMap<String, ConceptId> = HashMap::new();
    for c in world.universe.all() {
        by_surface.entry(c.surface()).or_insert(c.id);
    }
    let extractor = FeatureExtractor::new(&world.query_log, &units, &world.corpus, |_| 0, |_| 0);
    let mut rel_builder = RelevanceModelBuilder::new(&world.corpus, &world.query_log);
    rel_builder.min_idf = 3.2;

    // Collect per-story feature/label groups.
    let mut story_rows: Vec<Vec<(Vec<f64>, f64)>> = Vec::new();
    for story in &world.news {
        let doc = pipeline.process(&story.text);
        let mut seen = std::collections::HashSet::new();
        let entities: Vec<(String, ConceptId, f64, f64)> = doc
            .rankable()
            .filter(|a| seen.insert(a.surface.clone()))
            .filter_map(|a| {
                by_surface.get(&a.surface).map(|&cid| {
                    let gt = ground_truth_relevance(
                        world.universe.get(cid),
                        story.topic,
                        story.center,
                        story.secondary_topic,
                    );
                    (a.surface.clone(), cid, gt, a.position_frac)
                })
            })
            .collect();
        if entities.len() < 2 {
            continue;
        }
        let annotated: Vec<(ConceptId, f64, f64)> =
            entities.iter().map(|e| (e.1, e.2, e.3)).collect();
        let clicks = simulate_story(
            seed,
            story.id,
            &world.universe,
            &annotated,
            &ClickConfig::default(),
        );
        if !clicks.passes_paper_filter() {
            continue;
        }
        let model = rel_builder.build(
            entities
                .iter()
                .map(|e| e.0.split(' ').map(str::to_string).collect()),
            MiningResource::Snippets,
        );
        let context = RelevanceModel::context_of(&doc.text);
        story_rows.push(
            entities
                .iter()
                .enumerate()
                .map(|(i, (surface, _, _, _))| {
                    let terms: Vec<String> = surface.split(' ').map(str::to_string).collect();
                    let mut f = extractor.interestingness(&terms).to_dense();
                    f.push(model.score_feature(surface, &context));
                    (f, clicks.ctr(i))
                })
                .collect(),
        );
    }
    assert!(
        story_rows.len() > 20,
        "too few usable stories: {}",
        story_rows.len()
    );

    // 2-fold split by story parity.
    let mut random = ErrorRateAccumulator::new();
    let mut learned = ErrorRateAccumulator::new();
    for fold in 0..2 {
        let training: Vec<RankGroup> = story_rows
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 != fold)
            .map(|(_, rows)| RankGroup::from_pairs(rows.clone()))
            .filter(|g| {
                g.instances
                    .iter()
                    .any(|a| g.instances.iter().any(|b| a.label > b.label))
            })
            .collect();
        let model = train(&training, &SvmConfig::default());
        for (i, rows) in story_rows.iter().enumerate() {
            if i % 2 != fold {
                continue;
            }
            let scores: Vec<f64> = rows.iter().map(|(f, _)| model.score(f)).collect();
            let ctrs: Vec<f64> = rows.iter().map(|(_, c)| *c).collect();
            learned.add(&scores, &ctrs);
            let rnd: Vec<f64> = (0..rows.len())
                .map(|j| ((j * 2654435761 + i * 40503) % 997) as f64)
                .collect();
            random.add(&rnd, &ctrs);
        }
    }
    MiniEval {
        random: random.weighted_error_rate(),
        learned: learned.weighted_error_rate(),
    }
}

#[test]
fn orderings_hold_across_seeds() {
    for seed in [11u64, 222, 3333] {
        let e = run_world(seed);
        assert!(
            (0.35..=0.65).contains(&e.random),
            "seed {seed}: random WER {:.3} not ~0.5",
            e.random
        );
        assert!(
            e.learned < e.random - 0.1,
            "seed {seed}: learned {:.3} must clearly beat random {:.3}",
            e.learned,
            e.random
        );
        assert!(
            e.learned < 0.40,
            "seed {seed}: learned WER {:.3} unexpectedly weak",
            e.learned
        );
    }
}
