//! End-to-end integration: synthetic world → query-log mining →
//! Contextual Shortcuts annotation → click simulation → features →
//! learned ranking → evaluation. Exercises every crate through the
//! `ctxrank` facade.

use ctxrank::eval::ErrorRateAccumulator;
use ctxrank::features::{FeatureExtractor, MiningResource, RelevanceModel, RelevanceModelBuilder};
use ctxrank::ltr::{train, RankGroup, SvmConfig};
use ctxrank::querylog::{extract_units, UnitConfig};
use ctxrank::shortcuts::{DictionaryEntry, EntityDictionary, Pipeline, PipelineConfig};
use ctxrank::synth::clicks::simulate_story;
use ctxrank::synth::news::ground_truth_relevance;
use ctxrank::synth::{ClickConfig, ConceptId, SynthWorld, WorldConfig};
use std::collections::HashMap;

fn build_dictionary(world: &SynthWorld) -> EntityDictionary {
    let mut dict = EntityDictionary::new();
    for c in world.universe.all() {
        if let Some((hlt, subtype)) = c.entity_type {
            dict.insert(DictionaryEntry {
                terms: c.terms.clone(),
                type_code: hlt.code(),
                subtype: subtype.to_string(),
                geo: c.geo,
                context_terms: Vec::new(),
            });
        }
    }
    dict
}

#[test]
fn full_chain_produces_learnable_signal() {
    let world = SynthWorld::generate(WorldConfig::small(2024));
    let units = extract_units(&world.query_log, &UnitConfig::default());
    let dictionary = build_dictionary(&world);
    let pipeline = Pipeline::new(
        &dictionary,
        &units,
        |t| world.corpus.idf(t),
        PipelineConfig::default(),
    );

    let mut by_surface: HashMap<String, ConceptId> = HashMap::new();
    for c in world.universe.all() {
        by_surface.entry(c.surface()).or_insert(c.id);
    }

    // Annotate stories, simulate clicks, extract features.
    let extractor = FeatureExtractor::new(&world.query_log, &units, &world.corpus, |_| 0, |_| 0);
    let mut rel_builder = RelevanceModelBuilder::new(&world.corpus, &world.query_log);
    rel_builder.min_idf = 3.2;

    let mut groups: Vec<RankGroup> = Vec::new();
    let mut heldout: Vec<(Vec<Vec<f64>>, Vec<f64>)> = Vec::new();
    for story in world.news.iter().take(80) {
        let doc = pipeline.process(&story.text);
        let mut seen = std::collections::HashSet::new();
        let entities: Vec<(String, ConceptId, f64, f64)> = doc
            .rankable()
            .filter(|a| seen.insert(a.surface.clone()))
            .filter_map(|a| {
                by_surface.get(&a.surface).map(|&cid| {
                    let gt = ground_truth_relevance(
                        world.universe.get(cid),
                        story.topic,
                        story.center,
                        story.secondary_topic,
                    );
                    (a.surface.clone(), cid, gt, a.position_frac)
                })
            })
            .collect();
        if entities.len() < 2 {
            continue;
        }
        let annotated: Vec<(ConceptId, f64, f64)> =
            entities.iter().map(|e| (e.1, e.2, e.3)).collect();
        let clicks = simulate_story(
            9,
            story.id,
            &world.universe,
            &annotated,
            &ClickConfig::default(),
        );
        if !clicks.passes_paper_filter() {
            continue;
        }
        let context = RelevanceModel::context_of(&doc.text);
        let model = rel_builder.build(
            entities
                .iter()
                .map(|e| e.0.split(' ').map(str::to_string).collect()),
            MiningResource::Snippets,
        );
        let rows: Vec<(Vec<f64>, f64)> = entities
            .iter()
            .enumerate()
            .map(|(i, (surface, _, _, _))| {
                let terms: Vec<String> = surface.split(' ').map(str::to_string).collect();
                let mut f = extractor.interestingness(&terms).to_dense();
                f.push(model.score_feature(surface, &context));
                (f, clicks.ctr(i))
            })
            .collect();
        if story.id % 5 == 0 {
            heldout.push((
                rows.iter().map(|r| r.0.clone()).collect(),
                rows.iter().map(|r| r.1).collect(),
            ));
        } else {
            groups.push(RankGroup::from_pairs(rows));
        }
    }

    let trainable: Vec<RankGroup> = groups
        .into_iter()
        .filter(|g| {
            g.instances
                .iter()
                .any(|a| g.instances.iter().any(|b| a.label > b.label))
        })
        .collect();
    assert!(
        trainable.len() > 10,
        "need training groups, got {}",
        trainable.len()
    );
    assert!(!heldout.is_empty(), "need held-out stories");

    let model = train(&trainable, &SvmConfig::default());

    // The learned model beats random ordering on held-out stories.
    let mut learned = ErrorRateAccumulator::new();
    let mut random = ErrorRateAccumulator::new();
    for (features, ctrs) in &heldout {
        let scores: Vec<f64> = features.iter().map(|f| model.score(f)).collect();
        learned.add(&scores, ctrs);
        let rnd: Vec<f64> = (0..scores.len())
            .map(|i| ((i * 7919) % 13) as f64)
            .collect();
        random.add(&rnd, ctrs);
    }
    assert!(
        learned.weighted_error_rate() < random.weighted_error_rate(),
        "learned {} should beat arbitrary {}",
        learned.weighted_error_rate(),
        random.weighted_error_rate()
    );
    assert!(learned.weighted_error_rate() < 0.45);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let world = SynthWorld::generate(WorldConfig::small(7));
        let units = extract_units(&world.query_log, &UnitConfig::default());
        let dictionary = build_dictionary(&world);
        let pipeline = Pipeline::new(
            &dictionary,
            &units,
            |t| world.corpus.idf(t),
            PipelineConfig::default(),
        );
        let doc = pipeline.process(&world.news[3].text);
        (
            doc.annotations.len(),
            doc.annotations.first().map(|a| a.surface.clone()),
            units.len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn annotations_never_overlap_and_point_into_text() {
    let world = SynthWorld::generate(WorldConfig::small(31));
    let units = extract_units(&world.query_log, &UnitConfig::default());
    let dictionary = build_dictionary(&world);
    let pipeline = Pipeline::new(
        &dictionary,
        &units,
        |t| world.corpus.idf(t),
        PipelineConfig::default(),
    );
    for story in world.news.iter().take(25) {
        let doc = pipeline.process(&story.text);
        for pair in doc.annotations.windows(2) {
            assert!(pair[0].span.end <= pair[1].span.start);
        }
        for a in &doc.annotations {
            assert_eq!(a.span.of(&doc.text).to_lowercase(), a.surface);
        }
    }
}
