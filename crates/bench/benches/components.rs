//! Micro-benchmarks for the individual subsystems: tokenizer, Porter
//! stemmer, phrase search, unit extraction, Golomb coding, packed-store
//! lookups, ranking-SVM training, and the evaluation metrics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ctxrank_features::RelevantTerms;
use ctxrank_framework::{
    golomb_decode, golomb_encode, optimal_rice_parameter, CompressedRelevanceStore, GlobalTidTable,
    PackedRelevanceStore,
};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_querylog::{extract_units, QueryLog, UnitConfig};
use ctxrank_synth::{Lexicon, SynthWorld, WorldConfig};
use std::hint::black_box;

fn bench_text(c: &mut Criterion) {
    let world = SynthWorld::generate(WorldConfig::small(0x7e57));
    let doc = world.news[0].text.clone();

    let mut group = c.benchmark_group("text");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("tokenize", |b| {
        b.iter(|| black_box(ctxrank_text::tokenize(black_box(&doc))).len())
    });
    group.bench_function("stemmed_terms", |b| {
        b.iter(|| black_box(ctxrank_text::stemmed_terms(black_box(&doc))).len())
    });
    group.bench_function("sentences", |b| {
        b.iter(|| black_box(ctxrank_text::sentences(black_box(&doc))).len())
    });
    group.finish();

    let words: Vec<&str> = [
        "running",
        "nationalization",
        "flies",
        "agreed",
        "hopefulness",
    ]
    .into_iter()
    .collect();
    c.bench_function("porter_stem_5_words", |b| {
        b.iter(|| {
            for w in &words {
                black_box(ctxrank_text::stem(black_box(w)));
            }
        })
    });
}

fn bench_index(c: &mut Criterion) {
    let world = SynthWorld::generate(WorldConfig::small(0x1d3));
    let concept = world
        .universe
        .all()
        .iter()
        .find(|x| x.terms.len() == 2)
        .expect("a 2-term concept");

    let mut group = c.benchmark_group("index");
    group.bench_function("phrase_count", |b| {
        b.iter(|| black_box(world.corpus.phrase_count(black_box(&concept.terms))))
    });
    group.bench_function("search_top50", |b| {
        b.iter(|| black_box(world.corpus.search(black_box(&concept.terms), 50)).len())
    });
    group.bench_function("phrase_snippets_100", |b| {
        b.iter(|| {
            black_box(
                world
                    .corpus
                    .phrase_snippets(black_box(&concept.terms), 100, 12),
            )
            .len()
        })
    });
    group.finish();
}

fn bench_querylog(c: &mut Criterion) {
    // A mid-size log for unit extraction.
    let lexicon = Lexicon::generate(3, 300, 4, 60);
    let mut log = QueryLog::new();
    let mut k = 0usize;
    for t in 0..4 {
        for w in lexicon.topic(t) {
            k += 1;
            log.add_terms(vec![w.clone()], 5 + (k as u64 % 40));
            if k.is_multiple_of(2) {
                log.add_terms(
                    vec![w.clone(), lexicon.topic(t)[(k * 7) % 60].clone()],
                    3 + (k as u64 % 9),
                );
            }
        }
    }
    c.bench_function("unit_extraction", |b| {
        b.iter(|| black_box(extract_units(black_box(&log), &UnitConfig::default())).len())
    });
}

fn bench_framework(c: &mut Criterion) {
    let ids: Vec<u32> = (0..100u32).map(|i| i * 321 + (i % 7)).collect();
    let k = optimal_rice_parameter(&ids);
    let encoded = golomb_encode(&ids, k);

    let mut group = c.benchmark_group("framework");
    group.bench_function("golomb_encode_100", |b| {
        b.iter(|| black_box(golomb_encode(black_box(&ids), k)).byte_len())
    });
    group.bench_function("golomb_decode_100", |b| {
        b.iter(|| black_box(golomb_decode(black_box(&encoded))).len())
    });

    let mut tids = GlobalTidTable::new();
    for i in 0..5000 {
        tids.intern(&format!("term{i}"));
    }
    group.bench_function("tid_context_lookup_100", |b| {
        let terms: Vec<String> = (0..100).map(|i| format!("term{}", i * 31 % 6000)).collect();
        b.iter(|| black_box(tids.context_tids(terms.iter().map(String::as_str))).len())
    });

    // Packed vs Golomb-compressed relevance scoring: the memory/CPU
    // trade the paper's §VI points at.
    let sets: Vec<(String, RelevantTerms)> = (0..50)
        .map(|i| {
            (
                format!("c{i}"),
                RelevantTerms {
                    terms: (0..100)
                        .map(|j| (format!("kw{}", (i * 7 + j) % 400), 1.0 + j as f64))
                        .collect(),
                },
            )
        })
        .collect();
    let mut t1 = GlobalTidTable::new();
    let packed = PackedRelevanceStore::build(sets.iter().map(|(s, r)| (s.as_str(), r)), &mut t1);
    let mut t2 = GlobalTidTable::new();
    let compressed =
        CompressedRelevanceStore::build(sets.iter().map(|(s, r)| (s.as_str(), r)), &mut t2);
    let ctx1 = t1.context_tids(
        (0..60)
            .map(|i| format!("kw{}", i * 5))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str),
    );
    let ctx2 = t2.context_tids(
        (0..60)
            .map(|i| format!("kw{}", i * 5))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str),
    );
    group.bench_function("relevance_score_packed", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc += packed.score(&format!("c{i}"), black_box(&ctx1));
            }
            black_box(acc)
        })
    });
    group.bench_function("relevance_score_compressed", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc += compressed.score(&format!("c{i}"), black_box(&ctx2));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_ltr_and_eval(c: &mut Criterion) {
    let groups: Vec<RankGroup> = (0..50)
        .map(|g| {
            RankGroup::from_pairs((0..6).map(|i| {
                let f: Vec<f64> = (0..10)
                    .map(|d| ((g * 6 + i) * (d + 1)) as f64 % 17.0)
                    .collect();
                (f, (i as f64) * 0.01)
            }))
        })
        .collect();
    c.bench_function("svm_train_50_groups", |b| {
        b.iter_batched(
            || groups.clone(),
            |g| {
                black_box(train(
                    &g,
                    &SvmConfig {
                        epochs: 5,
                        ..SvmConfig::default()
                    },
                ))
            },
            BatchSize::SmallInput,
        )
    });

    let scores: Vec<f64> = (0..50).map(|i| (i * 37 % 50) as f64).collect();
    let ctrs: Vec<f64> = (0..50).map(|i| (i as f64) * 0.001).collect();
    c.bench_function("weighted_error_rate_50", |b| {
        b.iter(|| {
            black_box(ctxrank_eval::weighted_pair_stats(
                black_box(&scores),
                black_box(&ctrs),
            ))
            .rate()
        })
    });
    let gains: Vec<f64> = ctrs.iter().map(|c| c * 50.0).collect();
    c.bench_function("ndcg_at_3_of_50", |b| {
        b.iter(|| {
            black_box(ctxrank_eval::ndcg_at_k(
                black_box(&scores),
                black_box(&gains),
                3,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_text,
    bench_index,
    bench_querylog,
    bench_framework,
    bench_ltr_and_eval
);
criterion_main!(benches);
