//! §VI performance experiment.
//!
//! The paper measures the runtime components on "1445 randomly chosen
//! documents with an average size of 2.5KB, and each document contained
//! 6.45 detections on average. The total running time of the stemmer and
//! ranker components were 0.457 sec and 1.519 sec, respectively, which
//! translates to processing rates of 7.9MB/sec and 2.4MB/sec."
//!
//! We reproduce the same experiment over synthetic documents of the same
//! shape. Absolute numbers differ (their 2005-era Opteron vs this
//! machine); the load-bearing observation is the *ratio* — ranking costs
//! a small multiple of stemming — and both being comfortably real-time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ctxrank_bench::{build_runtime_ranker, Experiment, ExperimentConfig};
use std::hint::black_box;

/// The paper's corpus shape.
const NUM_DOCS: usize = 1445;
const TARGET_DOC_BYTES: usize = 2500;

struct PerfFixture {
    exp: Experiment,
    docs: Vec<String>,
    candidates: Vec<Vec<String>>,
    ranker: ctxrank_framework::RuntimeRanker,
    total_bytes: usize,
}

fn fixture() -> PerfFixture {
    let exp = Experiment::build(ExperimentConfig::small(0xbe7c4));
    let ranker = build_runtime_ranker(&exp);

    // 1445 documents of ~2.5 KB with ~6.45 candidate detections each,
    // cycled from the synthetic news stream.
    let mut docs = Vec::with_capacity(NUM_DOCS);
    let mut candidates = Vec::with_capacity(NUM_DOCS);
    let surfaces: Vec<String> = exp.interest_raw.keys().cloned().collect();
    let mut total_bytes = 0;
    for i in 0..NUM_DOCS {
        let story = &exp.world.news[i % exp.world.news.len()];
        let mut text = story.text.clone();
        // Truncate to ~2.5 KB of *bytes* (the paper's unit, and the unit
        // Throughput::Bytes reports in), backing off to a char boundary.
        let mut cut = TARGET_DOC_BYTES.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        total_bytes += text.len();
        // ~6.45 detections per document, as in the paper's test set.
        let n = if i % 20 < 9 { 6 } else { 7 };
        let cands: Vec<String> = (0..n)
            .map(|j| surfaces[(i * 7 + j * 13) % surfaces.len()].clone())
            .collect();
        docs.push(text);
        candidates.push(cands);
    }
    PerfFixture {
        exp,
        docs,
        candidates,
        ranker,
        total_bytes,
    }
}

fn bench_stemmer_and_ranker(c: &mut Criterion) {
    let fx = fixture();
    println!(
        "fixture: {} docs, {:.2} MB total, {:.2} candidates/doc",
        fx.docs.len(),
        fx.total_bytes as f64 / 1e6,
        fx.candidates.iter().map(Vec::len).sum::<usize>() as f64 / fx.docs.len() as f64
    );

    let mut group = c.benchmark_group("section6_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(fx.total_bytes as u64));

    // Stemmer component: stem every document (paper: 7.9 MB/s).
    group.bench_function("stemmer_component", |b| {
        b.iter(|| {
            let mut total_terms = 0usize;
            for doc in &fx.docs {
                total_terms += fx.ranker.stem_document(black_box(doc)).len();
            }
            black_box(total_terms)
        })
    });

    // Ranker component: full runtime ranking of each document's
    // candidates (paper: 2.4 MB/s).
    group.bench_function("ranker_component", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (doc, cands) in fx.docs.iter().zip(&fx.candidates) {
                let ranked = fx.ranker.rank(black_box(doc), black_box(cands));
                acc += ranked[0].score;
            }
            black_box(acc)
        })
    });

    group.finish();
}

/// Annotation component: the full Shortcuts pipeline — pre-processing,
/// pattern/dictionary/concept detection over the interned phrase tries,
/// collision resolution and concept-vector scoring — run document by
/// document over the paper-shaped corpus.
fn bench_annotation_component(c: &mut Criterion) {
    let fx = fixture();
    let pipeline = fx.exp.annotation_pipeline();

    let mut group = c.benchmark_group("annotation_component");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(fx.total_bytes as u64));
    group.bench_function("pipeline_process", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for doc in &fx.docs {
                n += pipeline.process(black_box(doc)).annotations.len();
            }
            black_box(n)
        })
    });
    group.finish();
}

/// Batched ranking across the worker pool vs the serial loop above.
fn bench_ranker_parallel(c: &mut Criterion) {
    let fx = fixture();
    let threads = ctxrank_parallel::num_threads();
    let docs: Vec<(&str, &[String])> = fx
        .docs
        .iter()
        .zip(&fx.candidates)
        .map(|(d, c)| (d.as_str(), c.as_slice()))
        .collect();

    let mut group = c.benchmark_group("ranker_component_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(fx.total_bytes as u64));
    group.bench_function(format!("rank_batch_t{threads}").as_str(), |b| {
        b.iter(|| {
            let ranked = fx.ranker.rank_batch(black_box(&docs));
            black_box(ranked.len())
        })
    });
    group.finish();
}

/// Whole-pipeline `Experiment::build`, serial vs the worker pool.
fn bench_experiment_build_parallel(c: &mut Criterion) {
    let threads = ctxrank_parallel::num_threads();
    let mut group = c.benchmark_group("experiment_build_parallel");
    group.sample_size(10);
    group.bench_function("build_serial", |b| {
        b.iter(|| {
            let exp = Experiment::build_serial(ExperimentConfig::small(0xbe7c4));
            black_box(exp.stats.windows)
        })
    });
    group.bench_function(format!("build_t{threads}").as_str(), |b| {
        b.iter(|| {
            let exp = Experiment::build_with_threads(ExperimentConfig::small(0xbe7c4), threads);
            black_box(exp.stats.windows)
        })
    });
    group.finish();
}

/// Reader throughput through a [`ctxrank_framework::ServiceHandle`]:
/// on a static snapshot vs while a publisher continuously hot-swaps
/// rebuilt snapshots underneath the readers. The two rates should be
/// indistinguishable — the read path is one atomic pointer load plus a
/// refcount increment regardless of publish traffic.
fn bench_snapshot_swap(c: &mut Criterion) {
    use ctxrank_framework::ServiceHandle;
    use std::sync::atomic::{AtomicBool, Ordering};

    let fx = fixture();
    let docs: Vec<(&str, &[String])> = fx
        .docs
        .iter()
        .zip(&fx.candidates)
        .map(|(d, c)| (d.as_str(), c.as_slice()))
        .collect();
    let snap_a = ctxrank_bench::build_snapshot(&fx.exp);
    let snap_b = ctxrank_bench::build_snapshot(&fx.exp);
    let handle = ServiceHandle::new(snap_a.clone());

    let mut group = c.benchmark_group("snapshot_swap");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(fx.total_bytes as u64));

    group.bench_function("reader_static", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (doc, cands) in &docs {
                n += handle.rank(black_box(doc), black_box(cands)).len();
            }
            black_box(n)
        })
    });

    // Publisher alternates the two prebuilt snapshots at a steady
    // cadence while the measured readers run.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let handle = &handle;
        let stop = &stop;
        let publisher = scope.spawn(move || {
            let mut flip = false;
            while !stop.load(Ordering::Acquire) {
                handle.publish(if flip { snap_a.clone() } else { snap_b.clone() });
                flip = !flip;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });

        group.bench_function("reader_during_publish", |b| {
            b.iter(|| {
                let mut n = 0usize;
                for (doc, cands) in &docs {
                    n += handle.rank(black_box(doc), black_box(cands)).len();
                }
                black_box(n)
            })
        });

        stop.store(true, Ordering::Release);
        publisher.join().expect("publisher");
    });
    group.finish();
}

/// The serving layer over real loopback sockets: one request per
/// connection at batch size 1 (the baseline every HTTP framework starts
/// from) vs keep-alive connections coalesced by the micro-batcher into
/// `rank_batch_online` calls of up to 16 documents. The acceptance bar
/// is ≥2× for the batched mode; see `perf_report`'s `server_loopback`
/// row for the recorded ratio.
fn bench_server_loopback(c: &mut Criterion) {
    use ctxrank_bench::{drive_loopback_pass, loopback_config, loopback_workload};

    let exp = Experiment::build(ExperimentConfig::small(0xbe7c4));
    let workload = loopback_workload(&exp);
    let handle = std::sync::Arc::new(ctxrank_framework::ServiceHandle::new(
        ctxrank_bench::build_snapshot(&exp),
    ));

    let mut group = c.benchmark_group("server_loopback");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(workload.doc_bytes as u64));

    {
        let server =
            ctxrank_serve::Server::start(std::sync::Arc::clone(&handle), loopback_config(1))
                .expect("start baseline server");
        let addr = server.local_addr();
        group.bench_function("one_shot_batch1", |b| {
            b.iter(|| black_box(drive_loopback_pass(addr, &workload.bodies, false)))
        });
        server.shutdown();
    }
    {
        let server =
            ctxrank_serve::Server::start(std::sync::Arc::clone(&handle), loopback_config(16))
                .expect("start batched server");
        let addr = server.local_addr();
        group.bench_function("keep_alive_batch16", |b| {
            b.iter(|| black_box(drive_loopback_pass(addr, &workload.bodies, true)))
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stemmer_and_ranker,
    bench_annotation_component,
    bench_ranker_parallel,
    bench_experiment_build_parallel,
    bench_snapshot_swap,
    bench_server_loopback
);
criterion_main!(benches);
