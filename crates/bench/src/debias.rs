//! End-to-end position-bias debiasing experiment.
//!
//! Pipeline: generate a rank-annotated synthetic log under a chosen
//! bias model (`ctxrank_synth::generate_ranked_log`), round-trip it
//! through the checksummed event codec, fit per-rank examination
//! propensities with RegressionEM (no relevance labels), then feed the
//! same log to two §VIII online adjusters — a naive one that believes
//! raw clicks and an IPW one that reweights clicks by clipped inverse
//! propensities. Each story's surfaces are ranked by both adjusters'
//! CTR estimates and scored against the ground-truth attractiveness
//! with the paper's golden NDCG (CTR-bucket gains). The exact binomial
//! sign test over the paired per-story NDCGs yields the verdict:
//! under PBM bias the IPW arm must win (p < alpha); on an unbiased log
//! the two arms must tie. Both gates run in CI over the pinned seed.

use ctxrank_eval::{debias_outcome, ndcg_at_k, CtrBuckets, DebiasOutcome};
use ctxrank_framework::{
    EmCell, EmConfig, OnlineConfig, OnlineCtrAdjuster, PropensityEstimator, DEFAULT_WEIGHT_CAP,
};
use ctxrank_querylog::{decode_all, Event};
use ctxrank_synth::{generate_ranked_log, NoBias, Pbm, PositionBiasModel, RankedLogConfig};
use std::collections::{BTreeMap, HashMap};

/// Configuration for [`run_debias_experiment`]. The default is the
/// pinned CI experiment: big enough for the sign test to resolve the
/// treatment effect, small enough to run in debug builds.
#[derive(Debug, Clone)]
pub struct DebiasConfig {
    /// Master seed for the synthetic log.
    pub seed: u64,
    /// Independent story (query) contexts — the sign-test sample size.
    pub stories: usize,
    /// Ranked slots per story.
    pub slots: usize,
    /// Feedback batches per story.
    pub batches: usize,
    /// Impressions per batch.
    pub views_per_batch: u64,
    /// Per-adjacent-pair transposition probability (EM identifiability).
    pub swap_prob: f64,
    /// Generate under `Pbm { eta: pbm_eta }` when true, `NoBias` when
    /// false (the control arm of the CI gate).
    pub biased: bool,
    /// PBM sharpness when `biased`.
    pub pbm_eta: f64,
    /// RegressionEM iteration budget.
    pub em_iterations: usize,
    /// IPW clipping cap handed to the fitted propensity table.
    pub weight_cap: f64,
    /// NDCG truncation depth.
    pub ndcg_k: usize,
    /// Sign-test significance threshold.
    pub alpha: f64,
}

impl Default for DebiasConfig {
    fn default() -> Self {
        Self {
            seed: 0xD_EB1A5,
            stories: 120,
            slots: 8,
            batches: 48,
            views_per_batch: 400,
            swap_prob: 0.15,
            biased: true,
            pbm_eta: 1.0,
            em_iterations: 50,
            weight_cap: DEFAULT_WEIGHT_CAP,
            ndcg_k: 8,
            alpha: 0.05,
        }
    }
}

/// Everything the perf report and the CI gates need from one run.
#[derive(Debug, Clone)]
pub struct DebiasReport {
    /// `"pbm"` or `"unbiased"` — which log the run scored.
    pub mode: &'static str,
    /// Stories scored (sign-test sample size).
    pub stories: usize,
    /// `RankedClick` events consumed (after the codec round-trip).
    pub events: usize,
    /// EM-fitted examination curve, normalized to rank 0.
    pub fitted_propensities: Vec<f64>,
    /// Paired-NDCG outcome: means, sign test, verdict.
    pub outcome: DebiasOutcome,
}

/// Run the biased-log → estimate → reweight → score pipeline.
///
/// Deterministic in `config`: the log generator, the EM fit and both
/// adjusters are seeded/closed-form, so the same configuration always
/// produces the same verdict.
pub fn run_debias_experiment(config: &DebiasConfig) -> DebiasReport {
    let log_config = RankedLogConfig {
        seed: config.seed,
        stories: config.stories,
        slots: config.slots,
        batches: config.batches,
        views_per_batch: config.views_per_batch,
        swap_prob: config.swap_prob,
    };
    let pbm = Pbm {
        eta: config.pbm_eta,
    };
    let bias: &dyn PositionBiasModel = if config.biased { &pbm } else { &NoBias };
    let log = generate_ranked_log(&log_config, bias);

    // Round-trip through the length-prefixed checksummed codec — the
    // experiment consumes exactly what a persisted log would replay.
    let mut buf = Vec::new();
    for event in &log.events {
        event.encode_into(&mut buf);
    }
    let events = decode_all(&buf).expect("freshly encoded log must decode");

    // Aggregate (surface, rank) evidence for the EM estimator. Surfaces
    // are interned to dense indices; ground truth never enters.
    let mut surface_ids: HashMap<&str, usize> = HashMap::new();
    // BTreeMap keeps the EM's float accumulation order deterministic.
    let mut cells: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    for event in &events {
        if let Event::RankedClick {
            surface,
            rank,
            views,
            clicks,
            ..
        } = event
        {
            let next = surface_ids.len();
            let sid = *surface_ids.entry(surface.as_str()).or_insert(next);
            let slot = cells.entry((sid, *rank as usize)).or_insert((0, 0));
            slot.0 = slot.0.saturating_add(*views);
            slot.1 = slot.1.saturating_add(*clicks);
        }
    }
    let em_cells: Vec<EmCell> = cells
        .iter()
        .map(|(&(surface, rank), &(views, clicks))| EmCell {
            surface,
            rank,
            views,
            clicks,
        })
        .collect();
    let estimator = PropensityEstimator::new(EmConfig {
        iterations: config.em_iterations,
    });
    let fit = estimator.fit(&em_cells);
    let table = fit
        .table(config.weight_cap)
        .expect("EM examination curve is always encodable");
    let fitted_propensities: Vec<f64> = (0..table.ranks()).map(|r| table.relative(r)).collect();

    // Two §VIII adjusters over the identical event stream: the naive
    // arm ignores rank, the treatment arm reweights by 1/propensity.
    let mut naive = OnlineCtrAdjuster::new(OnlineConfig::default());
    let mut ipw = OnlineCtrAdjuster::new(OnlineConfig::default());
    ipw.set_propensities(table);
    for event in &events {
        if let Event::RankedClick {
            surface,
            rank,
            views,
            clicks,
            ..
        } = event
        {
            naive.record(surface, *views, *clicks);
            ipw.record_ranked(surface, *rank as usize, *views, *clicks);
        }
    }

    // Golden NDCG: bucket gains over every story's true attractiveness,
    // then rank each story's surfaces by both adjusters' CTR estimates.
    let all_ctrs: Vec<f64> = log
        .stories
        .iter()
        .flat_map(|s| s.attractiveness.iter().copied())
        .collect();
    let buckets = CtrBuckets::new(all_ctrs);
    let mut pairs = Vec::with_capacity(log.stories.len());
    for story in &log.stories {
        let gains: Vec<f64> = story
            .attractiveness
            .iter()
            .map(|&a| buckets.gain(a))
            .collect();
        let ipw_scores: Vec<f64> = story
            .surfaces
            .iter()
            .map(|s| ipw.ctr_estimate(s).unwrap_or(0.0))
            .collect();
        let naive_scores: Vec<f64> = story
            .surfaces
            .iter()
            .map(|s| naive.ctr_estimate(s).unwrap_or(0.0))
            .collect();
        pairs.push((
            ndcg_at_k(&ipw_scores, &gains, config.ndcg_k),
            ndcg_at_k(&naive_scores, &gains, config.ndcg_k),
        ));
    }

    DebiasReport {
        mode: if config.biased { "pbm" } else { "unbiased" },
        stories: log.stories.len(),
        events: events.len(),
        fitted_propensities,
        outcome: debias_outcome(&pairs, config.alpha),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_eval::DebiasVerdict;

    fn small(biased: bool) -> DebiasConfig {
        DebiasConfig {
            stories: 60,
            batches: 24,
            views_per_batch: 250,
            biased,
            ..DebiasConfig::default()
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run_debias_experiment(&small(true));
        let b = run_debias_experiment(&small(true));
        assert_eq!(a.outcome.sign_test.wins_a, b.outcome.sign_test.wins_a);
        assert_eq!(a.outcome.sign_test.p_value, b.outcome.sign_test.p_value);
        assert_eq!(a.fitted_propensities, b.fitted_propensities);
        assert_eq!(a.events, a.stories * 24 * 8);
    }

    #[test]
    fn ipw_beats_naive_on_pbm_biased_log() {
        let report = run_debias_experiment(&small(true));
        assert_eq!(report.mode, "pbm");
        assert_eq!(report.outcome.verdict, DebiasVerdict::Win);
        assert!(
            report.outcome.mean_ndcg_treatment > report.outcome.mean_ndcg_control,
            "ipw {} vs naive {}",
            report.outcome.mean_ndcg_treatment,
            report.outcome.mean_ndcg_control
        );
        // The fitted curve must actually decay — EM found the bias.
        let fitted = &report.fitted_propensities;
        assert!(fitted[0] > fitted[fitted.len() - 1] * 2.0, "{fitted:?}");
    }

    #[test]
    fn arms_tie_on_unbiased_log() {
        let report = run_debias_experiment(&small(false));
        assert_eq!(report.mode, "unbiased");
        assert_eq!(report.outcome.verdict, DebiasVerdict::Tie);
        assert!(report.outcome.sign_test.p_value >= 0.05);
    }
}
