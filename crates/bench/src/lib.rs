//! Experiment harness: everything the per-table binaries share.
//!
//! [`Experiment::build`] assembles the full §III pipeline over a
//! `SynthWorld`: unit extraction, the entity dictionary, the Shortcuts
//! annotation pipeline, click simulation with the paper's data-cleaning
//! rules, 2500/500 character windowing, feature extraction and the three
//! relevance models. [`rankers`] then evaluates any ranking policy
//! (random, concept-vector baseline, relevance-only, learned models)
//! with weighted error rate and NDCG under five-fold cross-validation —
//! the protocol behind Tables III–V and Figures 1–3.

pub mod dataset;
pub mod debias;
pub mod experiment;
pub mod loopback;
pub mod openloop;
pub mod production;
pub mod rankers;
pub mod report;
pub mod stages;

pub use dataset::{Dataset, Item, WindowGroup};
pub use debias::{run_debias_experiment, DebiasConfig, DebiasReport};
pub use experiment::{Experiment, ExperimentConfig};
pub use loopback::{
    drive_loopback_pass, loopback_config, loopback_workload, LoopbackWorkload, LOOPBACK_CLIENTS,
    LOOPBACK_DOC_BYTES, LOOPBACK_REQUESTS_PER_CLIENT,
};
pub use openloop::{
    max_sustainable_rps, openloop_bodies, openloop_server_config, run_open_loop, OpenLoopConfig,
    OpenLoopReport,
};
pub use production::{build_projector, build_runtime_ranker, build_snapshot};
pub use rankers::{evaluate_fixed, evaluate_learned, EvalResult, FeatureSet};
pub use report::{fmt_pct, print_table};
pub use stages::{
    FeatureArtifact, FeatureStage, MiningArtifact, MiningStage, PublishStage, TrainArtifact,
    TrainStage, WorldArtifact, WorldStage,
};
