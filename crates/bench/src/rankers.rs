//! Ranking policies and their cross-validated evaluation.

use crate::dataset::{Dataset, Item};
use ctxrank_eval::{ErrorRateAccumulator, NdcgAccumulator};
use ctxrank_features::MiningResource;
use ctxrank_ltr::{train, KernelKind, RankGroup, SvmConfig};

/// Which feature subset a learned model sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureSet {
    /// The nine Table I features.
    AllInterest,
    /// Table III ablation: all interestingness features except one group
    /// (`"query_logs"`, `"taxonomy"`, `"search_results"`, `"other"`,
    /// `"text_based"`).
    InterestWithout(&'static str),
    /// Interestingness + the relevance score from one resource (Table V).
    InterestPlusRelevance(MiningResource),
    /// A single interestingness dimension (diagnostics).
    SingleInterest(usize),
}

impl FeatureSet {
    /// Assemble the feature vector for one item.
    pub fn features(&self, item: &Item) -> Vec<f64> {
        match self {
            FeatureSet::AllInterest => item.interest.clone(),
            FeatureSet::InterestWithout(group) => {
                let groups = ctxrank_features::InterestFeatures::groups();
                item.interest
                    .iter()
                    .zip(groups.iter())
                    .filter(|(_, g)| **g != *group)
                    .map(|(v, _)| *v)
                    .collect()
            }
            FeatureSet::InterestPlusRelevance(r) => {
                let mut v = item.interest.clone();
                v.push(item.relevance_for(*r));
                v
            }
            FeatureSet::SingleInterest(d) => vec![item.interest[*d]],
        }
    }
}

/// One policy's evaluation outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalResult {
    /// Eq. 5 weighted error rate.
    pub weighted_error: f64,
    /// Eq. 4 plain error rate.
    pub error: f64,
    /// NDCG@1, @2, @3 (Eq. 6 gains).
    pub ndcg: [f64; 3],
}

impl EvalResult {
    /// Weighted error rate as a percentage.
    pub fn wer_pct(&self) -> f64 {
        self.weighted_error * 100.0
    }
}

/// Evaluate a fixed (training-free) scorer over the whole dataset.
pub fn evaluate_fixed(dataset: &Dataset, scorer: impl Fn(&Item) -> f64) -> EvalResult {
    let mut err = ErrorRateAccumulator::new();
    let mut ndcg = NdcgAccumulator::new(&[1, 2, 3]);
    for g in &dataset.groups {
        let scores: Vec<f64> = g.items.iter().map(&scorer).collect();
        let ctrs: Vec<f64> = g.items.iter().map(|i| i.ctr).collect();
        let gains: Vec<f64> = ctrs.iter().map(|&c| dataset.buckets.gain(c)).collect();
        err.add(&scores, &ctrs);
        ndcg.add(&scores, &gains);
    }
    let m = ndcg.means();
    EvalResult {
        weighted_error: err.weighted_error_rate(),
        error: err.error_rate(),
        ndcg: [m[0], m[1], m[2]],
    }
}

/// A deterministic pseudo-random scorer (the "Random" baseline): hashes
/// the item identity with a seed.
pub fn random_scorer(seed: u64) -> impl Fn(&Item) -> f64 {
    move |item: &Item| {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seed.hash(&mut h);
        item.surface.hash(&mut h);
        item.concept.0.hash(&mut h);
        (item.position_frac.to_bits()).hash(&mut h);
        (h.finish() % 1_000_003) as f64
    }
}

/// Train and evaluate a ranking SVM under story-level k-fold
/// cross-validation.
///
/// `tiebreak_relevance` adds an infinitesimal preference for the
/// higher-relevance concept, as §V-A.6 does for the combined model
/// ("in case of ties, we decided to favor concepts that have higher
/// relevance scores").
pub fn evaluate_learned(
    dataset: &Dataset,
    feature_set: FeatureSet,
    svm: &SvmConfig,
    k_folds: usize,
    fold_seed: u64,
    tiebreak_relevance: bool,
) -> EvalResult {
    // Folds are independent: train/evaluate them on worker threads and
    // merge the accumulators afterwards (results are identical to the
    // sequential order because the metrics are commutative sums).
    let folds = dataset.story_folds(k_folds, fold_seed);
    let fold_results: Vec<(ErrorRateAccumulator, NdcgAccumulator)> = std::thread::scope(|scope| {
        let handles: Vec<_> = folds
            .iter()
            .map(|(train_groups, test_groups)| {
                scope.spawn(move || {
                    run_fold(
                        dataset,
                        feature_set,
                        svm,
                        train_groups,
                        test_groups,
                        tiebreak_relevance,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fold worker panicked"))
            .collect()
    });

    let mut err = ErrorRateAccumulator::new();
    let mut ndcg = NdcgAccumulator::new(&[1, 2, 3]);
    for (fold_err, fold_ndcg) in fold_results {
        err.merge(&fold_err);
        ndcg.merge(&fold_ndcg);
    }

    let m = ndcg.means();
    EvalResult {
        weighted_error: err.weighted_error_rate(),
        error: err.error_rate(),
        ndcg: [m[0], m[1], m[2]],
    }
}

/// Train on one fold's training groups and score its test groups.
fn run_fold(
    dataset: &Dataset,
    feature_set: FeatureSet,
    svm: &SvmConfig,
    train_groups: &[usize],
    test_groups: &[usize],
    tiebreak_relevance: bool,
) -> (ErrorRateAccumulator, NdcgAccumulator) {
    let mut err = ErrorRateAccumulator::new();
    let mut ndcg = NdcgAccumulator::new(&[1, 2, 3]);
    let training: Vec<RankGroup> = train_groups
        .iter()
        .map(|&g| {
            let group = &dataset.groups[g];
            RankGroup::from_pairs(
                group
                    .items
                    .iter()
                    .map(|item| (feature_set.features(item), item.ctr)),
            )
        })
        .filter(|g| {
            g.instances
                .iter()
                .any(|a| g.instances.iter().any(|b| a.label > b.label))
        })
        .collect();
    if training.is_empty() {
        return (err, ndcg);
    }
    let model = train(&training, svm);
    for &g in test_groups {
        let group = &dataset.groups[g];
        let scores: Vec<f64> = group
            .items
            .iter()
            .map(|item| {
                let base = model.score(&feature_set.features(item));
                if tiebreak_relevance {
                    base + 1e-9 * item.relevance_raw_for(MiningResource::Snippets)
                } else {
                    base
                }
            })
            .collect();
        let ctrs: Vec<f64> = group.items.iter().map(|i| i.ctr).collect();
        let gains: Vec<f64> = ctrs.iter().map(|&c| dataset.buckets.gain(c)).collect();
        err.add(&scores, &ctrs);
        ndcg.add(&scores, &gains);
    }
    (err, ndcg)
}

/// Cross-validated per-group scores: every dataset group is scored by
/// the model of the fold in which it was held out. Enables paired
/// significance tests between policies
/// ([`ctxrank_eval::paired_permutation_wer`]).
pub fn cv_scores(
    dataset: &Dataset,
    feature_set: FeatureSet,
    svm: &SvmConfig,
    k_folds: usize,
    fold_seed: u64,
    tiebreak_relevance: bool,
) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); dataset.groups.len()];
    for (train_groups, test_groups) in dataset.story_folds(k_folds, fold_seed) {
        let training: Vec<RankGroup> = train_groups
            .iter()
            .map(|&g| {
                let group = &dataset.groups[g];
                RankGroup::from_pairs(
                    group
                        .items
                        .iter()
                        .map(|item| (feature_set.features(item), item.ctr)),
                )
            })
            .filter(|g| {
                g.instances
                    .iter()
                    .any(|a| g.instances.iter().any(|b| a.label > b.label))
            })
            .collect();
        if training.is_empty() {
            continue;
        }
        let model = train(&training, svm);
        for &g in &test_groups {
            out[g] = dataset.groups[g]
                .items
                .iter()
                .map(|item| {
                    let base = model.score(&feature_set.features(item));
                    if tiebreak_relevance {
                        base + 1e-9 * item.relevance_raw_for(MiningResource::Snippets)
                    } else {
                        base
                    }
                })
                .collect();
        }
    }
    out
}

/// Train with both kernels ("we test with both linear and the radial
/// basis function kernels ... and report the best result").
pub fn evaluate_best_kernel(
    dataset: &Dataset,
    feature_set: FeatureSet,
    k_folds: usize,
    seed: u64,
    tiebreak_relevance: bool,
) -> EvalResult {
    let linear = evaluate_learned(
        dataset,
        feature_set,
        &SvmConfig {
            kernel: KernelKind::Linear,
            seed,
            ..SvmConfig::default()
        },
        k_folds,
        seed,
        tiebreak_relevance,
    );
    let rbf = evaluate_learned(
        dataset,
        feature_set,
        &SvmConfig {
            kernel: KernelKind::Rbf {
                gamma: 0.1,
                dim: 256,
            },
            seed,
            ..SvmConfig::default()
        },
        k_folds,
        seed,
        tiebreak_relevance,
    );
    if rbf.weighted_error < linear.weighted_error {
        rbf
    } else {
        linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::WindowGroup;
    use ctxrank_synth::ConceptId;

    /// A dataset where interest\[0\] perfectly predicts CTR.
    fn easy_dataset(n_stories: usize) -> Dataset {
        let groups = (0..n_stories)
            .map(|s| WindowGroup {
                story: s,
                window: 0,
                items: (0..4)
                    .map(|i| {
                        let ctr = 0.01 * (i + 1) as f64 + s as f64 * 1e-5;
                        Item {
                            surface: format!("c{s}-{i}"),
                            concept: ConceptId((s * 4 + i) as u32),
                            ctr,
                            baseline_score: 0.0,
                            interest: {
                                let mut v = vec![0.0; 9];
                                v[0] = ctr * 100.0;
                                v
                            },
                            relevance: [ctr * 10.0; 3],
                            relevance_raw: [ctr * 10.0; 3],
                            position_frac: 0.0,
                            gt_relevance: 0.5,
                        }
                    })
                    .collect(),
            })
            .collect();
        Dataset::new(groups)
    }

    #[test]
    fn learned_model_beats_random_on_easy_data() {
        let ds = easy_dataset(25);
        let random = evaluate_fixed(&ds, random_scorer(1));
        let learned = evaluate_learned(
            &ds,
            FeatureSet::AllInterest,
            &SvmConfig::default(),
            5,
            1,
            false,
        );
        assert!(
            learned.weighted_error < 0.05,
            "learned WER {}",
            learned.weighted_error
        );
        assert!(
            (random.weighted_error - 0.5).abs() < 0.15,
            "random WER {}",
            random.weighted_error
        );
        assert!(learned.ndcg[0] > random.ndcg[0]);
    }

    #[test]
    fn fixed_perfect_scorer_zero_error() {
        let ds = easy_dataset(10);
        let r = evaluate_fixed(&ds, |i| i.ctr);
        assert_eq!(r.weighted_error, 0.0);
        assert!((r.ndcg[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ablation_removes_dimensions() {
        let ds = easy_dataset(5);
        let item = &ds.groups[0].items[0];
        let full = FeatureSet::AllInterest.features(item);
        let without_ql = FeatureSet::InterestWithout("query_logs").features(item);
        let with_rel = FeatureSet::InterestPlusRelevance(MiningResource::Snippets).features(item);
        assert_eq!(full.len(), 9);
        assert_eq!(without_ql.len(), 6);
        assert_eq!(with_rel.len(), 10);
    }

    #[test]
    fn random_scorer_deterministic() {
        let ds = easy_dataset(3);
        let a = evaluate_fixed(&ds, random_scorer(7));
        let b = evaluate_fixed(&ds, random_scorer(7));
        assert_eq!(a, b);
    }
}
