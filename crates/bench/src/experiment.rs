//! Experiment assembly: world → pipeline → clicks → features → dataset.

use crate::dataset::{resource_index, Dataset, Item, WindowGroup};
use ctxrank_features::{FeatureExtractor, MiningResource, RelevanceModel, RelevanceModelBuilder};
use ctxrank_querylog::{extract_units, UnitConfig, UnitDictionary};
use ctxrank_shortcuts::{DictionaryEntry, EntityDictionary, Pipeline, PipelineConfig};
use ctxrank_synth::news::ground_truth_relevance;
use ctxrank_synth::{clicks::simulate_story, ClickConfig, ConceptId, SynthWorld, WorldConfig};
use std::collections::{HashMap, HashSet};

/// Experiment-level configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    pub world: WorldConfig,
    pub units: UnitConfig,
    pub clicks: ClickConfig,
    /// Seed for click simulation and fold splitting.
    pub seed: u64,
    /// Keyword weighting for the relevance miner.
    pub keyword_weighting: ctxrank_features::KeywordWeighting,
    /// Minimum support for related-query suggestions.
    pub min_suggestion_freq: u64,
    /// Character-window size for position-bias control (§V-A.1).
    pub window_size: usize,
    /// Overlap between consecutive windows.
    pub window_overlap: usize,
    /// Keywords mined per concept (the paper's m = 100).
    pub relevance_m: usize,
    /// §II-B multi-term bonus in the baseline concept vector.
    pub multiterm_bonus: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            units: UnitConfig::default(),
            clicks: ClickConfig::default(),
            seed: 0x2009,
            keyword_weighting: ctxrank_features::KeywordWeighting::RawTf,
            min_suggestion_freq: 25,
            window_size: ctxrank_text::window::PAPER_WINDOW_SIZE,
            window_overlap: ctxrank_text::window::PAPER_OVERLAP,
            relevance_m: ctxrank_features::relevance::PAPER_M,
            multiterm_bonus: true,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and examples.
    pub fn small(seed: u64) -> Self {
        Self {
            world: WorldConfig::small(seed),
            units: UnitConfig::default(),
            clicks: ClickConfig::default(),
            seed,
            keyword_weighting: ctxrank_features::KeywordWeighting::RawTf,
            min_suggestion_freq: 25,
            window_size: ctxrank_text::window::PAPER_WINDOW_SIZE,
            window_overlap: ctxrank_text::window::PAPER_OVERLAP,
            relevance_m: ctxrank_features::relevance::PAPER_M,
            multiterm_bonus: true,
        }
    }
}

/// Headline corpus statistics (the paper reports 870 stories, 6420
/// concepts, 16549 clicks, 947 windows).
#[derive(Debug, Clone, Copy, Default)]
pub struct DatasetStats {
    pub stories_generated: usize,
    pub stories_kept: usize,
    pub windows: usize,
    pub concept_instances: usize,
    pub total_clicks: u64,
}

/// The fully assembled experiment.
pub struct Experiment {
    pub world: SynthWorld,
    pub units: UnitDictionary,
    pub dictionary: EntityDictionary,
    /// Relevance models indexed by [`resource_index`].
    pub relevance_models: [RelevanceModel; 3],
    /// Raw (unscaled) Table I features per dataset surface.
    pub interest_raw: HashMap<String, ctxrank_features::InterestFeatures>,
    pub dataset: Dataset,
    pub stats: DatasetStats,
    pub config: ExperimentConfig,
}

impl Experiment {
    /// Run the full offline pipeline with the default worker count
    /// ([`ctxrank_parallel::num_threads`]; override with the
    /// `CTXRANK_THREADS` environment variable).
    pub fn build(config: ExperimentConfig) -> Self {
        Self::build_with_threads(config, ctxrank_parallel::num_threads())
    }

    /// Sequential reference build. Produces byte-identical output to
    /// [`Experiment::build`] at any thread count: the parallel stages
    /// run the same per-item closures and collect by input index, so
    /// ordering never depends on scheduling.
    pub fn build_serial(config: ExperimentConfig) -> Self {
        Self::build_with_threads(config, 1)
    }

    /// Run the full offline pipeline on `threads` workers.
    ///
    /// Four independent stages fan out: per-story annotation, per-surface
    /// interestingness features, the three mining-resource relevance
    /// models, and per-story window/item assembly.
    pub fn build_with_threads(config: ExperimentConfig, threads: usize) -> Self {
        let world = SynthWorld::generate(config.world.clone());
        let units = extract_units(&world.query_log, &config.units);
        let dictionary = build_dictionary(&world);

        // Surface -> candidate concept ids (ambiguous surfaces have > 1).
        let mut by_surface: HashMap<String, Vec<ConceptId>> = HashMap::new();
        for c in world.universe.all() {
            by_surface.entry(c.surface()).or_default().push(c.id);
        }

        struct StoryData {
            story: usize,
            text: String,
            /// (surface, concept, gt relevance, first byte offset,
            /// position fraction, baseline score)
            entities: Vec<(String, ConceptId, f64, usize, f64, f64)>,
        }
        // Annotate every story with the Shortcuts pipeline (scoped so the
        // pipeline's borrows end before the stores are moved out).
        let mut pipe_config = PipelineConfig::default();
        pipe_config.vector.multiterm_bonus = config.multiterm_bonus;
        let pipeline = Pipeline::new(&dictionary, &units, |t| world.corpus.idf(t), pipe_config);
        let annotated_stories: Vec<StoryData> =
            ctxrank_parallel::par_map(threads, &world.news, |story| {
                let doc = pipeline.process(&story.text);
                let mut seen: HashSet<&str> = HashSet::new();
                let mut entities = Vec::new();
                for a in doc.rankable() {
                    if !seen.insert(a.surface.as_str()) {
                        continue; // first occurrence only, as the click report aggregates
                    }
                    let Some(cands) = by_surface.get(&a.surface) else {
                        continue; // outside the supported concept set
                    };
                    // Ambiguity: prefer the sense matching the story topic.
                    let cid = *cands
                        .iter()
                        .find(|&&c| world.universe.get(c).topic == Some(story.topic))
                        .or_else(|| {
                            cands.iter().find(|&&c| {
                                story
                                    .secondary_topic
                                    .is_some_and(|(st, _)| world.universe.get(c).topic == Some(st))
                            })
                        })
                        .unwrap_or(&cands[0]);
                    let gt = ground_truth_relevance(
                        world.universe.get(cid),
                        story.topic,
                        story.center,
                        story.secondary_topic,
                    );
                    entities.push((
                        a.surface.clone(),
                        cid,
                        gt,
                        a.span.start,
                        a.position_frac,
                        a.score,
                    ));
                }
                StoryData {
                    story: story.id,
                    text: doc.text,
                    entities,
                }
            });
        drop(pipeline);

        // Click simulation + the §V-A.1 cleaning rules.
        let mut kept: Vec<(StoryData, ctxrank_synth::StoryClicks)> = Vec::new();
        for sd in annotated_stories {
            if sd.entities.len() < 2 {
                continue;
            }
            let annotated: Vec<(ConceptId, f64, f64)> = sd
                .entities
                .iter()
                .map(|&(_, cid, gt, _, pos, _)| (cid, gt, pos))
                .collect();
            let clicks = simulate_story(
                config.seed,
                sd.story,
                &world.universe,
                &annotated,
                &config.clicks,
            );
            if clicks.passes_paper_filter() {
                kept.push((sd, clicks));
            }
        }

        // Interestingness features, one per distinct surface. Sorted so
        // every downstream pass (feature extraction, relevance mining)
        // walks surfaces in a reproducible order rather than whatever
        // the dedup set happens to hash to.
        let surfaces: Vec<String> = {
            let distinct: HashSet<&str> = kept
                .iter()
                .flat_map(|(sd, _)| sd.entities.iter().map(|e| e.0.as_str()))
                .collect();
            let mut surfaces: Vec<String> = distinct.into_iter().map(str::to_string).collect();
            surfaces.sort_unstable();
            surfaces
        };
        let extractor = FeatureExtractor::new(
            &world.query_log,
            &units,
            &world.corpus,
            |terms: &[String]| {
                by_surface
                    .get(&terms.join(" "))
                    .and_then(|ids| ids.first())
                    .map_or(0, |&id| world.encyclopedia.word_count(id))
            },
            |terms: &[String]| {
                by_surface
                    .get(&terms.join(" "))
                    .and_then(|ids| ids.first())
                    .and_then(|&id| world.universe.get(id).entity_type)
                    .map_or(0, |(hlt, _)| hlt.code())
            },
        );
        let per_surface_feats: Vec<ctxrank_features::InterestFeatures> =
            ctxrank_parallel::par_map(threads, &surfaces, |s| {
                let terms: Vec<String> = s.split(' ').map(str::to_string).collect();
                extractor.interestingness(&terms)
            });
        let mut interest_cache: HashMap<String, Vec<f64>> = HashMap::new();
        let mut interest_raw: HashMap<String, ctxrank_features::InterestFeatures> = HashMap::new();
        for (s, feats) in surfaces.iter().zip(per_surface_feats) {
            interest_cache.insert(s.clone(), feats.to_dense());
            interest_raw.insert(s.clone(), feats);
        }
        drop(extractor);

        // Relevance models for the three resources over the dataset's
        // concepts.
        let mut builder = RelevanceModelBuilder::new(&world.corpus, &world.query_log);
        builder.m = config.relevance_m;
        builder.min_idf = 3.2;
        builder.min_suggestion_freq = config.min_suggestion_freq;
        builder.weighting = config.keyword_weighting;
        let concept_term_lists: Vec<Vec<String>> = surfaces
            .iter()
            .map(|s| s.split(' ').map(str::to_string).collect())
            .collect();
        // The three resources mine independently from the shared
        // (immutable) builder; run them as one job each.
        let mut models: Vec<RelevanceModel> = {
            let builder = &builder;
            let lists = &concept_term_lists;
            ctxrank_parallel::join_all(
                threads,
                vec![
                    Box::new(|| builder.build(lists.clone(), MiningResource::Snippets)),
                    Box::new(|| builder.build(lists.clone(), MiningResource::Prisma)),
                    Box::new(|| builder.build(lists.clone(), MiningResource::Suggestions)),
                ],
            )
        };
        // Order the array by resource_index.
        models.sort_by_key(|m| resource_index(m.resource));
        let relevance_models: [RelevanceModel; 3] = models
            .try_into()
            .unwrap_or_else(|_| unreachable!("three models built"));
        drop(builder);

        // Windowing and item assembly. The relevance models are compiled
        // onto interned stem ids first: window scoring then probes dense
        // bitmaps instead of hashing stem strings per (surface, window)
        // pair, with bit-identical sums.
        let compiled: Vec<ctxrank_features::CompiledRelevance> =
            relevance_models.iter().map(|m| m.compile()).collect();
        let mut groups: Vec<WindowGroup> = Vec::new();
        let mut stats = DatasetStats {
            stories_generated: world.news.len(),
            stories_kept: kept.len(),
            ..DatasetStats::default()
        };
        let per_story_groups: Vec<Vec<WindowGroup>> =
            ctxrank_parallel::par_map(threads, &kept, |(sd, clicks)| {
                let ctr_of: HashMap<ConceptId, f64> = clicks
                    .records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.concept, clicks.ctr(i)))
                    .collect();
                let windows = ctxrank_text::window::windows(
                    &sd.text,
                    config.window_size,
                    config.window_overlap,
                );
                let mut story_groups = Vec::new();
                for (w_idx, w) in windows.iter().enumerate() {
                    let members: Vec<&(String, ConceptId, f64, usize, f64, f64)> =
                        sd.entities.iter().filter(|e| w.contains(e.3)).collect();
                    if members.len() < 2 {
                        continue;
                    }
                    let stems = ctxrank_text::stemmed_terms(w.of(&sd.text));
                    let contexts: Vec<Vec<bool>> = compiled
                        .iter()
                        .map(|c| c.context_from_stems(&stems))
                        .collect();
                    let items: Vec<Item> = members
                        .iter()
                        .map(|&&(ref surface, cid, gt, _, pos, baseline)| {
                            let mut relevance = [0.0; 3];
                            let mut relevance_raw = [0.0; 3];
                            for (i, model) in compiled.iter().enumerate() {
                                relevance_raw[i] = model.score(surface, &contexts[i]);
                                relevance[i] = relevance_raw[i].ln_1p();
                            }
                            Item {
                                surface: surface.clone(),
                                concept: cid,
                                ctr: ctr_of.get(&cid).copied().unwrap_or(0.0),
                                baseline_score: baseline,
                                interest: interest_cache[surface].clone(),
                                relevance,
                                relevance_raw,
                                position_frac: pos,
                                gt_relevance: gt,
                            }
                        })
                        .collect();
                    story_groups.push(WindowGroup {
                        story: sd.story,
                        window: w_idx,
                        items,
                    });
                }
                story_groups
            });
        for ((_, clicks), story_groups) in kept.iter().zip(per_story_groups) {
            stats.total_clicks += clicks.total_clicks();
            for g in story_groups {
                stats.concept_instances += g.items.len();
                groups.push(g);
            }
        }
        stats.windows = groups.len();

        Self {
            world,
            units,
            dictionary,
            relevance_models,
            interest_raw,
            dataset: Dataset::new(groups),
            stats,
            config,
        }
    }
}

/// Build the editorial dictionary from the universe's named entities,
/// with topic words as disambiguation context.
pub fn build_dictionary(world: &SynthWorld) -> EntityDictionary {
    let mut dict = EntityDictionary::new();
    for c in world.universe.all() {
        if let Some((hlt, subtype)) = c.entity_type {
            let context_terms = c
                .topic
                .map(|t| world.lexicon.topic(t)[..12.min(world.lexicon.topic(t).len())].to_vec())
                .unwrap_or_default();
            dict.insert(DictionaryEntry {
                terms: c.terms.clone(),
                type_code: hlt.code(),
                subtype: subtype.to_string(),
                geo: c.geo,
                context_terms,
            });
        }
    }
    dict
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiment_builds() {
        let exp = Experiment::build(ExperimentConfig::small(3));
        assert!(exp.stats.stories_kept > 20, "{:?}", exp.stats);
        assert!(exp.stats.windows > 20, "{:?}", exp.stats);
        assert!(exp.stats.concept_instances > 50, "{:?}", exp.stats);
        assert!(exp.stats.total_clicks > 100, "{:?}", exp.stats);
        // Every group has >= 2 items and CTR labels in [0, 1].
        for g in &exp.dataset.groups {
            assert!(g.items.len() >= 2);
            for i in &g.items {
                assert!((0.0..=1.0).contains(&i.ctr));
                assert_eq!(i.interest.len(), 9);
            }
        }
    }

    #[test]
    fn relevance_feature_tracks_ground_truth() {
        let exp = Experiment::build(ExperimentConfig::small(4));
        let snip = resource_index(MiningResource::Snippets);
        let (mut rel_sum, mut rel_n) = (0.0, 0);
        let (mut irr_sum, mut irr_n) = (0.0, 0);
        for g in &exp.dataset.groups {
            for i in &g.items {
                if i.gt_relevance > 0.9 {
                    rel_sum += i.relevance[snip];
                    rel_n += 1;
                } else if i.gt_relevance < 0.1 {
                    irr_sum += i.relevance[snip];
                    irr_n += 1;
                }
            }
        }
        assert!(rel_n > 0 && irr_n > 0);
        let rel_mean = rel_sum / rel_n as f64;
        let irr_mean = irr_sum / irr_n as f64;
        assert!(
            rel_mean > irr_mean,
            "snippet relevance should separate relevant ({rel_mean}) from irrelevant ({irr_mean})"
        );
    }

    #[test]
    fn deterministic_build() {
        let a = Experiment::build(ExperimentConfig::small(5));
        let b = Experiment::build(ExperimentConfig::small(5));
        assert_eq!(a.stats.windows, b.stats.windows);
        assert_eq!(a.stats.total_clicks, b.stats.total_clicks);
    }
}
