//! Experiment assembly: world → pipeline → clicks → features → dataset.
//!
//! The pipeline itself lives in [`crate::stages`] as typed stages;
//! [`Experiment::build`] is the canonical composition of them.

use crate::dataset::Dataset;
use crate::stages::{FeatureArtifact, FeatureStage, MiningStage, WorldArtifact, WorldStage};
use ctxrank_features::RelevanceModel;
use ctxrank_querylog::{UnitConfig, UnitDictionary};
use ctxrank_shortcuts::{DictionaryEntry, EntityDictionary, Pipeline, PipelineConfig};
use ctxrank_synth::{ClickConfig, SynthWorld, WorldConfig};
use std::collections::HashMap;

/// Experiment-level configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    pub world: WorldConfig,
    pub units: UnitConfig,
    pub clicks: ClickConfig,
    /// Seed for click simulation and fold splitting.
    pub seed: u64,
    /// Keyword weighting for the relevance miner.
    pub keyword_weighting: ctxrank_features::KeywordWeighting,
    /// Minimum support for related-query suggestions.
    pub min_suggestion_freq: u64,
    /// Character-window size for position-bias control (§V-A.1).
    pub window_size: usize,
    /// Overlap between consecutive windows.
    pub window_overlap: usize,
    /// Keywords mined per concept (the paper's m = 100).
    pub relevance_m: usize,
    /// §II-B multi-term bonus in the baseline concept vector.
    pub multiterm_bonus: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            units: UnitConfig::default(),
            clicks: ClickConfig::default(),
            seed: 0x2009,
            keyword_weighting: ctxrank_features::KeywordWeighting::RawTf,
            min_suggestion_freq: 25,
            window_size: ctxrank_text::window::PAPER_WINDOW_SIZE,
            window_overlap: ctxrank_text::window::PAPER_OVERLAP,
            relevance_m: ctxrank_features::relevance::PAPER_M,
            multiterm_bonus: true,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and examples.
    pub fn small(seed: u64) -> Self {
        Self {
            world: WorldConfig::small(seed),
            units: UnitConfig::default(),
            clicks: ClickConfig::default(),
            seed,
            keyword_weighting: ctxrank_features::KeywordWeighting::RawTf,
            min_suggestion_freq: 25,
            window_size: ctxrank_text::window::PAPER_WINDOW_SIZE,
            window_overlap: ctxrank_text::window::PAPER_OVERLAP,
            relevance_m: ctxrank_features::relevance::PAPER_M,
            multiterm_bonus: true,
        }
    }
}

/// Headline corpus statistics (the paper reports 870 stories, 6420
/// concepts, 16549 clicks, 947 windows).
#[derive(Debug, Clone, Copy, Default)]
pub struct DatasetStats {
    pub stories_generated: usize,
    pub stories_kept: usize,
    pub windows: usize,
    pub concept_instances: usize,
    pub total_clicks: u64,
}

/// The fully assembled experiment.
pub struct Experiment {
    pub world: SynthWorld,
    pub units: UnitDictionary,
    pub dictionary: EntityDictionary,
    /// Relevance models indexed by [`crate::dataset::resource_index`].
    pub relevance_models: [RelevanceModel; 3],
    /// Raw (unscaled) Table I features per dataset surface.
    pub interest_raw: HashMap<String, ctxrank_features::InterestFeatures>,
    pub dataset: Dataset,
    pub stats: DatasetStats,
    pub config: ExperimentConfig,
}

impl Experiment {
    /// Run the full offline pipeline with the default worker count
    /// ([`ctxrank_parallel::num_threads`]; override with the
    /// `CTXRANK_THREADS` environment variable).
    pub fn build(config: ExperimentConfig) -> Self {
        Self::build_with_threads(config, ctxrank_parallel::num_threads())
    }

    /// Sequential reference build. Produces byte-identical output to
    /// [`Experiment::build`] at any thread count: the parallel stages
    /// run the same per-item closures and collect by input index, so
    /// ordering never depends on scheduling.
    pub fn build_serial(config: ExperimentConfig) -> Self {
        Self::build_with_threads(config, 1)
    }

    /// Run the full offline pipeline on `threads` workers by composing
    /// the typed stages: [`WorldStage`] → [`MiningStage`] →
    /// [`FeatureStage`]. ([`crate::stages::TrainStage`] and
    /// [`crate::stages::PublishStage`] continue from the finished
    /// experiment — see [`crate::production::build_snapshot`].)
    ///
    /// Inside the stages, four independent loops fan out across the
    /// workers: per-story annotation, per-surface interestingness
    /// features, the three mining-resource relevance models, and
    /// per-story window/item assembly.
    pub fn build_with_threads(config: ExperimentConfig, threads: usize) -> Self {
        let world = WorldStage::run(&config);
        let mining = MiningStage::run(&config, &world, threads);
        let features = FeatureStage::run(&config, &world, &mining, threads);
        let WorldArtifact {
            world,
            units,
            dictionary,
            ..
        } = world;
        let FeatureArtifact {
            interest_raw,
            relevance_models,
            dataset,
            stats,
        } = features;
        Self {
            world,
            units,
            dictionary,
            relevance_models,
            interest_raw,
            dataset,
            stats,
            config,
        }
    }

    /// The Shortcuts annotation pipeline wired over this experiment's
    /// own knowledge sources — the same wiring [`MiningStage`] used
    /// during the build. Benchmarks and reports should call this
    /// instead of re-deriving the dictionary and unit list.
    pub fn annotation_pipeline(&self) -> Pipeline<'_> {
        Pipeline::new(
            &self.dictionary,
            &self.units,
            |t| self.world.corpus.idf(t),
            PipelineConfig::with_multiterm_bonus(self.config.multiterm_bonus),
        )
    }
}

/// Build the editorial dictionary from the universe's named entities,
/// with topic words as disambiguation context.
pub fn build_dictionary(world: &SynthWorld) -> EntityDictionary {
    let mut dict = EntityDictionary::new();
    for c in world.universe.all() {
        if let Some((hlt, subtype)) = c.entity_type {
            let context_terms = c
                .topic
                .map(|t| world.lexicon.topic(t)[..12.min(world.lexicon.topic(t).len())].to_vec())
                .unwrap_or_default();
            dict.insert(DictionaryEntry {
                terms: c.terms.clone(),
                type_code: hlt.code(),
                subtype: subtype.to_string(),
                geo: c.geo,
                context_terms,
            });
        }
    }
    dict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::resource_index;
    use ctxrank_features::MiningResource;

    #[test]
    fn small_experiment_builds() {
        let exp = Experiment::build(ExperimentConfig::small(3));
        assert!(exp.stats.stories_kept > 20, "{:?}", exp.stats);
        assert!(exp.stats.windows > 20, "{:?}", exp.stats);
        assert!(exp.stats.concept_instances > 50, "{:?}", exp.stats);
        assert!(exp.stats.total_clicks > 100, "{:?}", exp.stats);
        // Every group has >= 2 items and CTR labels in [0, 1].
        for g in &exp.dataset.groups {
            assert!(g.items.len() >= 2);
            for i in &g.items {
                assert!((0.0..=1.0).contains(&i.ctr));
                assert_eq!(i.interest.len(), 9);
            }
        }
    }

    #[test]
    fn relevance_feature_tracks_ground_truth() {
        let exp = Experiment::build(ExperimentConfig::small(4));
        let snip = resource_index(MiningResource::Snippets);
        let (mut rel_sum, mut rel_n) = (0.0, 0);
        let (mut irr_sum, mut irr_n) = (0.0, 0);
        for g in &exp.dataset.groups {
            for i in &g.items {
                if i.gt_relevance > 0.9 {
                    rel_sum += i.relevance[snip];
                    rel_n += 1;
                } else if i.gt_relevance < 0.1 {
                    irr_sum += i.relevance[snip];
                    irr_n += 1;
                }
            }
        }
        assert!(rel_n > 0 && irr_n > 0);
        let rel_mean = rel_sum / rel_n as f64;
        let irr_mean = irr_sum / irr_n as f64;
        assert!(
            rel_mean > irr_mean,
            "snippet relevance should separate relevant ({rel_mean}) from irrelevant ({irr_mean})"
        );
    }

    #[test]
    fn deterministic_build() {
        let a = Experiment::build(ExperimentConfig::small(5));
        let b = Experiment::build(ExperimentConfig::small(5));
        assert_eq!(a.stats.windows, b.stats.windows);
        assert_eq!(a.stats.total_clicks, b.stats.total_clicks);
    }
}
