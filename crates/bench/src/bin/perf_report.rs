//! Machine-readable §VI throughput report.
//!
//! Re-runs the paper-shaped corpus (1445 docs, ~2.5 KB, ~6.45
//! candidates each) through the stemmer, ranker and annotation
//! components — serial and parallel — plus the whole
//! `Experiment::build` pipeline, and writes `BENCH_throughput.json` at
//! the repository root so the perf trajectory stays comparable across
//! PRs. One row per component:
//! `{component, serial_mb_s, parallel_mb_s, speedup, threads}`.
//!
//! Knobs: `CTXRANK_THREADS` (pool size), `PERF_REPORT_REPS` (best-of-N
//! timing, default 3).

use ctxrank_bench::{build_runtime_ranker, Experiment, ExperimentConfig};
use std::hint::black_box;
use std::time::Instant;

const NUM_DOCS: usize = 1445;
const TARGET_DOC_BYTES: usize = 2500;

struct Fixture {
    exp: Experiment,
    docs: Vec<String>,
    candidates: Vec<Vec<String>>,
    ranker: ctxrank_framework::RuntimeRanker,
    total_bytes: usize,
}

fn fixture() -> Fixture {
    let exp = Experiment::build(ExperimentConfig::small(0xbe7c4));
    let ranker = build_runtime_ranker(&exp);
    let surfaces: Vec<String> = {
        let mut s: Vec<String> = exp.interest_raw.keys().cloned().collect();
        s.sort_unstable();
        s
    };
    let mut docs = Vec::with_capacity(NUM_DOCS);
    let mut candidates = Vec::with_capacity(NUM_DOCS);
    let mut total_bytes = 0;
    for i in 0..NUM_DOCS {
        let story = &exp.world.news[i % exp.world.news.len()];
        let mut text = story.text.clone();
        let mut cut = TARGET_DOC_BYTES.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        total_bytes += text.len();
        let n = if i % 20 < 9 { 6 } else { 7 };
        let cands: Vec<String> = (0..n)
            .map(|j| surfaces[(i * 7 + j * 13) % surfaces.len()].clone())
            .collect();
        docs.push(text);
        candidates.push(cands);
    }
    Fixture {
        exp,
        docs,
        candidates,
        ranker,
        total_bytes,
    }
}

/// Best-of-N wall time, in seconds.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn row(
    component: &str,
    bytes: usize,
    serial_s: f64,
    parallel_s: f64,
    threads: usize,
) -> serde_json::Value {
    let mb = bytes as f64 / 1e6;
    serde_json::json!({
        "component": component,
        "serial_mb_s": round2(mb / serial_s),
        "parallel_mb_s": round2(mb / parallel_s),
        "speedup": round2(serial_s / parallel_s),
        "threads": threads,
    })
}

fn main() {
    let reps: usize = std::env::var("PERF_REPORT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads = ctxrank_parallel::num_threads();
    eprintln!("perf_report: threads={threads} reps={reps}");

    let fx = fixture();
    let docs: Vec<(&str, &[String])> = fx
        .docs
        .iter()
        .zip(&fx.candidates)
        .map(|(d, c)| (d.as_str(), c.as_slice()))
        .collect();

    // Stemmer component (paper: 7.9 MB/s).
    let stem_serial = best_secs(reps, || {
        fx.docs
            .iter()
            .map(|d| fx.ranker.stem_document(d).len())
            .sum::<usize>()
    });
    let stem_parallel = best_secs(reps, || {
        ctxrank_parallel::par_map(threads, &fx.docs, |d| fx.ranker.stem_document(d).len())
            .into_iter()
            .sum::<usize>()
    });

    // Ranker component (paper: 2.4 MB/s).
    let rank_serial = best_secs(reps, || {
        docs.iter()
            .map(|(d, c)| fx.ranker.rank(d, c).len())
            .sum::<usize>()
    });
    let rank_parallel = best_secs(reps, || {
        fx.ranker
            .rank_batch_with_threads(&docs, threads)
            .iter()
            .map(Vec::len)
            .sum::<usize>()
    });

    // Annotation component: the full Shortcuts pipeline (pre-processing,
    // interned-trie detection, collision resolution, vector scoring),
    // wired exactly as the experiment build wired it.
    let pipeline = fx.exp.annotation_pipeline();
    let annotate_serial = best_secs(reps, || {
        fx.docs
            .iter()
            .map(|d| pipeline.process(d).annotations.len())
            .sum::<usize>()
    });
    let annotate_parallel = best_secs(reps, || {
        ctxrank_parallel::par_map(threads, &fx.docs, |d| pipeline.process(d).annotations.len())
            .into_iter()
            .sum::<usize>()
    });
    drop(pipeline);

    // Whole offline pipeline; throughput over the raw story bytes.
    let config = ExperimentConfig::small(0xbe7c4);
    let corpus_bytes: usize = Experiment::build_serial(config.clone())
        .world
        .news
        .iter()
        .map(|s| s.text.len())
        .sum();
    let build_serial = best_secs(reps, || {
        Experiment::build_serial(config.clone()).stats.windows
    });
    let build_parallel = best_secs(reps, || {
        Experiment::build_with_threads(config.clone(), threads)
            .stats
            .windows
    });

    // Snapshot hot-swap: reader throughput through a ServiceHandle on a
    // static snapshot ("serial") vs while a publisher continuously
    // swaps rebuilt snapshots underneath it ("parallel"). A speedup
    // near 1.0 is the desired result: publishing must not slow readers.
    let snap_a = ctxrank_bench::build_snapshot(&fx.exp);
    let snap_b = ctxrank_bench::build_snapshot(&fx.exp);
    let handle = ctxrank_framework::ServiceHandle::new(snap_a.clone());
    let read_all = |handle: &ctxrank_framework::ServiceHandle| {
        docs.iter()
            .map(|(d, c)| handle.rank(d, c).len())
            .sum::<usize>()
    };
    let swap_static = best_secs(reps, || read_all(&handle));
    let stop = std::sync::atomic::AtomicBool::new(false);
    let swap_publishing = std::thread::scope(|scope| {
        let handle = &handle;
        let stop = &stop;
        let publisher = scope.spawn(move || {
            let mut flip = false;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                handle.publish(if flip { snap_a.clone() } else { snap_b.clone() });
                flip = !flip;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        let secs = best_secs(reps, || read_all(handle));
        stop.store(true, std::sync::atomic::Ordering::Release);
        publisher.join().expect("publisher");
        secs
    });

    // Network serving layer: micro-batched keep-alive `/rank` traffic
    // ("parallel") vs one request per connection at batch size 1
    // ("serial"), both against a real server on a loopback port. The
    // speedup is connection amortization plus batch coalescing — one
    // snapshot/adjuster read per 16 documents instead of per document.
    let workload = ctxrank_bench::loopback_workload(&fx.exp);
    let snapshot = ctxrank_bench::build_snapshot(&fx.exp);
    let serve_handle = std::sync::Arc::new(ctxrank_framework::ServiceHandle::new(snapshot));
    let loopback_one_shot = {
        let server = ctxrank_serve::Server::start(
            std::sync::Arc::clone(&serve_handle),
            ctxrank_bench::loopback_config(1),
        )
        .expect("start baseline server");
        let addr = server.local_addr();
        // Untimed warmup pass: fault in stacks, warm the accept path.
        ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, false);
        let secs = best_secs(reps, || {
            ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, false)
        });
        server.shutdown();
        secs
    };
    let loopback_batched = {
        let server = ctxrank_serve::Server::start(
            std::sync::Arc::clone(&serve_handle),
            ctxrank_bench::loopback_config(16),
        )
        .expect("start batched server");
        let addr = server.local_addr();
        ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, true);
        let secs = best_secs(reps, || {
            ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, true)
        });
        server.shutdown();
        secs
    };

    let report = serde_json::Value::Seq(vec![
        row(
            "stemmer_component",
            fx.total_bytes,
            stem_serial,
            stem_parallel,
            threads,
        ),
        row(
            "ranker_component",
            fx.total_bytes,
            rank_serial,
            rank_parallel,
            threads,
        ),
        row(
            "annotation_component",
            fx.total_bytes,
            annotate_serial,
            annotate_parallel,
            threads,
        ),
        row(
            "experiment_build",
            corpus_bytes,
            build_serial,
            build_parallel,
            threads,
        ),
        row(
            "snapshot_swap",
            fx.total_bytes,
            swap_static,
            swap_publishing,
            threads,
        ),
        row(
            "server_loopback",
            workload.doc_bytes,
            loopback_one_shot,
            loopback_batched,
            ctxrank_bench::LOOPBACK_CLIENTS,
        ),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_throughput.json");
    println!("{json}");
    eprintln!("perf_report: wrote {path}");
}
