//! Machine-readable §VI throughput report.
//!
//! Re-runs the paper-shaped corpus (1445 docs, ~2.5 KB, ~6.45
//! candidates each) through the stemmer, ranker and annotation
//! components — serial and parallel — plus the whole
//! `Experiment::build` pipeline, and writes `BENCH_throughput.json` at
//! the repository root so the perf trajectory stays comparable across
//! PRs.
//!
//! Every parallel component is swept over requested thread counts
//! 1/2/4/8/16 and emits **one row per swept count**:
//! `{component, threads, workers, serial_mb_s, parallel_mb_s, speedup}`.
//! `threads` is the requested fan-out, `workers` the count
//! [`ctxrank_parallel::par_map`] actually used after the hardware cap —
//! the recorded number is what was measured, never a guess. When the
//! cap collapses a request to one effective worker, the pooled path
//! *is* the inline serial path (same code, same bytes), so the row
//! reports the measured serial time for both columns instead of timing
//! the identical path twice and recording noise as a speedup.
//!
//! Two single-threaded format rows complete the report:
//! `snapshot_load_cold` (legacy directory decode vs `snapshot.ctxr`
//! arena load of the same snapshot) and `postings_decode` (scalar
//! varint loop vs the unrolled block decoder over the same coded
//! postings).
//!
//! Two streaming-ingestion rows cover the event-sourced path:
//! `click_ingest` (durable segment append+seal rate vs the in-memory
//! codec ceiling, with `events_per_s`) and `delta_publish` (bootstrap
//! rebuild vs one incremental append→seal→fold→publish cycle, with the
//! cycle's click-to-served-epoch latency in `publish_ms`).
//!
//! Knobs: `CTXRANK_THREADS` (raises the fan-out cap), `PERF_REPORT_REPS`
//! (best-of-N timing, default 3).

use ctxrank_bench::{build_projector, build_runtime_ranker, Experiment, ExperimentConfig};
use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::persist::{load_snapshot, save_snapshot, save_snapshot_legacy};
use ctxrank_framework::{
    GlobalTidTable, PackedInterestStore, PackedRelevanceStore, Snapshot, SnapshotBuilder,
};
use ctxrank_index::{decode_all, encode_blocks, read_varint, BLOCK};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_querylog::{Event, SegmentConfig, SegmentStore, StdSegmentFs};
use ctxrank_synth::{EventStream, StreamConfig};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const NUM_DOCS: usize = 1445;
const TARGET_DOC_BYTES: usize = 2500;
/// Requested thread counts for the scaling sweep.
const SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

struct Fixture {
    exp: Experiment,
    docs: Vec<String>,
    candidates: Vec<Vec<String>>,
    ranker: ctxrank_framework::RuntimeRanker,
    total_bytes: usize,
}

fn fixture() -> Fixture {
    let exp = Experiment::build(ExperimentConfig::small(0xbe7c4));
    let ranker = build_runtime_ranker(&exp);
    let surfaces: Vec<String> = {
        let mut s: Vec<String> = exp.interest_raw.keys().cloned().collect();
        s.sort_unstable();
        s
    };
    let mut docs = Vec::with_capacity(NUM_DOCS);
    let mut candidates = Vec::with_capacity(NUM_DOCS);
    let mut total_bytes = 0;
    for i in 0..NUM_DOCS {
        let story = &exp.world.news[i % exp.world.news.len()];
        let mut text = story.text.clone();
        let mut cut = TARGET_DOC_BYTES.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        total_bytes += text.len();
        let n = if i % 20 < 9 { 6 } else { 7 };
        let cands: Vec<String> = (0..n)
            .map(|j| surfaces[(i * 7 + j * 13) % surfaces.len()].clone())
            .collect();
        docs.push(text);
        candidates.push(cands);
    }
    Fixture {
        exp,
        docs,
        candidates,
        ranker,
        total_bytes,
    }
}

/// Best-of-N wall time, in seconds.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-N wall time for two workloads with their reps interleaved
/// (S P S P …), so machine-load drift hits both columns evenly instead
/// of skewing whichever ran second.
fn best_pair<A, B>(reps: usize, mut a: impl FnMut() -> A, mut b: impl FnMut() -> B) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(a());
        best_a = best_a.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(b());
        best_b = best_b.min(t.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn row(
    component: &str,
    bytes: usize,
    threads: usize,
    workers: usize,
    serial_s: f64,
    parallel_s: f64,
) -> serde_json::Value {
    let mb = bytes as f64 / 1e6;
    serde_json::json!({
        "component": component,
        "threads": threads,
        "workers": workers,
        "serial_mb_s": round2(mb / serial_s),
        "parallel_mb_s": round2(mb / parallel_s),
        "speedup": round2(serial_s / parallel_s),
    })
}

/// Sweep one component over [`SWEEP`]: one row per requested thread
/// count. Rows whose request collapses to one effective worker reuse
/// the single measured serial time for both columns (the pooled path is
/// the inline path there — see the module docs); true multi-worker rows
/// measure serial and parallel interleaved.
fn sweep_component(
    component: &str,
    bytes: usize,
    items: usize,
    reps: usize,
    mut serial: impl FnMut() -> usize,
    mut parallel: impl FnMut(usize) -> usize,
) -> Vec<serde_json::Value> {
    let serial_once = best_secs(reps, &mut serial);
    SWEEP
        .iter()
        .map(|&t| {
            let workers = ctxrank_parallel::effective_workers(t, items);
            let (s, p) = if workers == 1 {
                (serial_once, serial_once)
            } else {
                best_pair(reps, &mut serial, || parallel(t))
            };
            eprintln!("perf_report: {component} threads={t} workers={workers}");
            row(component, bytes, t, workers, s, p)
        })
        .collect()
}

/// A deliberately large snapshot (30k concepts, ~30 keywords each) so
/// the `snapshot_load_cold` row times format decode, not file-open
/// syscalls.
fn big_snapshot() -> Arc<Snapshot> {
    const CONCEPTS: usize = 30_000;
    const VOCAB: usize = 60_000;
    const KEYWORDS: usize = 30;
    let concepts: Vec<(String, InterestFeatures)> = (0..CONCEPTS)
        .map(|i| {
            (
                format!("concept {i}"),
                InterestFeatures {
                    freq_exact: (i as u64 * 17) % 9973,
                    freq_phrase_contained: (i as u64 * 29) % 14341,
                    unit_score: (i as f64 * 0.37) % 1.0,
                    searchengine_phrase: (i as u64 * 5) % 4001,
                    concept_size: (i % 3 + 1) as u32,
                    number_of_chars: (i % 20 + 4) as u32,
                    subconcepts: (i % 2) as u32,
                    high_level_type: (i % 7) as u8,
                    wiki_word_count: (i * 113 % 5000) as u32,
                },
            )
        })
        .collect();
    let interest = PackedInterestStore::build(&concepts);

    let keyword_sets: Vec<RelevantTerms> = (0..CONCEPTS)
        .map(|i| RelevantTerms {
            terms: (0..KEYWORDS)
                .map(|j| {
                    let term = (i * 7 + j * 13) % VOCAB;
                    (format!("term{term}"), 1.0 + (i + j) as f64 % 10.0)
                })
                .collect(),
        })
        .collect();
    let mut tids = GlobalTidTable::new();
    let relevance = PackedRelevanceStore::build(
        concepts
            .iter()
            .map(|(s, _)| s.as_str())
            .zip(keyword_sets.iter()),
        &mut tids,
    );

    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[9] = (g + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("big snapshot")
}

/// The `snapshot_load_cold` row: the same snapshot saved in the legacy
/// directory format ("serial") and as the single-file arena
/// ("parallel"), loaded back through the same `load_snapshot` entry
/// point. Throughput basis is the arena file size; the speedup column
/// is the arena's advantage over the per-entry legacy decode.
fn snapshot_load_cold_row(reps: usize) -> serde_json::Value {
    let scratch = std::env::temp_dir().join(format!("ctxrank-perf-load-{}", std::process::id()));
    let legacy_dir = scratch.join("legacy");
    let arena_dir = scratch.join("arena");
    let snap = big_snapshot();
    save_snapshot_legacy(&snap, &legacy_dir).expect("legacy save");
    save_snapshot(&snap, &arena_dir).expect("arena save");
    let arena_bytes = std::fs::metadata(arena_dir.join("snapshot.ctxr"))
        .expect("arena file")
        .len() as usize;

    let (legacy_s, arena_s) = best_pair(
        reps,
        || load_snapshot(&legacy_dir).expect("legacy load").epoch(),
        || load_snapshot(&arena_dir).expect("arena load").epoch(),
    );
    let _ = std::fs::remove_dir_all(&scratch);
    row("snapshot_load_cold", arena_bytes, 1, 1, legacy_s, arena_s)
}

/// The `postings_decode` row: the same delta-varint block-coded
/// postings decoded by a scalar one-varint-at-a-time loop ("serial")
/// and by the unrolled block decoder ("parallel"). Throughput basis is
/// the coded byte size.
fn postings_decode_row(reps: usize) -> serde_json::Value {
    // ~2M doc ids with mixed small/occasionally-large gaps, so both the
    // single-byte fast path and the multi-byte fallback are exercised.
    const N: usize = 2_000_000;
    let mut docs = Vec::with_capacity(N);
    let mut id = 0u32;
    let mut state = 0x9E37_79B9u32;
    for _ in 0..N {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        id += 1 + (state % 9) + if state.is_multiple_of(97) { 5000 } else { 0 };
        docs.push(id);
    }
    let (bytes, skips) = encode_blocks(&docs);
    let count = docs.len();

    // Scalar baseline: same format, one varint per step, no unrolling.
    let scalar = || {
        let mut out = Vec::with_capacity(count);
        for (b, skip) in skips.iter().enumerate() {
            let len = (count - b * BLOCK).min(BLOCK);
            let mut acc = skip.first;
            out.push(acc);
            let mut p = skip.offset as usize;
            for _ in 1..len {
                let (d, np) = read_varint(&bytes, p);
                p = np;
                acc += d;
                out.push(acc);
            }
        }
        out.len()
    };
    let unrolled = || decode_all(&bytes, &skips, count).len();
    assert_eq!(decode_all(&bytes, &skips, count), docs, "decoder parity");

    let (scalar_s, unrolled_s) = best_pair(reps, scalar, unrolled);
    row("postings_decode", bytes.len(), 1, 1, scalar_s, unrolled_s)
}

/// `ctxrank_<name> <value>` scraped from a live server's `/metrics`.
fn scrape_counter(addr: std::net::SocketAddr, name: &str) -> u64 {
    let (status, _, body) =
        ctxrank_serve::client::one_shot(addr, "GET", "/metrics", None).expect("scrape metrics");
    assert_eq!(status, 200);
    let prefix = format!("{name} ");
    body.lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The two `server_openloop` rows: cached and uncached modes, each with
/// its own max-sustainable-RPS ladder result. The latency columns of
/// both rows come from the highest ladder rung *both* modes measured —
/// one rung past the weaker mode's maximum, which is exactly where the
/// cache's effect is structural (the uncached server is past its SLO
/// there) rather than scheduler noise. The cached row also records the
/// hit rate observed across its whole ladder.
fn openloop_rows(
    exp: &Experiment,
    handle: &Arc<ctxrank_framework::ServiceHandle>,
) -> Vec<serde_json::Value> {
    use ctxrank_bench::{
        max_sustainable_rps, openloop_server_config, run_open_loop, OpenLoopConfig,
    };
    use std::time::Duration;

    let duration_ms: u64 = std::env::var("OPENLOOP_DURATION_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let slo_ms: u64 = std::env::var("OPENLOOP_SLO_P99_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let bodies = ctxrank_bench::openloop_bodies(exp, 128);
    let base = OpenLoopConfig {
        offered_rps: 0.0, // set per run
        duration: Duration::from_millis(duration_ms),
        // Must stay ≤ the server's 16 workers: a worker owns its
        // keep-alive connection, so surplus lanes starve (openloop.rs).
        connections: 16,
        zipf_exponent: 1.2,
        seed: 0xb0a7,
        slo_p99: Duration::from_millis(slo_ms),
    };
    // Doubling rungs until either mode breaks its SLO. The top rungs
    // are beyond what one core can serve uncached, so the ladder — not
    // a cap — decides each mode's max; the no-coordinated-omission
    // latency accounting also fails a rung honestly when the *harness*
    // can no longer hold the schedule.
    let ladder: Vec<f64> = (0..11).map(|i| 100.0 * f64::from(1 << i)).collect();

    // Per-mode: warm up, climb the ladder, and hand back a closure-free
    // record of what happened.
    let run_mode = |cache_bytes: usize| {
        let server =
            ctxrank_serve::Server::start(Arc::clone(handle), openloop_server_config(cache_bytes))
                .expect("start openloop server");
        let addr = server.local_addr();
        let warm = OpenLoopConfig {
            offered_rps: 50.0,
            duration: Duration::from_millis(300),
            ..base.clone()
        };
        run_open_loop(addr, &bodies, &warm);
        let (max_rps, ladder_reports) = max_sustainable_rps(addr, &bodies, &base, &ladder);
        for r in &ladder_reports {
            eprintln!(
                "perf_report: openloop cache={cache_bytes} offered={} p99={:.2}ms ok={} shed={} errors={}",
                r.offered_rps, r.p99_ms, r.ok, r.shed, r.errors
            );
        }
        // Cache counters over the whole ladder (0/0 when disabled).
        let hits = scrape_counter(addr, "ctxrank_cache_hits_total");
        let misses = scrape_counter(addr, "ctxrank_cache_misses_total");
        server.shutdown();
        let hit_rate = hits as f64 / ((hits + misses).max(1)) as f64;
        (max_rps, ladder_reports, hit_rate)
    };

    // Uncached baseline (every request ranks for real), then the same
    // snapshot and workload with an 8 MiB result cache.
    let (uncached_max, uncached_reports, _) = run_mode(0);
    let (cached_max, cached_reports, hit_rate) = run_mode(8 << 20);

    // Latency columns: the highest rung present in both ladders. Both
    // climbed the same rung sequence, so that is the shorter ladder's
    // last rung — one past the weaker mode's sustainable maximum.
    let rungs = uncached_reports.len().min(cached_reports.len());
    assert!(rungs > 0, "openloop ladder produced no reports");
    let uncached = &uncached_reports[rungs - 1];
    let cached = &cached_reports[rungs - 1];
    let comparison_rps = uncached.offered_rps;

    let mode_row =
        |mode: &str, report: &ctxrank_bench::OpenLoopReport, max_rps: f64, hit_rate: f64| {
            let mut value = report.to_json();
            if let serde_json::Value::Map(entries) = &mut value {
                entries.insert(0, ("mode".to_string(), serde_json::Value::Str(mode.into())));
                entries.insert(
                    0,
                    (
                        "component".to_string(),
                        serde_json::Value::Str("server_openloop".into()),
                    ),
                );
                entries.push((
                    "max_sustainable_rps".to_string(),
                    serde_json::json!(max_rps),
                ));
                entries.push((
                    "cache_hit_rate".to_string(),
                    serde_json::json!(round2(hit_rate)),
                ));
            }
            value
        };
    eprintln!(
        "perf_report: openloop comparison_rps={comparison_rps:.0} uncached_p99={:.2}ms \
         cached_p99={:.2}ms hit_rate={hit_rate:.2} uncached_max={uncached_max} cached_max={cached_max}",
        uncached.p99_ms, cached.p99_ms
    );
    vec![
        mode_row("uncached", uncached, uncached_max, 0.0),
        mode_row("cached", cached, cached_max, hit_rate),
    ]
}

/// The `click_ingest` row: one synthetic click/query stream appended
/// through the event log's durable path (`StdSegmentFs`-backed
/// segments with auto-seal, "serial") and through an in-memory store
/// ("parallel" — the codec/buffer ceiling the durable path chases).
/// The extra `events_per_s` field is the durable rate, the number the
/// streaming pipeline actually ingests at.
fn click_ingest_row(reps: usize) -> serde_json::Value {
    const EVENTS: u64 = 200_000;
    let events: Vec<Event> =
        EventStream::new(&StreamConfig::of_magnitude(0xC11C, EVENTS)).collect();
    let mut encoded = Vec::new();
    for e in &events {
        e.encode_into(&mut encoded);
    }
    let bytes = encoded.len();

    let scratch = std::env::temp_dir().join(format!("ctxrank-perf-ingest-{}", std::process::id()));
    let durable_dir = scratch.join("segments");
    let (durable_s, memory_s) = best_pair(
        reps,
        || {
            let _ = std::fs::remove_dir_all(&durable_dir);
            let mut store = SegmentStore::open(
                Arc::new(StdSegmentFs),
                &durable_dir,
                SegmentConfig::default(),
            )
            .expect("open ingest store");
            for e in &events {
                store.append(e).expect("durable append");
            }
            store.seal().expect("final durable seal");
            store.sealed_events()
        },
        || {
            let mut store = SegmentStore::in_memory(SegmentConfig::default());
            for e in &events {
                store.append(e).expect("in-memory append");
            }
            store.seal().expect("final in-memory seal");
            store.sealed_events()
        },
    );
    let _ = std::fs::remove_dir_all(&scratch);

    let mut value = row("click_ingest", bytes, 1, 1, durable_s, memory_s);
    if let serde_json::Value::Map(entries) = &mut value {
        entries.push((
            "events_per_s".to_string(),
            serde_json::json!((EVENTS as f64 / durable_s).round()),
        ));
    }
    eprintln!(
        "perf_report: click_ingest {:.0} events/s durable ({EVENTS} events, {bytes} bytes)",
        EVENTS as f64 / durable_s
    );
    value
}

/// The `delta_publish` row: click-to-served-epoch latency through the
/// event-sourced path. "Serial" is what a monolithic pipeline needs to
/// serve fresh clicks — a full bootstrap rebuild plus a fold of the
/// sealed log; "parallel" is one incremental cycle: append a click
/// batch, sync and seal it, fold only the delta and publish the next
/// epoch through the same `ServiceHandle`. The extra `publish_ms`
/// field is the incremental cycle's latency; CI holds it under a
/// second.
fn delta_publish_row(fx: &Fixture, reps: usize) -> serde_json::Value {
    const BATCH: usize = 1_000;
    let mut feed = EventStream::new(&StreamConfig::of_magnitude(
        0xDE17A,
        (BATCH * (reps + 1)) as u64,
    ));
    let seed_batch: Vec<Event> = feed.by_ref().take(BATCH).collect();
    let mut encoded = Vec::new();
    for e in &seed_batch {
        e.encode_into(&mut encoded);
    }
    let batch_bytes = encoded.len();

    let scratch = std::env::temp_dir().join(format!("ctxrank-perf-delta-{}", std::process::id()));
    let mut store = SegmentStore::open(Arc::new(StdSegmentFs), &scratch, SegmentConfig::default())
        .expect("open delta store");
    for e in &seed_batch {
        store.append(e).expect("seed append");
    }
    store.seal().expect("seed seal");

    // The rebuild a batch pipeline pays to serve those clicks: the
    // whole offline build (mining, features, train, pack) plus a fold
    // of everything sealed.
    let rebuild_config = ExperimentConfig::small(0xbe7c4);
    let serial_s = best_secs(reps, || {
        let exp = Experiment::build_serial(rebuild_config.clone());
        let (mut projector, snapshot) = build_projector(&exp);
        let handle = ctxrank_framework::ServiceHandle::new(snapshot);
        projector
            .publish_from(&store, &handle)
            .expect("bootstrap publish");
        handle.epoch()
    });

    // The incremental path: a live projector already caught up, paying
    // only for the new batch.
    let (mut projector, snapshot) = build_projector(&fx.exp);
    let handle = ctxrank_framework::ServiceHandle::new(snapshot);
    projector
        .publish_from(&store, &handle)
        .expect("catch-up publish");
    let delta_s = best_secs(reps, || {
        for e in feed.by_ref().take(BATCH) {
            store.append(&e).expect("delta append");
        }
        store.sync().expect("delta sync");
        store.seal().expect("delta seal");
        projector
            .publish_from(&store, &handle)
            .expect("delta publish");
        handle.epoch()
    });
    let _ = std::fs::remove_dir_all(&scratch);

    let mut value = row("delta_publish", batch_bytes, 1, 1, serial_s, delta_s);
    if let serde_json::Value::Map(entries) = &mut value {
        entries.push((
            "publish_ms".to_string(),
            serde_json::json!(round2(delta_s * 1e3)),
        ));
    }
    eprintln!(
        "perf_report: delta_publish {:.2}ms per {BATCH}-click batch (rebuild {:.2}s)",
        delta_s * 1e3,
        serial_s
    );
    value
}

/// The two `debias_eval` rows: the position-bias debiasing experiment
/// on a PBM-biased log and on an unbiased control log, both at the
/// pinned CI seed. Each row records the paired golden-NDCG means, the
/// exact sign-test tally and the verdict the CI gate asserts on
/// (`"win"` under bias, `"tie"` without).
fn debias_rows() -> Vec<serde_json::Value> {
    use ctxrank_bench::{run_debias_experiment, DebiasConfig};
    [true, false]
        .into_iter()
        .map(|biased| {
            let report = run_debias_experiment(&DebiasConfig {
                biased,
                ..DebiasConfig::default()
            });
            let round4 = |x: f64| (x * 1e4).round() / 1e4;
            eprintln!(
                "perf_report: debias_eval mode={} ndcg_ipw={:.4} ndcg_naive={:.4} p={:.4} verdict={}",
                report.mode,
                report.outcome.mean_ndcg_treatment,
                report.outcome.mean_ndcg_control,
                report.outcome.sign_test.p_value,
                report.outcome.verdict.label()
            );
            serde_json::json!({
                "component": "debias_eval",
                "mode": report.mode,
                "stories": report.stories,
                "events": report.events,
                "ndcg_ipw": round4(report.outcome.mean_ndcg_treatment),
                "ndcg_naive": round4(report.outcome.mean_ndcg_control),
                "wins_ipw": report.outcome.sign_test.wins_a,
                "wins_naive": report.outcome.sign_test.wins_b,
                "ties": report.outcome.sign_test.ties,
                "p_value": report.outcome.sign_test.p_value,
                "verdict": report.outcome.verdict.label(),
            })
        })
        .collect()
}

fn main() {
    let reps: usize = std::env::var("PERF_REPORT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    eprintln!(
        "perf_report: hardware_threads={} reps={reps} sweep={SWEEP:?}",
        ctxrank_parallel::hardware_threads()
    );

    let fx = fixture();
    let docs: Vec<(&str, &[String])> = fx
        .docs
        .iter()
        .zip(&fx.candidates)
        .map(|(d, c)| (d.as_str(), c.as_slice()))
        .collect();
    let mut rows: Vec<serde_json::Value> = Vec::new();

    // Stemmer component (paper: 7.9 MB/s).
    rows.extend(sweep_component(
        "stemmer_component",
        fx.total_bytes,
        fx.docs.len(),
        reps,
        || {
            fx.docs
                .iter()
                .map(|d| fx.ranker.stem_document(d).len())
                .sum::<usize>()
        },
        |t| {
            ctxrank_parallel::par_map(t, &fx.docs, |d| fx.ranker.stem_document(d).len())
                .into_iter()
                .sum::<usize>()
        },
    ));

    // Ranker component (paper: 2.4 MB/s).
    rows.extend(sweep_component(
        "ranker_component",
        fx.total_bytes,
        docs.len(),
        reps,
        || {
            docs.iter()
                .map(|(d, c)| fx.ranker.rank(d, c).len())
                .sum::<usize>()
        },
        |t| {
            fx.ranker
                .rank_batch_with_threads(&docs, t)
                .iter()
                .map(Vec::len)
                .sum::<usize>()
        },
    ));

    // Annotation component: the full Shortcuts pipeline (pre-processing,
    // interned-trie detection, collision resolution, vector scoring),
    // wired exactly as the experiment build wired it.
    let pipeline = fx.exp.annotation_pipeline();
    rows.extend(sweep_component(
        "annotation_component",
        fx.total_bytes,
        fx.docs.len(),
        reps,
        || {
            fx.docs
                .iter()
                .map(|d| pipeline.process(d).annotations.len())
                .sum::<usize>()
        },
        |t| {
            ctxrank_parallel::par_map(t, &fx.docs, |d| pipeline.process(d).annotations.len())
                .into_iter()
                .sum::<usize>()
        },
    ));
    drop(pipeline);

    // Whole offline pipeline; throughput over the raw story bytes.
    let config = ExperimentConfig::small(0xbe7c4);
    let corpus_bytes: usize = Experiment::build_serial(config.clone())
        .world
        .news
        .iter()
        .map(|s| s.text.len())
        .sum();
    rows.extend(sweep_component(
        "experiment_build",
        corpus_bytes,
        usize::MAX,
        reps,
        || Experiment::build_serial(config.clone()).stats.windows,
        |t| {
            Experiment::build_with_threads(config.clone(), t)
                .stats
                .windows
        },
    ));

    // Snapshot hot-swap: single-reader throughput on a static snapshot
    // ("serial") vs the aggregate throughput of `workers` concurrent
    // readers while a publisher continuously swaps rebuilt snapshots
    // underneath them ("parallel"). The lock-free read path must scale
    // with readers and never stall on a publish, so speedup ≥ 1.0 at
    // any worker count is the pass condition.
    let snap_a = ctxrank_bench::build_snapshot(&fx.exp);
    let snap_b = ctxrank_bench::build_snapshot(&fx.exp);
    let handle = ctxrank_framework::ServiceHandle::new(snap_a.clone());
    rows.extend(sweep_component(
        "snapshot_swap",
        fx.total_bytes,
        docs.len(),
        reps,
        || {
            docs.iter()
                .map(|(d, c)| handle.rank(d, c).len())
                .sum::<usize>()
        },
        |t| {
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| {
                let publisher = scope.spawn(|| {
                    let mut flip = false;
                    while !stop.load(Ordering::Acquire) {
                        handle.publish(if flip { snap_a.clone() } else { snap_b.clone() });
                        flip = !flip;
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                });
                let ranked = ctxrank_parallel::par_map(t, &docs, |(d, c)| handle.rank(d, c).len())
                    .into_iter()
                    .sum::<usize>();
                stop.store(true, Ordering::Release);
                publisher.join().expect("publisher");
                ranked
            })
        },
    ));

    // Network serving layer: micro-batched keep-alive `/rank` traffic
    // ("parallel") vs one request per connection at batch size 1
    // ("serial"), both against a real server on a loopback port. The
    // speedup is connection amortization plus batch coalescing — one
    // snapshot/adjuster read per 16 documents instead of per document.
    // One row: the axis here is batching at a fixed client count, not
    // the par_map fan-out.
    let workload = ctxrank_bench::loopback_workload(&fx.exp);
    let snapshot = ctxrank_bench::build_snapshot(&fx.exp);
    let serve_handle = std::sync::Arc::new(ctxrank_framework::ServiceHandle::new(snapshot));
    let loopback_one_shot = {
        let server = ctxrank_serve::Server::start(
            std::sync::Arc::clone(&serve_handle),
            ctxrank_bench::loopback_config(1),
        )
        .expect("start baseline server");
        let addr = server.local_addr();
        // Untimed warmup pass: fault in stacks, warm the accept path.
        ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, false);
        let secs = best_secs(reps, || {
            ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, false)
        });
        server.shutdown();
        secs
    };
    let loopback_batched = {
        let server = ctxrank_serve::Server::start(
            std::sync::Arc::clone(&serve_handle),
            ctxrank_bench::loopback_config(16),
        )
        .expect("start batched server");
        let addr = server.local_addr();
        ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, true);
        let secs = best_secs(reps, || {
            ctxrank_bench::drive_loopback_pass(addr, &workload.bodies, true)
        });
        server.shutdown();
        secs
    };
    rows.push(row(
        "server_loopback",
        workload.doc_bytes,
        ctxrank_bench::LOOPBACK_CLIENTS,
        ctxrank_bench::LOOPBACK_CLIENTS,
        loopback_one_shot,
        loopback_batched,
    ));

    // Scatter-gather router: the same keep-alive `/rank` workload
    // against one unsharded server ("serial") vs the router fronting a
    // 2-way partition of the same snapshot ("parallel"). The column
    // pair prices the scatter hop + merge relative to the
    // single-process baseline; bit-identity of the answers themselves
    // is asserted by the cluster integration tests.
    {
        let full = ctxrank_bench::build_snapshot(&fx.exp);
        let parts = ctxrank_framework::partition_snapshot(&full, 2).expect("partition snapshot");
        let baseline = ctxrank_serve::Server::start(
            std::sync::Arc::new(ctxrank_framework::ServiceHandle::new(full)),
            ctxrank_bench::loopback_config(1),
        )
        .expect("start unsharded server");
        let shards: Vec<ctxrank_serve::Server> = parts
            .iter()
            .map(|part| {
                ctxrank_serve::Server::start(
                    std::sync::Arc::new(ctxrank_framework::ServiceHandle::new(
                        part.snapshot.clone(),
                    )),
                    ctxrank_bench::loopback_config(1).as_shard(part.bounds),
                )
                .expect("start shard server")
            })
            .collect();
        let sg = std::sync::Arc::new(ctxrank_router::ScatterGather::new(
            shards
                .iter()
                .map(|s| ctxrank_router::ShardSpec::single(s.local_addr()))
                .collect(),
            ctxrank_router::RouterConfig::default(),
        ));
        let router =
            ctxrank_router::RouterServer::start(sg, ctxrank_router::RouterServerConfig::default())
                .expect("start router");
        // Untimed warmup: fault in both paths, fill the router's
        // per-backend connection pools.
        ctxrank_bench::drive_loopback_pass(baseline.local_addr(), &workload.bodies, true);
        ctxrank_bench::drive_loopback_pass(router.local_addr(), &workload.bodies, true);
        let (unsharded_s, routed_s) = best_pair(
            reps,
            || ctxrank_bench::drive_loopback_pass(baseline.local_addr(), &workload.bodies, true),
            || ctxrank_bench::drive_loopback_pass(router.local_addr(), &workload.bodies, true),
        );
        let shard_count = shards.len();
        router.shutdown();
        for s in shards {
            s.shutdown();
        }
        baseline.shutdown();
        eprintln!(
            "perf_report: router_scatter_gather unsharded={unsharded_s:.3}s routed={routed_s:.3}s"
        );
        rows.push(row(
            "router_scatter_gather",
            workload.doc_bytes,
            ctxrank_bench::LOOPBACK_CLIENTS,
            shard_count,
            unsharded_s,
            routed_s,
        ));
    }

    // Open-loop tail latency: Poisson arrivals at a fixed offered rate
    // (latency measured from the scheduled arrival — no coordinated
    // omission), Zipf query mix over a fixed body pool, with and
    // without the epoch-keyed result cache. Each mode first climbs a
    // rate ladder to its max sustainable RPS under the p99 SLO, then
    // both run at the same comparison rate so the p99 columns are
    // directly comparable. Knobs: `OPENLOOP_DURATION_MS` (per measured
    // run, default 1500) and `OPENLOOP_SLO_P99_MS` (default 50).
    rows.extend(openloop_rows(&fx.exp, &serve_handle));

    // Format rows: arena vs legacy snapshot load, unrolled vs scalar
    // postings decode.
    rows.push(snapshot_load_cold_row(reps));
    rows.push(postings_decode_row(reps));

    // Streaming-ingestion rows: durable append+seal rate and the
    // click-to-served-epoch latency of an incremental delta publish.
    rows.push(click_ingest_row(reps));
    rows.push(delta_publish_row(&fx, reps));

    // Debiasing-experiment rows: IPW vs naive §VIII adjusters on
    // PBM-biased and unbiased logs at the pinned seed.
    rows.extend(debias_rows());

    let report = serde_json::Value::Seq(rows);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_throughput.json");
    println!("{json}");
    eprintln!("perf_report: wrote {path}");
}
