//! §IV-C — ambiguous concepts and local sense clusters.
//!
//! The paper: ambiguous concepts ("Madonna", "Jaguar") cluster poorly
//! globally, but "there would be some good local clusters ... if such
//! clusters can be identified then the scores can be boosted". The
//! synthetic universe plants ambiguous surfaces (one surface, two
//! concepts in different topics); this experiment compares the pooled
//! snippet relevance model against the sense-clustered one
//! (`ctxrank_features::senses`) on contexts drawn from each sense's
//! topic.

use ctxrank_features::{MiningResource, RelevanceModel, RelevanceModelBuilder, SenseConfig};
use ctxrank_synth::{SynthWorld, WorldConfig};
use std::collections::HashMap;

fn main() {
    let world = SynthWorld::generate(WorldConfig::default());
    let mut builder = RelevanceModelBuilder::new(&world.corpus, &world.query_log);
    builder.min_idf = 3.2;
    // The production store keeps a bounded keyword budget per concept
    // (§VI). Ambiguity hurts exactly when the senses have to share that
    // budget — mine under a tight budget to expose it. Sense clusters
    // get the same per-sense budget.
    builder.m = 20;

    // Ambiguous surfaces: one surface shared by concepts in >= 2 topics.
    let mut by_surface: HashMap<String, Vec<&ctxrank_synth::ConceptSpec>> = HashMap::new();
    for c in world.universe.all() {
        by_surface.entry(c.surface()).or_default().push(c);
    }
    let ambiguous: Vec<(&String, &Vec<&ctxrank_synth::ConceptSpec>)> = by_surface
        .iter()
        .filter(|(_, specs)| {
            let topics: std::collections::HashSet<_> =
                specs.iter().filter_map(|s| s.topic).collect();
            topics.len() >= 2
        })
        .collect();
    println!(
        "ambiguous surfaces in the universe: {} (planted: {})",
        ambiguous.len(),
        world.config.universe.num_ambiguous
    );

    let mut rows = Vec::new();
    let mut pooled_contrast_sum = 0.0;
    let mut sense_contrast_sum = 0.0;
    let mut n = 0.0;
    for (surface, specs) in &ambiguous {
        let terms: Vec<String> = surface.split(' ').map(str::to_string).collect();
        let pooled = builder.mine(&terms, MiningResource::Snippets);
        let senses = builder.mine_snippet_senses(&terms, &SenseConfig::default());

        // One on-topic story context per sense.
        let mut contexts = Vec::new();
        for spec in specs.iter().take(2) {
            let topic = spec.topic.expect("ambiguous specs are specific");
            if let Some(story) = world
                .news
                .iter()
                .filter(|s| s.topic == topic)
                .min_by(|a, b| {
                    let da = ctxrank_synth::lexicon::center_distance(a.center, spec.center);
                    let db = ctxrank_synth::lexicon::center_distance(b.center, spec.center);
                    da.partial_cmp(&db).expect("finite")
                })
            {
                contexts.push(RelevanceModel::context_of(&story.text));
            }
        }
        if contexts.len() < 2 {
            continue;
        }

        // The paper's prediction: pooling dilutes an ambiguous concept's
        // keyword mass across senses, so its *minority* sense scores low
        // in its own context; local clusters restore it. Measure the
        // weaker of the two on-topic scores under each model.
        let weakest_pooled = contexts
            .iter()
            .map(|c| pooled.score_context(c))
            .fold(f64::INFINITY, f64::min);
        let weakest_sense = contexts
            .iter()
            .map(|c| senses.score_context(c))
            .fold(f64::INFINITY, f64::min);
        // And whether the sense model can actually tell the two apart.
        let discriminates = senses.num_senses() >= 2
            && senses.best_sense(&contexts[0]) != senses.best_sense(&contexts[1]);
        pooled_contrast_sum += weakest_pooled;
        sense_contrast_sum += weakest_sense;
        n += 1.0;

        println!(
            "{:<28} senses {}  minority-sense score: pooled {:>7.1}  sense-aware {:>7.1}  discriminates {}",
            surface,
            senses.num_senses(),
            weakest_pooled,
            weakest_sense,
            discriminates
        );
        rows.push(serde_json::json!({
            "surface": surface,
            "num_senses": senses.num_senses(),
            "minority_pooled": weakest_pooled,
            "minority_sense_aware": weakest_sense,
            "discriminates": discriminates,
        }));
    }

    if n > 0.0 {
        println!(
            "\nmean minority-sense on-topic score: pooled {:.1} vs sense-aware {:.1} \
             (the local-cluster boost the paper anticipates)",
            pooled_contrast_sum / n,
            sense_contrast_sum / n
        );
    }

    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/ambiguity_senses.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "experiment": "ambiguity_senses",
            "rows": rows,
            "pooled_mean_minority": pooled_contrast_sum / n.max(1.0),
            "sense_mean_minority": sense_contrast_sum / n.max(1.0),
        }))
        .expect("serialize"),
    )
    .ok();
}
