//! Table V — all features (interestingness + snippet relevance).
//!
//! Paper rows: Random 50.01 %, Concept Vector Score 30.22 %, Best
//! Interestingness Model 23.69 %, Best Relevance (snippets) 24.86 %,
//! Interestingness + Relevance 18.66 %. The combined model wins by a
//! wide margin; relevance breaks ties (§V-A.6).

use ctxrank_bench::rankers::{evaluate_best_kernel, evaluate_fixed, random_scorer, FeatureSet};
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ds = &exp.dataset;
    let rows = vec![
        ("Random".to_string(), evaluate_fixed(ds, random_scorer(1))),
        (
            "Concept Vector Score".to_string(),
            evaluate_fixed(ds, |i| i.baseline_score),
        ),
        (
            "Best Interestingness Model".to_string(),
            evaluate_best_kernel(ds, FeatureSet::AllInterest, 5, 7, false),
        ),
        (
            "Best Relevance (Snippets)".to_string(),
            evaluate_fixed(ds, |i| i.relevance_raw_for(MiningResource::Snippets)),
        ),
        (
            "Interestingness + Relevance".to_string(),
            evaluate_best_kernel(
                ds,
                FeatureSet::InterestPlusRelevance(MiningResource::Snippets),
                5,
                7,
                true,
            ),
        ),
    ];
    print_table(
        "Table V: weighted error rates when all features are used",
        &rows,
    );
    println!(
        "\npaper: Random 50.01 / Concept Vector 30.22 / Interestingness 23.69 /\n\
         Relevance 24.86 / Interestingness+Relevance 18.66"
    );
    std::fs::create_dir_all("results").ok();
    write_json("results/table5_all_features.json", "table5", &rows).expect("write report");
}
