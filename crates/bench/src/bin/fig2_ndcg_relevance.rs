//! Figure 2 — NDCG@{1,2,3} when ranking by relevance score alone.

use ctxrank_bench::rankers::{evaluate_fixed, random_scorer};
use ctxrank_bench::report::{print_ndcg_figure, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ds = &exp.dataset;
    let mut rows = vec![
        ("Random".to_string(), evaluate_fixed(ds, random_scorer(1))),
        (
            "Concept Vector Score".to_string(),
            evaluate_fixed(ds, |i| i.baseline_score),
        ),
    ];
    for r in MiningResource::ALL {
        rows.push((
            format!("{r:?}"),
            evaluate_fixed(ds, |i| i.relevance_raw_for(r)),
        ));
    }
    print_ndcg_figure("Figure 2: NDCG@k, relevance score only", &rows);
    std::fs::create_dir_all("results").ok();
    write_json("results/fig2_ndcg_relevance.json", "fig2", &rows).expect("write report");
}
