//! §V-C — real-world (production) results.
//!
//! The paper deployed the learned ranker, annotating "much fewer
//! entities and concepts in News articles" (top-ranked only), and
//! compared fifteen treatment weeks against the preceding twenty
//! baseline weeks: average weekly views −52.5 %, average weekly clicks
//! −2.0 %, CTR +100.1 %.
//!
//! We replay that A/B: the baseline period annotates every rankable
//! detection; the treatment period annotates only each story's top-3 by
//! the production ranker. Fresh stories and click draws per week.

use ctxrank_bench::{build_runtime_ranker, Experiment, ExperimentConfig};
use ctxrank_eval::PeriodStats;
use ctxrank_shortcuts::{Pipeline, PipelineConfig};
use ctxrank_synth::clicks::simulate_story;
use ctxrank_synth::news::{generate_news, ground_truth_relevance, NewsConfig};
use ctxrank_synth::ConceptId;
use std::collections::HashMap;

const BASELINE_WEEKS: u32 = 20;
const TREATMENT_WEEKS: u32 = 15;
const STORIES_PER_WEEK: usize = 60;
const TOP_K: usize = 3;

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ranker = build_runtime_ranker(&exp);
    let mut by_surface: HashMap<String, Vec<ConceptId>> = HashMap::new();
    for c in exp.world.universe.all() {
        by_surface.entry(c.surface()).or_default().push(c.id);
    }
    let pipeline = Pipeline::new(
        &exp.dictionary,
        &exp.units,
        |t| exp.world.corpus.idf(t),
        PipelineConfig::default(),
    );

    let run_period = |weeks: u32, seed_base: u64, annotate_top_k: bool| -> PeriodStats {
        let mut stats = PeriodStats::new(weeks);
        for week in 0..weeks {
            let stories = generate_news(
                seed_base ^ (week as u64).wrapping_mul(0xab1),
                &exp.world.lexicon,
                &exp.world.universe,
                &NewsConfig {
                    num_stories: STORIES_PER_WEEK,
                    ..NewsConfig::default()
                },
            );
            for story in &stories {
                let doc = pipeline.process(&story.text);
                // Candidate entities with ground truth.
                let mut seen = std::collections::HashSet::new();
                let mut entities: Vec<(String, ConceptId, f64, f64)> = Vec::new();
                for a in doc.rankable() {
                    if !seen.insert(a.surface.clone()) {
                        continue;
                    }
                    let Some(cands) = by_surface.get(&a.surface) else {
                        continue;
                    };
                    let cid = *cands
                        .iter()
                        .find(|&&c| exp.world.universe.get(c).topic == Some(story.topic))
                        .unwrap_or(&cands[0]);
                    let gt = ground_truth_relevance(
                        exp.world.universe.get(cid),
                        story.topic,
                        story.center,
                        story.secondary_topic,
                    );
                    entities.push((a.surface.clone(), cid, gt, a.position_frac));
                }
                // The annotation policy under test.
                let annotated: Vec<(ConceptId, f64, f64)> = if annotate_top_k {
                    let surfaces: Vec<String> = entities.iter().map(|e| e.0.clone()).collect();
                    let top = ranker.top_n(&doc.text, &surfaces, TOP_K);
                    top.iter()
                        .filter_map(|r| {
                            entities
                                .iter()
                                .find(|e| e.0 == r.surface)
                                .map(|e| (e.1, e.2, e.3))
                        })
                        .collect()
                } else {
                    entities.iter().map(|e| (e.1, e.2, e.3)).collect()
                };
                if annotated.is_empty() {
                    continue;
                }
                let clicks = simulate_story(
                    seed_base ^ 0x5109,
                    story.id + week as usize * STORIES_PER_WEEK,
                    &exp.world.universe,
                    &annotated,
                    &exp.config.clicks,
                );
                // Each annotation is viewed once per story view (§III).
                stats.record(clicks.views * annotated.len() as u64, clicks.total_clicks());
            }
        }
        stats
    };

    let before = run_period(BASELINE_WEEKS, 0xbe4e, false);
    let after = run_period(TREATMENT_WEEKS, 0x7bea, true);

    println!("=== §V-C real-world A/B ===");
    println!(
        "baseline ({} weeks): weekly views {:.0}, weekly clicks {:.0}, CTR {:.4}",
        BASELINE_WEEKS,
        before.weekly_views(),
        before.weekly_clicks(),
        before.ctr()
    );
    println!(
        "treatment ({} weeks, top-{} annotations): weekly views {:.0}, weekly clicks {:.0}, CTR {:.4}",
        TREATMENT_WEEKS,
        TOP_K,
        after.weekly_views(),
        after.weekly_clicks(),
        after.ctr()
    );
    println!(
        "\nviews {:+.1}%  clicks {:+.1}%  CTR {:+.1}%",
        after.views_delta_pct(&before),
        after.clicks_delta_pct(&before),
        after.ctr_delta_pct(&before)
    );
    println!("paper: views -52.5%, clicks -2.0%, CTR +100.1%");

    std::fs::create_dir_all("results").ok();
    let json = serde_json::json!({
        "experiment": "realworld_ab",
        "before": before,
        "after": after,
        "views_delta_pct": after.views_delta_pct(&before),
        "clicks_delta_pct": after.clicks_delta_pct(&before),
        "ctr_delta_pct": after.ctr_delta_pct(&before),
    });
    std::fs::write(
        "results/realworld_ab.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .ok();
}
