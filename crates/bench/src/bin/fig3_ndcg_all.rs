//! Figure 3 — NDCG@{1,2,3} for the combined model.

use ctxrank_bench::rankers::{evaluate_best_kernel, evaluate_fixed, random_scorer, FeatureSet};
use ctxrank_bench::report::{print_ndcg_figure, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ds = &exp.dataset;
    let rows = vec![
        ("Random".to_string(), evaluate_fixed(ds, random_scorer(1))),
        (
            "Concept Vector Score".to_string(),
            evaluate_fixed(ds, |i| i.baseline_score),
        ),
        (
            "Interestingness + Relevance".to_string(),
            evaluate_best_kernel(
                ds,
                FeatureSet::InterestPlusRelevance(MiningResource::Snippets),
                5,
                7,
                true,
            ),
        ),
    ];
    print_ndcg_figure("Figure 3: NDCG@k with all features", &rows);
    std::fs::create_dir_all("results").ok();
    write_json("results/fig3_ndcg_all.json", "fig3", &rows).expect("write report");
}
