//! Ablation: linear vs RBF kernel for the ranking SVM.
//!
//! §V-A.3: "we test with both linear and the radial basis function
//! kernels with the default parameters, and report the best result."
//! This binary reports both, for the interestingness-only and the
//! combined feature sets.

use ctxrank_bench::rankers::{evaluate_learned, FeatureSet};
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;
use ctxrank_ltr::{KernelKind, SvmConfig};

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ds = &exp.dataset;
    let kernels = [
        ("linear", KernelKind::Linear),
        (
            "rbf (gamma 0.5, 256 features)",
            KernelKind::Rbf {
                gamma: 0.5,
                dim: 256,
            },
        ),
        (
            "rbf (gamma 0.1, 256 features)",
            KernelKind::Rbf {
                gamma: 0.1,
                dim: 256,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (fs_label, fs, tiebreak) in [
        ("interestingness", FeatureSet::AllInterest, false),
        (
            "interestingness + relevance",
            FeatureSet::InterestPlusRelevance(MiningResource::Snippets),
            true,
        ),
    ] {
        for (k_label, kernel) in kernels {
            let svm = SvmConfig {
                kernel,
                seed: 7,
                ..SvmConfig::default()
            };
            rows.push((
                format!("{fs_label}, {k_label}"),
                evaluate_learned(ds, fs, &svm, 5, 7, tiebreak),
            ));
        }
    }
    print_table("Ablation: ranking-SVM kernel", &rows);
    std::fs::create_dir_all("results").ok();
    write_json("results/ablation_kernel.json", "ablation_kernel", &rows).expect("write report");
}
