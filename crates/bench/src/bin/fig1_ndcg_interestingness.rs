//! Figure 1 — NDCG@{1,2,3} when all interestingness features are used.
//!
//! Series: Random, Concept Vector Score, and the learned interestingness
//! model. The paper's figure shows the learned model clearly on top at
//! every cut-off, the concept vector in the middle, random lowest.

use ctxrank_bench::rankers::{evaluate_best_kernel, evaluate_fixed, random_scorer, FeatureSet};
use ctxrank_bench::report::{print_ndcg_figure, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ds = &exp.dataset;
    let rows = vec![
        ("Random".to_string(), evaluate_fixed(ds, random_scorer(1))),
        (
            "Concept Vector Score".to_string(),
            evaluate_fixed(ds, |i| i.baseline_score),
        ),
        (
            "Interestingness Model".to_string(),
            evaluate_best_kernel(ds, FeatureSet::AllInterest, 5, 7, false),
        ),
    ];
    print_ndcg_figure("Figure 1: NDCG@k with interestingness features", &rows);
    std::fs::create_dir_all("results").ok();
    write_json("results/fig1_ndcg_interestingness.json", "fig1", &rows).expect("write report");
}
