//! Table VI — the editorial study.
//!
//! 1200 documents (800 short Answers snippets, 400 full News stories),
//! top-3 entities per News story and top-2 per Answers snippet picked by
//! (a) the concept-vector score alone and (b) the learned ranking
//! algorithm, judged on interestingness and relevance by the panel. The
//! paper's headline: the learned ranker raises Very-Interesting and
//! Very-Relevant shares and cuts the combined non-interesting /
//! non-relevant share by ~45 % (23.3 % → 12.8 %); the News
//! Very:Somewhat relevance ratio rises from 1.82 to 2.52.

use ctxrank_bench::{build_runtime_ranker, Experiment, ExperimentConfig};
use ctxrank_eval::editorial::{StudyCell, Tally};
use ctxrank_shortcuts::{Pipeline, PipelineConfig};
use ctxrank_synth::judges::{JudgeConfig, JudgePanel, Rating};
use ctxrank_synth::news::{generate_news, ground_truth_relevance, NewsConfig};
use ctxrank_synth::NewsStory;
use std::collections::HashMap;

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ranker = build_runtime_ranker(&exp);

    // Fresh evaluation corpora, disjoint from the training stories.
    let news = generate_news(
        exp.config.world.seed ^ 0xed17,
        &exp.world.lexicon,
        &exp.world.universe,
        &NewsConfig {
            num_stories: 400,
            ..NewsConfig::default()
        },
    );
    let answers = generate_news(
        exp.config.world.seed ^ 0xa25,
        &exp.world.lexicon,
        &exp.world.universe,
        &NewsConfig {
            num_stories: 800,
            min_sentences: 3,
            max_sentences: 7,
            min_on_topic: 2,
            max_on_topic: 4,
            ..NewsConfig::default()
        },
    );

    let mut by_surface: HashMap<String, Vec<ctxrank_synth::ConceptId>> = HashMap::new();
    for c in exp.world.universe.all() {
        by_surface.entry(c.surface()).or_default().push(c.id);
    }

    let pipeline = Pipeline::new(
        &exp.dictionary,
        &exp.units,
        |t| exp.world.corpus.idf(t),
        PipelineConfig::default(),
    );

    let mut judges = JudgePanel::new(exp.config.seed ^ 0x6ed, JudgeConfig::default());

    // Judge the top-k picks of one ranking policy over one corpus.
    let study = |stories: &[NewsStory],
                 top_k: usize,
                 learned: bool,
                 judges: &mut JudgePanel|
     -> StudyCell {
        let mut cell = StudyCell::default();
        for story in stories {
            let doc = pipeline.process(&story.text);
            let mut candidates: Vec<(String, f64)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for a in doc.rankable() {
                if by_surface.contains_key(&a.surface) && seen.insert(a.surface.clone()) {
                    candidates.push((a.surface.clone(), a.score));
                }
            }
            if candidates.is_empty() {
                continue;
            }
            let picks: Vec<String> = if learned {
                let surfaces: Vec<String> = candidates.iter().map(|(s, _)| s.clone()).collect();
                ranker
                    .top_n(&doc.text, &surfaces, top_k)
                    .into_iter()
                    .map(|r| r.surface)
                    .collect()
            } else {
                let mut by_score = candidates.clone();
                by_score.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                by_score.into_iter().take(top_k).map(|(s, _)| s).collect()
            };
            for surface in picks {
                let cands = &by_surface[&surface];
                let cid = *cands
                    .iter()
                    .find(|&&c| exp.world.universe.get(c).topic == Some(story.topic))
                    .unwrap_or(&cands[0]);
                let spec = exp.world.universe.get(cid);
                let gt_rel =
                    ground_truth_relevance(spec, story.topic, story.center, story.secondary_topic);
                let j = judges.judge(spec.interestingness, gt_rel);
                tally(&mut cell.interestingness, j.interestingness);
                tally(&mut cell.relevance, j.relevance);
            }
        }
        cell
    };

    let cv_news = study(&news, 3, false, &mut judges);
    let cv_answers = study(&answers, 2, false, &mut judges);
    let lr_news = study(&news, 3, true, &mut judges);
    let lr_answers = study(&answers, 2, true, &mut judges);

    println!("=== Table VI: editorial study ===");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "", "CV News", "CV Answers", "LR News", "LR Answers"
    );
    print_scale(
        "Interestingness",
        &[
            cv_news.interestingness,
            cv_answers.interestingness,
            lr_news.interestingness,
            lr_answers.interestingness,
        ],
    );
    print_scale(
        "Relevance",
        &[
            cv_news.relevance,
            cv_answers.relevance,
            lr_news.relevance,
            lr_answers.relevance,
        ],
    );

    let cv_bad = (cv_news.combined_bad_fraction() + cv_answers.combined_bad_fraction()) / 2.0;
    let lr_bad = (lr_news.combined_bad_fraction() + lr_answers.combined_bad_fraction()) / 2.0;
    println!(
        "\ncombined non-interesting/non-relevant: concept vector {:.1}% -> ranking algorithm {:.1}% \
         ({:.1}% decrease; paper: 23.3% -> 12.8%, 45.1% decrease)",
        cv_bad * 100.0,
        lr_bad * 100.0,
        (1.0 - lr_bad / cv_bad.max(1e-12)) * 100.0
    );
    println!(
        "News Very:Somewhat relevance ratio: {:.2} -> {:.2} (paper: 1.82 -> 2.52)",
        cv_news.relevance.very_to_somewhat_ratio(),
        lr_news.relevance.very_to_somewhat_ratio()
    );

    std::fs::create_dir_all("results").ok();
    let json = serde_json::json!({
        "experiment": "table6_editorial",
        "concept_vector": {"news": cv_news, "answers": cv_answers},
        "ranking_algorithm": {"news": lr_news, "answers": lr_answers},
        "combined_bad": {"concept_vector": cv_bad, "ranking_algorithm": lr_bad},
    });
    std::fs::write(
        "results/table6_editorial.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .ok();
}

fn tally(t: &mut Tally, r: Rating) {
    match r {
        Rating::Very => t.very += 1,
        Rating::Somewhat => t.somewhat += 1,
        Rating::Not => t.not += 1,
        Rating::CantTell => t.cant_tell += 1,
    }
}

#[allow(clippy::type_complexity)]
fn print_scale(name: &str, cells: &[Tally; 4]) {
    println!("{name}:");
    let rows: [(&str, fn(&Tally) -> f64); 4] = [
        ("  Very", Tally::frac_very),
        ("  Somewhat", Tally::frac_somewhat),
        ("  Not", Tally::frac_not),
        ("  Can't Tell", Tally::frac_cant_tell),
    ];
    for (label, f) in rows {
        println!(
            "{:<28} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            label,
            f(&cells[0]) * 100.0,
            f(&cells[1]) * 100.0,
            f(&cells[2]) * 100.0,
            f(&cells[3]) * 100.0
        );
    }
}
