//! Ablation: the §II-B multi-term specificity bonus.
//!
//! DESIGN.md calls out the merge's step 4 ("more specific concepts
//! eventually bubble up") as a design choice worth ablating: how much of
//! the concept-vector baseline's quality comes from that bonus?

use ctxrank_bench::rankers::evaluate_fixed;
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};

fn main() {
    let mut rows = Vec::new();
    for (label, bonus) in [
        ("with multi-term bonus", true),
        ("without multi-term bonus", false),
    ] {
        let config = ExperimentConfig {
            multiterm_bonus: bonus,
            ..ExperimentConfig::default()
        };
        let exp = Experiment::build(config);
        rows.push((
            label.to_string(),
            evaluate_fixed(&exp.dataset, |i| i.baseline_score),
        ));
    }
    print_table(
        "Ablation: §II-B multi-term bonus (concept-vector baseline)",
        &rows,
    );
    std::fs::create_dir_all("results").ok();
    write_json("results/ablation_merge.json", "ablation_merge", &rows).expect("write report");
}
