//! Ablation: keyword weighting scheme for relevance mining.
//!
//! The paper says "compute its tf*idf score"; with a web-scale corpus
//! the reading barely matters, but with a synthetic vocabulary the
//! choice is visible. This sweep compares raw `tf·idf`, log-damped
//! `(1+ln tf)·idf`, and presence (`idf`-only) keyword weights on the
//! snippets relevance-only ranking.

use ctxrank_bench::rankers::evaluate_fixed;
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::{KeywordWeighting, MiningResource};

fn main() {
    let mut rows = Vec::new();
    for (label, w) in [
        ("raw tf x idf", KeywordWeighting::RawTf),
        ("(1 + ln tf) x idf", KeywordWeighting::LogTf),
        ("presence (idf only)", KeywordWeighting::Presence),
    ] {
        let config = ExperimentConfig {
            keyword_weighting: w,
            ..ExperimentConfig::default()
        };
        let exp = Experiment::build(config);
        rows.push((
            label.to_string(),
            evaluate_fixed(&exp.dataset, |i| {
                i.relevance_raw_for(MiningResource::Snippets)
            }),
        ));
    }
    print_table(
        "Ablation: keyword weighting (snippet relevance only)",
        &rows,
    );
    println!(
        "\nRaw tf concentrates score mass on a handful of peak keywords and lets\n\
         popularity swamp the context signal; presence weighting measures keyword\n\
         *coverage*, which is the §V-A.5 mechanism (see EXPERIMENTS.md)."
    );
    std::fs::create_dir_all("results").ok();
    write_json(
        "results/ablation_weighting.json",
        "ablation_weighting",
        &rows,
    )
    .expect("write report");
}
