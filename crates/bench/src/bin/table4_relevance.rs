//! Table IV — ranking by relevance score alone, per mining resource.
//!
//! Paper rows: Prisma 32.32 %, Query Suggestions 31.23 %, Snippets
//! 24.86 % — snippets clearly best (better keyword coverage, better
//! clustering), the other two roughly at or below the baseline.

use ctxrank_bench::rankers::{evaluate_fixed, random_scorer};
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ds = &exp.dataset;
    let mut rows = vec![
        ("Random".to_string(), evaluate_fixed(ds, random_scorer(1))),
        (
            "Concept Vector Score".to_string(),
            evaluate_fixed(ds, |i| i.baseline_score),
        ),
    ];
    for r in MiningResource::ALL {
        rows.push((
            format!("{r:?}"),
            evaluate_fixed(ds, |i| i.relevance_raw_for(r)),
        ));
    }
    print_table(
        "Table IV: weighted error rates, relevance score only",
        &rows,
    );
    println!(
        "\npaper: Prisma 32.32 / Query Suggestions 31.23 / Snippets 24.86\n\
         (our Prisma comparator lacks the proprietary tool's full weaknesses; see EXPERIMENTS.md)"
    );
    std::fs::create_dir_all("results").ok();
    write_json("results/table4_relevance.json", "table4", &rows).expect("write report");
}
