//! §VIII future work — online reaction to world events.
//!
//! Scenario: a low-interestingness concept (statically ranked near the
//! bottom) is suddenly at the centre of a breaking story: its true CTR
//! jumps ~10x for a few feedback batches, then reverts. The static model
//! cannot react (its features are offline); the online adjuster
//! (fast/slow CTR averages, `ctxrank_framework::online`) boosts it
//! within a batch or two of feedback and decays the boost afterwards.
//!
//! Reported: the event concept's mean rank position per batch under the
//! static ranker vs the online ranker.

use ctxrank_bench::{build_runtime_ranker, Experiment, ExperimentConfig};
use ctxrank_framework::{OnlineConfig, OnlineCtrAdjuster};
use ctxrank_synth::rng::binomial;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCHES: usize = 14;
const EVENT_START: usize = 4;
const EVENT_END: usize = 8;
const STORIES_PER_BATCH: usize = 40;
const VIEWS_PER_STORY: u64 = 400;

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ranker = build_runtime_ranker(&exp);
    let mut adjuster = OnlineCtrAdjuster::new(OnlineConfig {
        // Model scores span several units after standardization; let the
        // boost be strong enough to carry a bottom-ranked concept to the
        // top during a genuine event.
        gain: 2.5,
        max_adjust: 6.0,
        ..OnlineConfig::default()
    });
    let mut r = StdRng::seed_from_u64(0x0e1);

    // Pick a cold specific concept that the dataset knows about and a
    // fixed candidate slate from its topic (hot competitors included).
    let mut known: Vec<&str> = exp.interest_raw.keys().map(String::as_str).collect();
    known.sort();
    let event_surface = known
        .iter()
        .filter_map(|s| {
            exp.world
                .universe
                .all()
                .iter()
                .find(|c| c.surface() == **s && !c.is_junk())
        })
        .min_by(|a, b| {
            a.interestingness
                .partial_cmp(&b.interestingness)
                .expect("finite")
        })
        .expect("a cold concept")
        .surface();
    let event_topic = exp
        .world
        .universe
        .all()
        .iter()
        .find(|c| c.surface() == event_surface)
        .and_then(|c| c.topic)
        .expect("event concept has a topic");
    let mut slate: Vec<String> = exp
        .world
        .universe
        .of_topic(event_topic)
        .filter(|c| exp.interest_raw.contains_key(&c.surface()))
        .map(|c| c.surface())
        .take(8)
        .collect();
    if !slate.contains(&event_surface) {
        slate.push(event_surface.clone());
    }

    println!("=== §VIII online adaptation: breaking-news simulation ===");
    println!(
        "event concept: {:?} (slate of {} same-topic candidates)\n",
        event_surface,
        slate.len()
    );
    println!(
        "{:>5} {:>8} {:>14} {:>14} {:>12}",
        "batch", "phase", "static rank", "online rank", "adjustment"
    );

    let stories: Vec<&ctxrank_synth::NewsStory> = exp
        .world
        .news
        .iter()
        .filter(|s| s.topic == event_topic)
        .collect();

    let mut results = Vec::new();
    for batch in 0..BATCHES {
        let event_active = (EVENT_START..EVENT_END).contains(&batch);

        // Measure the event concept's rank under both policies.
        let mut static_rank_sum = 0.0;
        let mut online_rank_sum = 0.0;
        let mut n = 0.0;
        for story in stories.iter().take(STORIES_PER_BATCH.min(stories.len())) {
            let static_ranked = ranker.rank(&story.text, &slate);
            let online_ranked = ranker.rank_online(&story.text, &slate, &adjuster);
            let pos = |ranked: &[ctxrank_framework::ranker::RankedConcept]| {
                ranked
                    .iter()
                    .position(|x| x.surface == event_surface)
                    .expect("event concept in slate") as f64
                    + 1.0
            };
            static_rank_sum += pos(&static_ranked);
            online_rank_sum += pos(&online_ranked);
            n += 1.0;
        }

        // Simulate the batch's click feedback: every slate concept gets
        // its usual CTR; the event concept's CTR spikes during the event.
        for surface in &slate {
            let spec = exp
                .world
                .universe
                .all()
                .iter()
                .find(|c| c.surface() == *surface)
                .expect("slate concept");
            let base_ctr = 0.06 * spec.interestingness.powf(0.8) + 0.002;
            let ctr = if *surface == event_surface && event_active {
                0.08 // the world event: everyone clicks
            } else {
                base_ctr
            };
            let views = VIEWS_PER_STORY * STORIES_PER_BATCH as u64;
            let clicks = binomial(&mut r, views, ctr);
            adjuster.record(surface, views, clicks);
        }

        let phase = if event_active { "EVENT" } else { "quiet" };
        println!(
            "{:>5} {:>8} {:>14.2} {:>14.2} {:>12.3}",
            batch,
            phase,
            static_rank_sum / n,
            online_rank_sum / n,
            adjuster.adjustment(&event_surface)
        );
        results.push(serde_json::json!({
            "batch": batch,
            "event_active": event_active,
            "static_rank": static_rank_sum / n,
            "online_rank": online_rank_sum / n,
            "adjustment": adjuster.adjustment(&event_surface),
        }));
    }

    println!(
        "\nExpected shape: the online rank rises toward the top within 1-2 \
         batches of the event and decays after it ends; the static rank \
         never moves."
    );

    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/online_adaptation.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "experiment": "online_adaptation",
            "event_concept": event_surface,
            "batches": results,
        }))
        .expect("serialize"),
    )
    .ok();
}
