//! Calibration probe: builds the full-scale experiment and prints the
//! headline comparison (random / concept vector / interestingness /
//! relevance / all features) plus dataset statistics. Used during
//! development to verify the synthetic world reproduces the paper's
//! shape before the per-table binaries report it.

use ctxrank_bench::rankers::{evaluate_fixed, evaluate_learned, random_scorer, FeatureSet};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;
use ctxrank_ltr::SvmConfig;
use std::time::Instant;

#[allow(clippy::needless_range_loop)]
fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let t0 = Instant::now();
    let mut config = if small {
        ExperimentConfig::small(0x2009)
    } else {
        ExperimentConfig::default()
    };
    let knob = |name: &str, default: f64| -> f64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    config.world.queries.popularity_noise = knob("PN", config.world.queries.popularity_noise);
    config.clicks.relevance_floor = knob("RF", config.clicks.relevance_floor);
    config.clicks.view_mu = knob("VM", config.clicks.view_mu);
    config.clicks.noise_sigma = knob("NS", config.clicks.noise_sigma);
    config.world.queries.p_topical_refinement =
        knob("PTR", config.world.queries.p_topical_refinement);
    config.min_suggestion_freq = knob("MSF", config.min_suggestion_freq as f64) as u64;
    config.clicks.position_bias = knob("PB", config.clicks.position_bias);
    config.world.news.repetition = knob("REP", config.world.news.repetition);
    config.keyword_weighting = match std::env::var("KW").as_deref() {
        Ok("log") => ctxrank_features::KeywordWeighting::LogTf,
        Ok("presence") => ctxrank_features::KeywordWeighting::Presence,
        _ => ctxrank_features::KeywordWeighting::RawTf,
    };
    println!(
        "knobs: PN {} RF {} VM {} NS {} PTR {}",
        config.world.queries.popularity_noise,
        config.clicks.relevance_floor,
        config.clicks.view_mu,
        config.clicks.noise_sigma,
        config.world.queries.p_topical_refinement
    );
    let exp = Experiment::build(config);
    println!("build: {:.1}s", t0.elapsed().as_secs_f64());
    println!("stats: {:?}", exp.stats);
    println!(
        "groups: {}  items: {}",
        exp.dataset.groups.len(),
        exp.dataset.num_items()
    );

    let ds = &exp.dataset;
    let t = Instant::now();
    let random = evaluate_fixed(ds, random_scorer(1));
    let baseline = evaluate_fixed(ds, |i| i.baseline_score);
    println!(
        "random    WER {:.2}%  ndcg {:?}",
        random.wer_pct(),
        random.ndcg
    );
    println!(
        "baseline  WER {:.2}%  ndcg {:?}",
        baseline.wer_pct(),
        baseline.ndcg
    );
    for r in MiningResource::ALL {
        let rel = evaluate_fixed(ds, |i| i.relevance_raw_for(r));
        println!(
            "rel {:?}  WER {:.2}%  ndcg {:?}",
            r,
            rel.wer_pct(),
            rel.ndcg
        );
    }
    // Baseline score coverage diagnostics.
    {
        let mut zero = 0usize;
        let mut total = 0usize;
        let mut in_units = 0usize;
        for g in &ds.groups {
            for i in &g.items {
                total += 1;
                if i.baseline_score == 0.0 {
                    zero += 1;
                }
                let terms: Vec<String> = i.surface.split(' ').map(str::to_string).collect();
                if exp.units.get(&terms).is_some() {
                    in_units += 1;
                }
            }
        }
        println!("baseline zero {zero}/{total}, in unit dict {in_units}/{total}");
        let pts: Vec<(f64, f64)> = ds
            .groups
            .iter()
            .flat_map(|g| g.items.iter())
            .map(|i| {
                (
                    i.baseline_score,
                    exp.world.universe.get(i.concept).interestingness,
                )
            })
            .collect();
        println!("corr(baseline, interest) = {:.3}", pearson(&pts));
        let pts2: Vec<(f64, f64)> = ds
            .groups
            .iter()
            .flat_map(|g| g.items.iter())
            .map(|i| (i.baseline_score, i.gt_relevance))
            .collect();
        println!("corr(baseline, gt_rel) = {:.3}", pearson(&pts2));
    }

    // Single-feature scorers: where does the baseline's signal live?
    let by_freq = evaluate_fixed(ds, |i| i.interest[0]);
    let by_unit = evaluate_fixed(ds, |i| i.interest[2]);
    let by_wiki = evaluate_fixed(ds, |i| i.interest[8]);
    println!("feat freq_exact WER {:.2}%", by_freq.wer_pct());
    println!("feat unit_score WER {:.2}%", by_unit.wer_pct());
    println!("feat wiki       WER {:.2}%", by_wiki.wer_pct());

    // Oracle scorers: upper bounds for each information source.
    let o_rel = evaluate_fixed(ds, |i| i.gt_relevance);
    let o_int = evaluate_fixed(ds, |i| exp.world.universe.get(i.concept).interestingness);
    let o_both = evaluate_fixed(ds, |i| {
        exp.world.universe.get(i.concept).interestingness.powf(0.8)
            * (0.07 + 0.93 * i.gt_relevance)
            * (1.0 - 0.45 * i.position_frac)
    });
    println!("oracle rel  WER {:.2}%", o_rel.wer_pct());
    println!("oracle int  WER {:.2}%", o_int.wer_pct());
    println!("oracle both WER {:.2}%", o_both.wer_pct());

    // Reference learner: ridge regression CTR ~ features, rank by
    // prediction (diagnoses optimizer-vs-data issues).
    if std::env::var("RIDGE").is_ok() {
        let mut err = ctxrank_eval::ErrorRateAccumulator::new();
        for (train_g, test_g) in ds.story_folds(5, 7) {
            let rows: Vec<(&Vec<f64>, f64)> = train_g
                .iter()
                .flat_map(|&g| ds.groups[g].items.iter().map(|i| (&i.interest, i.ctr)))
                .collect();
            let d = 9;
            let mut xtx = vec![vec![0.0f64; d + 1]; d + 1];
            let mut xty = vec![0.0f64; d + 1];
            for (x, y) in &rows {
                let mut xe = x.to_vec();
                xe.push(1.0);
                for a in 0..=d {
                    for b in 0..=d {
                        xtx[a][b] += xe[a] * xe[b];
                    }
                    xty[a] += xe[a] * *y;
                }
            }
            for a in 0..=d {
                xtx[a][a] += 1e-3;
            }
            // Gaussian elimination.
            let mut m = xtx.clone();
            let mut b = xty.clone();
            for col in 0..=d {
                let piv = (col..=d)
                    .max_by(|&x, &y| {
                        m[x][col]
                            .abs()
                            .partial_cmp(&m[y][col].abs())
                            .expect("finite")
                    })
                    .expect("rows");
                m.swap(col, piv);
                b.swap(col, piv);
                let pv = m[col][col];
                for row in 0..=d {
                    if row != col && m[row][col].abs() > 0.0 {
                        let f = m[row][col] / pv;
                        for k in col..=d {
                            let v = m[col][k];
                            m[row][k] -= f * v;
                        }
                        b[row] -= f * b[col];
                    }
                }
            }
            let w: Vec<f64> = (0..=d).map(|i| b[i] / m[i][i]).collect();
            for &g in &test_g {
                let group = &ds.groups[g];
                let scores: Vec<f64> = group
                    .items
                    .iter()
                    .map(|i| i.interest.iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>() + w[d])
                    .collect();
                let ctrs: Vec<f64> = group.items.iter().map(|i| i.ctr).collect();
                err.add(&scores, &ctrs);
            }
        }
        println!(
            "ridge interest WER {:.2}%",
            err.weighted_error_rate() * 100.0
        );
    }

    let svm = SvmConfig {
        lambda: knob("LAMBDA", 1e-4),
        epochs: knob("EPOCHS", 20.0) as usize,
        ..SvmConfig::default()
    };
    let single = evaluate_learned(ds, FeatureSet::SingleInterest(0), &svm, 5, 7, false);
    println!("learned freq_exact only WER {:.2}%", single.wer_pct());
    if std::env::var("ABLATE").is_ok() {
        for group in [
            "query_logs",
            "taxonomy",
            "search_results",
            "other",
            "text_based",
        ] {
            let r = evaluate_learned(ds, FeatureSet::InterestWithout(group), &svm, 5, 7, false);
            println!("ablate -{group} WER {:.2}%", r.wer_pct());
        }
        for d in 0..9 {
            let r = evaluate_learned(ds, FeatureSet::SingleInterest(d), &svm, 5, 7, false);
            println!(
                "single {} WER {:.2}%",
                ctxrank_features::InterestFeatures::names()[d],
                r.wer_pct()
            );
        }
    }
    let interest = evaluate_learned(ds, FeatureSet::AllInterest, &svm, 5, 7, false);
    println!(
        "interest  WER {:.2}%  ndcg {:?}",
        interest.wer_pct(),
        interest.ndcg
    );
    let all = evaluate_learned(
        ds,
        FeatureSet::InterestPlusRelevance(MiningResource::Snippets),
        &svm,
        5,
        7,
        true,
    );
    println!("all       WER {:.2}%  ndcg {:?}", all.wer_pct(), all.ndcg);
    println!("eval: {:.1}s", t.elapsed().as_secs_f64());

    // Per-resource relevance separation diagnostics.
    for r in MiningResource::ALL {
        let mut on = (0.0, 0usize);
        let mut off = (0.0, 0usize);
        let mut zero_on = 0usize;
        let mut zero_off = 0usize;
        for g in &exp.dataset.groups {
            for i in &g.items {
                let v = i.relevance_raw_for(r);
                if i.gt_relevance > 0.9 {
                    on.0 += v;
                    on.1 += 1;
                    if v == 0.0 {
                        zero_on += 1;
                    }
                } else if i.gt_relevance < 0.1 {
                    off.0 += v;
                    off.1 += 1;
                    if v == 0.0 {
                        zero_off += 1;
                    }
                }
            }
        }
        println!(
            "diag {:?}: on-topic mean {:.1} (zero {}/{})  off-topic mean {:.1} (zero {}/{})",
            r,
            on.0 / on.1 as f64,
            zero_on,
            on.1,
            off.0 / off.1 as f64,
            zero_off,
            off.1
        );
        // Keyword set sizes for a sample of concepts.
        let model = &exp.relevance_models[ctxrank_bench::dataset::resource_index(r)];
        let sizes: Vec<usize> = exp.dataset.groups[..30]
            .iter()
            .flat_map(|g| g.items.iter())
            .filter_map(|i| model.terms(&i.surface).map(|t| t.len()))
            .collect();
        let mean_size = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
        println!("diag {:?}: mean keyword-set size {:.1}", r, mean_size);

        // Pearson correlation of relevance_raw with the latent
        // interestingness among on-topic items (this is what drives the
        // within-window ordering quality of relevance-only ranking).
        let pts: Vec<(f64, f64)> = exp
            .dataset
            .groups
            .iter()
            .flat_map(|g| g.items.iter())
            .filter(|i| i.gt_relevance > 0.9)
            .map(|i| {
                (
                    i.relevance_raw_for(r).ln_1p(),
                    exp.world.universe.get(i.concept).interestingness,
                )
            })
            .collect();
        println!(
            "diag {:?}: corr(ln rel, interest) = {:.3}",
            r,
            pearson(&pts)
        );
    }

    // Inspect one polluted off-topic snippet score in depth.
    {
        use ctxrank_features::{MiningResource, RelevanceModel};
        let model =
            &exp.relevance_models[ctxrank_bench::dataset::resource_index(MiningResource::Snippets)];
        'outer: for (g_idx, g) in exp.dataset.groups.iter().enumerate() {
            for i in &g.items {
                if i.gt_relevance < 0.1 && i.relevance_raw_for(MiningResource::Snippets) > 500.0 {
                    let story = &exp.world.news[g.story];
                    let windows = ctxrank_text::window::paper_windows(&story.text);
                    let w = &windows[g.window.min(windows.len() - 1)];
                    let ctx = RelevanceModel::context_of(w.of(&story.text));
                    let spec = exp.world.universe.get(i.concept);
                    let spec_topic = spec.topic;
                    println!(
                        "POLLUTED: {} (topic {:?} center {:.3}, story topic {} center {:.3} sec {:?}) gt {:.3} raw {:.0}",
                        i.surface, spec_topic, spec.center, story.topic, story.center,
                        story.secondary_topic, i.gt_relevance,
                        i.relevance_raw_for(MiningResource::Snippets)
                    );
                    if let Some(rt) = model.terms(&i.surface) {
                        let mut matched: Vec<(&str, f64)> = rt
                            .terms
                            .iter()
                            .filter(|(t, _)| ctx.contains(t))
                            .map(|(t, s)| (t.as_str(), *s))
                            .collect();
                        matched.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                        for (t, s) in matched.iter().take(12) {
                            // Which pool does this stem's originating word belong to?
                            let pool = (0..exp.world.lexicon.num_topics())
                                .find_map(|k| {
                                    exp.world
                                        .lexicon
                                        .topic(k)
                                        .iter()
                                        .position(|w| ctxrank_text::stem(w) == *t)
                                        .map(|idx| {
                                            format!(
                                                "topic{k}@{:.3}",
                                                idx as f64
                                                    / exp.world.lexicon.topic(k).len() as f64
                                            )
                                        })
                                })
                                .unwrap_or_else(|| "general/other".into());
                            println!("   kw {t} score {s:.0} [{pool}]");
                        }
                    }
                    println!("   group {g_idx} window {} story {}", g.window, g.story);
                    break 'outer;
                }
            }
        }
    }

    // Ground-truth diagnostics: correlation of CTR with latents.
    let mut on_topic = 0usize;
    let mut off_topic = 0usize;
    for g in &ds.groups {
        for i in &g.items {
            if i.gt_relevance > 0.9 {
                on_topic += 1;
            } else if i.gt_relevance < 0.1 {
                off_topic += 1;
            }
        }
    }
    println!("items on-topic {} off-topic {}", on_topic, off_topic);
}

fn pearson(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in pts {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    sxy / (sxx.sqrt() * syy.sqrt()).max(1e-12)
}
