//! Table III — weighted error rates with interestingness features.
//!
//! Paper rows: Random 50.01 %, Concept Vector Score 30.22 %, All
//! Features 23.69 %, then leave-one-group-out ablations showing that the
//! query-log and taxonomy groups matter most.

use ctxrank_bench::rankers::{evaluate_best_kernel, evaluate_fixed, random_scorer, FeatureSet};
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ds = &exp.dataset;
    println!(
        "dataset: {} stories kept, {} windows, {} concept instances, {} clicks",
        exp.stats.stories_kept,
        exp.stats.windows,
        exp.stats.concept_instances,
        exp.stats.total_clicks
    );

    let mut rows = vec![
        ("Random".to_string(), evaluate_fixed(ds, random_scorer(1))),
        (
            "Concept Vector Score".to_string(),
            evaluate_fixed(ds, |i| i.baseline_score),
        ),
        (
            "All Features".to_string(),
            evaluate_best_kernel(ds, FeatureSet::AllInterest, 5, 7, false),
        ),
    ];
    for (label, group) in [
        ("- Query Logs", "query_logs"),
        ("- Taxonomy Based", "taxonomy"),
        ("- Search Results", "search_results"),
        ("- Other", "other"),
        ("- Text Based", "text_based"),
    ] {
        rows.push((
            label.to_string(),
            evaluate_best_kernel(ds, FeatureSet::InterestWithout(group), 5, 7, false),
        ));
    }

    print_table(
        "Table III: weighted error rates with interestingness features",
        &rows,
    );
    println!(
        "\npaper: Random 50.01 / Concept Vector 30.22 / All 23.69;\n\
         ablations: 24.50 (-QL), 24.47 (-Tax), 23.80 (-SR), 23.78 (-Other), 23.73 (-Text)"
    );

    std::fs::create_dir_all("results").ok();
    write_json("results/table3_interestingness.json", "table3", &rows).expect("write report");
}
