//! Statistical backing for the paper's "significantly lower" claims.
//!
//! Paired permutation tests (10 000 permutations over per-window
//! weighted pair statistics) for the three comparisons the paper draws:
//! combined model vs concept-vector baseline, combined vs
//! interestingness-only, and interestingness-only vs baseline.

use ctxrank_bench::rankers::{cv_scores, FeatureSet};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_eval::{paired_permutation_wer, weighted_pair_stats, PairStats};
use ctxrank_features::MiningResource;
use ctxrank_ltr::SvmConfig;

const PERMUTATIONS: usize = 10_000;

fn per_group_stats(exp: &Experiment, scores: &[Vec<f64>]) -> Vec<PairStats> {
    exp.dataset
        .groups
        .iter()
        .zip(scores)
        .map(|(g, s)| {
            let ctrs: Vec<f64> = g.items.iter().map(|i| i.ctr).collect();
            weighted_pair_stats(s, &ctrs)
        })
        .collect()
}

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let svm = SvmConfig::default();

    let baseline: Vec<Vec<f64>> = exp
        .dataset
        .groups
        .iter()
        .map(|g| g.items.iter().map(|i| i.baseline_score).collect())
        .collect();
    let interest = cv_scores(&exp.dataset, FeatureSet::AllInterest, &svm, 5, 7, false);
    let combined = cv_scores(
        &exp.dataset,
        FeatureSet::InterestPlusRelevance(MiningResource::Snippets),
        &svm,
        5,
        7,
        true,
    );

    let b = per_group_stats(&exp, &baseline);
    let i = per_group_stats(&exp, &interest);
    let c = per_group_stats(&exp, &combined);

    println!("=== paired permutation tests ({PERMUTATIONS} permutations) ===");
    println!(
        "{:<46} {:>8} {:>8} {:>10}",
        "comparison (A vs B)", "WER A", "WER B", "p-value"
    );
    let mut results = Vec::new();
    for (label, a, bstats) in [
        ("combined vs concept-vector baseline", &c, &b),
        ("combined vs interestingness-only", &c, &i),
        ("interestingness-only vs baseline", &i, &b),
    ] {
        let per_doc: Vec<(PairStats, PairStats)> =
            a.iter().copied().zip(bstats.iter().copied()).collect();
        let out = paired_permutation_wer(&per_doc, PERMUTATIONS, 0x51);
        println!(
            "{:<46} {:>7.2}% {:>7.2}% {:>10.5}",
            label,
            out.wer_a * 100.0,
            out.wer_b * 100.0,
            out.p_value
        );
        results.push(serde_json::json!({
            "comparison": label,
            "wer_a": out.wer_a,
            "wer_b": out.wer_b,
            "p_value": out.p_value,
        }));
    }
    println!(
        "\nall three differences should be significant at p < 0.01, matching the\n\
         paper's qualitative claim."
    );

    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/significance_test.json",
        serde_json::to_string_pretty(&serde_json::json!({
            "experiment": "significance_test",
            "permutations": PERMUTATIONS,
            "rows": results,
        }))
        .expect("serialize"),
    )
    .ok();
}
