//! Ablation: m, the number of relevance keywords per concept.
//!
//! The paper fixes m = 100 ("100 used in practice"). This sweep shows
//! the coverage/precision trade-off: snippet relevance-only WER as m
//! varies.

use ctxrank_bench::rankers::evaluate_fixed;
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;

fn main() {
    let mut rows = Vec::new();
    for m in [10usize, 25, 50, 100, 200] {
        let config = ExperimentConfig {
            relevance_m: m,
            ..ExperimentConfig::default()
        };
        let exp = Experiment::build(config);
        rows.push((
            format!("m = {m}"),
            evaluate_fixed(&exp.dataset, |i| {
                i.relevance_raw_for(MiningResource::Snippets)
            }),
        ));
    }
    print_table(
        "Ablation: keywords per concept (snippet relevance only)",
        &rows,
    );
    std::fs::create_dir_all("results").ok();
    write_json("results/ablation_m.json", "ablation_m", &rows).expect("write report");
}
