//! Table II — relevance-keyword summations.
//!
//! The paper sums the tf·idf scores of each concept's top hundred mined
//! relevance keywords and shows that specific concepts
//! ("methicillin resistant staphylococcus aureus", 9544.3) tower over
//! general/low-quality phrases ("my favorite", 2142.9): junk "get much
//! lower chance of getting identified as relevant in any context since
//! their relevant terms end up having small scores" (§IV-C).
//!
//! The diagnostic is computed exactly as the paper describes — literal
//! tf·idf keyword scores from snippet mining — over every concept in the
//! universe. (The production *ranking* path uses presence weights, which
//! measure coverage rather than mass; the mass statistic is what Table II
//! reports.)

use ctxrank_features::{KeywordWeighting, MiningResource, RelevanceModelBuilder};
use ctxrank_synth::{SynthWorld, WorldConfig};

fn main() {
    let world = SynthWorld::generate(WorldConfig::default());
    let mut builder = RelevanceModelBuilder::new(&world.corpus, &world.query_log);
    builder.min_idf = 3.2;
    builder.weighting = KeywordWeighting::RawTf;

    let mut rows: Vec<(String, f64, bool)> = Vec::new();
    for c in world.universe.all() {
        let mined = builder.mine(&c.terms, MiningResource::Snippets);
        rows.push((c.surface(), mined.summation(), c.is_junk()));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    println!("=== Table II: concepts and their summation values ===");
    println!("{:<42} {:>12} {:>9}", "Concept", "Summation", "class");
    for (s, sum, junk) in rows.iter().take(3) {
        println!(
            "{:<42} {:>12.1} {:>9}",
            s,
            sum,
            if *junk { "junk" } else { "specific" }
        );
    }
    println!("{:^65}", "...");
    let junk_rows: Vec<&(String, f64, bool)> = rows.iter().filter(|r| r.2).collect();
    for (s, sum, _) in junk_rows.iter().take(3) {
        println!("{:<42} {:>12.1} {:>9}", s, sum, "junk");
    }

    let (mut spec_sum, mut spec_n, mut junk_sum, mut junk_n) = (0.0, 0usize, 0.0, 0usize);
    for (_, sum, junk) in &rows {
        if *junk {
            junk_sum += sum;
            junk_n += 1;
        } else {
            spec_sum += sum;
            spec_n += 1;
        }
    }
    let spec_mean = spec_sum / spec_n.max(1) as f64;
    let junk_mean = junk_sum / junk_n.max(1) as f64;
    println!(
        "\nspecific concepts: n={spec_n}, mean summation {spec_mean:.1}\n\
         junk concepts:     n={junk_n}, mean summation {junk_mean:.1}\n\
         ratio specific/junk = {:.1}x (paper: ~9000 vs ~1800, ~5x)",
        spec_mean / junk_mean.max(1e-9)
    );
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if v.is_empty() {
            0.0
        } else {
            v[v.len() / 2]
        }
    };
    let spec_med = median(rows.iter().filter(|r| !r.2).map(|r| r.1).collect());
    let junk_med = median(rows.iter().filter(|r| r.2).map(|r| r.1).collect());
    println!(
        "median summation: specific {spec_med:.1}, junk {junk_med:.1}          (popular specifics reach {:.0}; junk is capped at {:.0})",
        rows.first().map(|r| r.1).unwrap_or(0.0),
        rows.iter().filter(|r| r.2).map(|r| r.1).fold(0.0, f64::max)
    );
    let half = rows.len() / 2;
    let junk_in_top = rows[..half].iter().filter(|r| r.2).count();
    println!("junk concepts in the top half of the ranking: {junk_in_top}/{junk_n}");

    std::fs::create_dir_all("results").ok();
    let json = serde_json::json!({
        "experiment": "table2_summation",
        "specific_mean": spec_mean,
        "junk_mean": junk_mean,
        "ratio": spec_mean / junk_mean.max(1e-9),
        "junk_in_top_half": junk_in_top,
        "top3": rows.iter().take(3).map(|(s, v, _)| serde_json::json!({"concept": s, "summation": v})).collect::<Vec<_>>(),
    });
    std::fs::write(
        "results/table2_summation.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .ok();
}
