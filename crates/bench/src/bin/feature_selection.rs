//! §IV-A feature selection — the features the paper tried and dropped.
//!
//! "We also tested with features that utilize idf value of the
//! individual terms that appear in the concept, however, these features
//! were not useful and eliminated during feature selection process."
//! Likewise "a variation which submits the concept as a regular query is
//! eliminated" for the search-engine feature.
//!
//! This experiment re-runs that selection: the nine Table I features
//! against the same nine plus each rejected candidate, under the usual
//! five-fold cross-validation. The candidates should change the weighted
//! error rate only marginally — that is *why* they were dropped.

use ctxrank_bench::rankers::EvalResult;
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_eval::{ErrorRateAccumulator, NdcgAccumulator};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use std::collections::HashMap;

/// Evaluate a custom per-item feature assembly under 5-fold CV.
fn evaluate_custom(
    exp: &Experiment,
    features: impl Fn(&ctxrank_bench::Item) -> Vec<f64>,
) -> EvalResult {
    let ds = &exp.dataset;
    let mut err = ErrorRateAccumulator::new();
    let mut ndcg = NdcgAccumulator::new(&[1, 2, 3]);
    for (train_groups, test_groups) in ds.story_folds(5, 7) {
        let training: Vec<RankGroup> = train_groups
            .iter()
            .map(|&g| {
                RankGroup::from_pairs(
                    ds.groups[g]
                        .items
                        .iter()
                        .map(|item| (features(item), item.ctr)),
                )
            })
            .filter(|g| {
                g.instances
                    .iter()
                    .any(|a| g.instances.iter().any(|b| a.label > b.label))
            })
            .collect();
        if training.is_empty() {
            continue;
        }
        let model = train(&training, &SvmConfig::default());
        for &g in &test_groups {
            let group = &ds.groups[g];
            let scores: Vec<f64> = group
                .items
                .iter()
                .map(|i| model.score(&features(i)))
                .collect();
            let ctrs: Vec<f64> = group.items.iter().map(|i| i.ctr).collect();
            let gains: Vec<f64> = ctrs.iter().map(|&c| ds.buckets.gain(c)).collect();
            err.add(&scores, &ctrs);
            ndcg.add(&scores, &gains);
        }
    }
    let m = ndcg.means();
    EvalResult {
        weighted_error: err.weighted_error_rate(),
        error: err.error_rate(),
        ndcg: [m[0], m[1], m[2]],
    }
}

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());

    // Pre-compute the rejected candidate features per surface.
    let mut extra: HashMap<String, (f64, f64, f64)> = HashMap::new();
    for surface in exp.interest_raw.keys() {
        let terms: Vec<String> = surface.split(' ').map(str::to_string).collect();
        // Candidate A: result count for the concept as a *regular*
        // (conjunctive) query rather than a phrase query.
        let regular = (exp.world.corpus.conjunctive_count(&terms) as f64).ln_1p();
        // Candidate B/C: mean and minimum idf of the constituent terms.
        let idfs: Vec<f64> = terms.iter().map(|t| exp.world.corpus.idf(t)).collect();
        let mean_idf = idfs.iter().sum::<f64>() / idfs.len().max(1) as f64;
        let min_idf = idfs.iter().cloned().fold(f64::INFINITY, f64::min);
        extra.insert(surface.clone(), (regular, mean_idf, min_idf));
    }

    let baseline = evaluate_custom(&exp, |i| i.interest.clone());
    let with_regular = evaluate_custom(&exp, |i| {
        let mut f = i.interest.clone();
        f.push(extra[&i.surface].0);
        f
    });
    let with_idf = evaluate_custom(&exp, |i| {
        let mut f = i.interest.clone();
        f.push(extra[&i.surface].1);
        f.push(extra[&i.surface].2);
        f
    });
    let with_all = evaluate_custom(&exp, |i| {
        let (a, b, c) = extra[&i.surface];
        let mut f = i.interest.clone();
        f.extend([a, b, c]);
        f
    });

    let rows = vec![
        ("Table I features (9)".to_string(), baseline),
        ("+ searchengine_regular".to_string(), with_regular),
        ("+ term idf (mean, min)".to_string(), with_idf),
        ("+ all rejected candidates".to_string(), with_all),
    ];
    print_table("§IV-A feature selection: rejected candidates", &rows);
    println!(
        "\npaper: the regular-query and idf-based candidates 'were not useful and\n\
         eliminated during feature selection' — the rows above should sit within\n\
         noise of the 9-feature model."
    );
    std::fs::create_dir_all("results").ok();
    write_json("results/feature_selection.json", "feature_selection", &rows).expect("write report");
}
