//! Standalone open-loop load generator CLI.
//!
//! Fires Poisson arrivals at a fixed offered rate against an already
//! running `ctxrank-serve` instance (e.g. the `serve_demo` example) and
//! prints one JSON report line. Latencies are measured from each
//! request's *scheduled* arrival time — no coordinated omission — so a
//! struggling server shows up in the tail, not in a quietly reduced
//! request count. CI uses this as a smoke test against `serve_demo`.
//!
//! ```text
//! openloop ADDR [--rps N] [--duration-ms N] [--connections N]
//!               [--distinct N] [--exponent F] [--slo-ms N] [--seed N]
//! ```
//!
//! Bodies are self-generated synthetic page fragments (no experiment
//! build needed), so the binary starts instantly; `--distinct` controls
//! the size of the query universe the Zipf mix ranges over, which is
//! what sets the achievable cache hit rate on the server side.

use ctxrank_bench::{run_open_loop, OpenLoopConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: openloop ADDR [--rps N] [--duration-ms N] [--connections N] \
         [--distinct N] [--exponent F] [--slo-ms N] [--seed N]"
    );
    std::process::exit(2);
}

/// `--distinct` synthetic `/rank` bodies: ~300-byte texts with a small
/// candidate list each, distinct per index so the server cache sees
/// exactly this many keys.
fn synthetic_bodies(distinct: usize) -> Vec<String> {
    (0..distinct)
        .map(|i| {
            let filler = "solar observatory monitoring continues amid heightened activity; ";
            let mut text = format!("sunspot activity report number {i}: ");
            while text.len() < 300 {
                text.push_str(filler);
            }
            text.truncate(300);
            serde_json::to_string(&serde_json::json!({
                "text": text,
                "candidates": serde_json::Value::Seq(vec![
                    serde_json::Value::Str("solar flares".to_string()),
                    serde_json::Value::Str("radiation storm".to_string()),
                ]),
            }))
            .expect("render body")
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<SocketAddr> = None;
    let mut rps = 100.0f64;
    let mut duration_ms = 2000u64;
    let mut connections = 16usize;
    let mut distinct = 64usize;
    let mut exponent = 1.2f64;
    let mut slo_ms = 50u64;
    let mut seed = 0x09E7_100Bu64;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--rps" => rps = value("--rps").parse().unwrap_or_else(|_| usage()),
            "--duration-ms" => {
                duration_ms = value("--duration-ms").parse().unwrap_or_else(|_| usage())
            }
            "--connections" => {
                connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--distinct" => distinct = value("--distinct").parse().unwrap_or_else(|_| usage()),
            "--exponent" => exponent = value("--exponent").parse().unwrap_or_else(|_| usage()),
            "--slo-ms" => slo_ms = value("--slo-ms").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other if addr.is_none() && !other.starts_with("--") => {
                addr = Some(other.parse().unwrap_or_else(|e| {
                    eprintln!("bad address {other}: {e}");
                    usage()
                }))
            }
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    let Some(addr) = addr else { usage() };

    let config = OpenLoopConfig {
        offered_rps: rps,
        duration: Duration::from_millis(duration_ms),
        connections,
        zipf_exponent: exponent,
        seed,
        slo_p99: Duration::from_millis(slo_ms),
    };
    let bodies = synthetic_bodies(distinct.max(1));
    let report = run_open_loop(addr, &bodies, &config);
    let mut row = report.to_json();
    if let serde_json::Value::Map(entries) = &mut row {
        entries.push((
            "meets_slo".to_string(),
            serde_json::Value::Bool(report.meets_slo()),
        ));
    }
    println!("{}", serde_json::to_string(&row).expect("render report"));
    if report.ok == 0 {
        eprintln!("open loop got zero successful responses");
        std::process::exit(1);
    }
}
