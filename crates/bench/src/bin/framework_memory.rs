//! §VI memory accounting.
//!
//! The paper budgets 18 MB of packed interestingness vectors and ~400 MB
//! of relevance keywords for one million concepts, with TIDs in 22 bits
//! and scores in 10 bits, and suggests Golomb coding for a further
//! reduction. This binary measures the actual stores built from the
//! synthetic world and extrapolates to one million concepts.

use ctxrank_bench::{build_runtime_ranker, Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;
use ctxrank_framework::{CompressedRelevanceStore, GlobalTidTable, MemoryReport};

fn main() {
    let exp = Experiment::build(ExperimentConfig::default());
    let ranker = build_runtime_ranker(&exp);
    let report = MemoryReport::measure(ranker.interest(), ranker.relevance(), ranker.tids());

    // The actual Golomb-backed store, not just the projection.
    let snippets =
        &exp.relevance_models[ctxrank_bench::dataset::resource_index(MiningResource::Snippets)];
    let mut tids2 = GlobalTidTable::new();
    let compressed = CompressedRelevanceStore::build(
        exp.interest_raw
            .keys()
            .filter_map(|s| snippets.terms(s).map(|rt| (s.as_str(), rt))),
        &mut tids2,
    );

    println!("=== §VI framework memory accounting ===");
    println!("concepts stored:              {}", report.num_concepts);
    println!("terms in Global TID Table:    {}", report.num_terms);
    println!(
        "interestingness store:        {} bytes ({:.1} B/concept; paper: 18)",
        report.interest_bytes,
        report.interest_bytes_per_concept()
    );
    println!(
        "relevance store:              {} bytes ({:.1} B/concept; paper: <= 400)",
        report.relevance_bytes,
        report.relevance_bytes_per_concept()
    );
    println!(
        "after Golomb coding the TIDs: {} bytes ({:.1}% saved, projected)",
        report.golomb_relevance_bytes,
        report.golomb_saving() * 100.0
    );
    println!(
        "CompressedRelevanceStore:     {} bytes ({:.1}% saved, measured end-to-end)",
        compressed.compressed_bytes(),
        (1.0 - compressed.compressed_bytes() as f64 / report.relevance_bytes as f64) * 100.0
    );
    println!(
        "extrapolated to 1M concepts:  {:.1} MB (paper: ~418 MB before compression)",
        report.extrapolate_bytes(1_000_000) as f64 / 1e6
    );

    std::fs::create_dir_all("results").ok();
    let json = serde_json::json!({
        "experiment": "framework_memory",
        "num_concepts": report.num_concepts,
        "num_terms": report.num_terms,
        "interest_bytes_per_concept": report.interest_bytes_per_concept(),
        "relevance_bytes_per_concept": report.relevance_bytes_per_concept(),
        "golomb_saving": report.golomb_saving(),
        "compressed_store_bytes": compressed.compressed_bytes(),
        "extrapolated_1m_bytes": report.extrapolate_bytes(1_000_000),
    });
    std::fs::write(
        "results/framework_memory.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .ok();
}
