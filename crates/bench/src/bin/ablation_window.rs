//! Ablation: the position-bias window (2500 chars / 500 overlap).
//!
//! §V-A.1 partitions documents into overlapping windows so "the first
//! entities in a document may get an unfair share of user attention"
//! does not contaminate the preference pairs. The sweep varies the
//! window size (overlap fixed at 20%) and reports the combined model's
//! WER.

use ctxrank_bench::rankers::{evaluate_best_kernel, FeatureSet};
use ctxrank_bench::report::{print_table, write_json};
use ctxrank_bench::{Experiment, ExperimentConfig};
use ctxrank_features::MiningResource;

fn main() {
    let mut rows = Vec::new();
    for size in [1000usize, 2500, 5000, 20000] {
        let config = ExperimentConfig {
            window_size: size,
            window_overlap: size / 5,
            ..ExperimentConfig::default()
        };
        let exp = Experiment::build(config);
        let label = if size >= 20000 {
            format!("window {size} (no split in practice)")
        } else {
            format!("window {size} / overlap {}", size / 5)
        };
        rows.push((
            label,
            evaluate_best_kernel(
                &exp.dataset,
                FeatureSet::InterestPlusRelevance(MiningResource::Snippets),
                5,
                7,
                true,
            ),
        ));
    }
    print_table("Ablation: window size (combined model)", &rows);
    std::fs::create_dir_all("results").ok();
    write_json("results/ablation_window.json", "ablation_window", &rows).expect("write report");
}
