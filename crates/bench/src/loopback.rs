//! Shared driver for the server loopback benchmark: `perf_report` and
//! the criterion `throughput` bench both measure the same workload —
//! micro-batched keep-alive `/rank` traffic versus one request per
//! connection at batch size 1 — against a real `ctxrank-serve` server
//! on an ephemeral loopback port.

use crate::Experiment;
use std::net::SocketAddr;

/// How many client threads drive the server. The interesting regime is
/// more concurrent clients than cores: that is what fills micro-batches.
pub const LOOPBACK_CLIENTS: usize = 16;
/// Requests issued per client thread per measured pass. High enough
/// that the per-pass thread spawns are amortized to noise.
pub const LOOPBACK_REQUESTS_PER_CLIENT: usize = 64;
/// Serving requests are page-fragment sized, not full 2.5 KB documents.
pub const LOOPBACK_DOC_BYTES: usize = 300;

/// Pre-rendered `/rank` request bodies (JSON) plus the number of raw
/// document-text bytes they carry (the throughput denominator).
pub struct LoopbackWorkload {
    pub bodies: Vec<String>,
    pub doc_bytes: usize,
}

/// One JSON body per request in a full pass, cycled from the synthetic
/// news stream with ~6 candidate surfaces each.
pub fn loopback_workload(exp: &Experiment) -> LoopbackWorkload {
    let surfaces: Vec<&String> = {
        let mut s: Vec<&String> = exp.interest_raw.keys().collect();
        s.sort_unstable();
        s
    };
    let total = LOOPBACK_CLIENTS * LOOPBACK_REQUESTS_PER_CLIENT;
    let mut bodies = Vec::with_capacity(total);
    let mut doc_bytes = 0;
    for i in 0..total {
        let story = &exp.world.news[i % exp.world.news.len()];
        let mut text = story.text.clone();
        let mut cut = LOOPBACK_DOC_BYTES.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
        doc_bytes += text.len();
        let candidates: Vec<serde_json::Value> = (0..6)
            .map(|j| serde_json::Value::Str(surfaces[(i * 7 + j * 13) % surfaces.len()].clone()))
            .collect();
        let body = serde_json::json!({
            "text": text,
            "candidates": serde_json::Value::Seq(candidates),
        });
        bodies.push(serde_json::to_string(&body).expect("render body"));
    }
    LoopbackWorkload { bodies, doc_bytes }
}

/// Drive one full pass: `LOOPBACK_CLIENTS` threads each send their
/// slice of `bodies`. With `keep_alive` each client reuses one
/// connection; otherwise every request opens a fresh connection (the
/// baseline). Panics on any non-200, so a shedding or torn server
/// fails the benchmark rather than skewing it.
pub fn drive_loopback_pass(addr: SocketAddr, bodies: &[String], keep_alive: bool) -> usize {
    std::thread::scope(|scope| {
        let threads: Vec<_> = bodies
            .chunks(bodies.len().div_ceil(LOOPBACK_CLIENTS))
            .map(|chunk| {
                scope.spawn(move || {
                    let mut results = 0usize;
                    let mut conn = if keep_alive {
                        Some(ctxrank_serve::client::Conn::connect(addr).expect("connect"))
                    } else {
                        None
                    };
                    for body in chunk {
                        let (status, _, resp) = match conn.as_mut() {
                            Some(c) => c.request("POST", "/rank", Some(body)),
                            None => {
                                ctxrank_serve::client::one_shot(addr, "POST", "/rank", Some(body))
                            }
                        }
                        .expect("rank request");
                        assert_eq!(status, 200, "loopback bench got {status}: {resp}");
                        results += resp.len();
                    }
                    results
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().expect("client")).sum()
    })
}

/// Server configuration for the two measured modes. Both use the same
/// worker count and a queue deep enough that nothing sheds; only the
/// batch size differs.
pub fn loopback_config(batch_max_size: usize) -> ctxrank_serve::ServeConfig {
    ctxrank_serve::ServeConfig {
        workers: LOOPBACK_CLIENTS,
        queue_capacity: 4096,
        batch_max_size,
        batch_max_wait: std::time::Duration::from_micros(50),
        ..ctxrank_serve::ServeConfig::default()
    }
}
