//! Console reporting helpers shared by the experiment binaries.

use crate::rankers::EvalResult;

/// Format a fraction as a percentage with two decimals.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Print a two-column table (technique, weighted error rate) in the
/// paper's layout.
pub fn print_table(title: &str, rows: &[(String, EvalResult)]) {
    println!("\n=== {title} ===");
    println!("{:<42} {:>14}", "Technique", "Weighted ER");
    for (name, r) in rows {
        println!("{:<42} {:>14}", name, fmt_pct(r.weighted_error));
    }
}

/// Print an NDCG figure (one series per technique, k = 1, 2, 3).
pub fn print_ndcg_figure(title: &str, rows: &[(String, EvalResult)]) {
    println!("\n=== {title} ===");
    println!(
        "{:<42} {:>8} {:>8} {:>8}",
        "Technique", "ndcg@1", "ndcg@2", "ndcg@3"
    );
    for (name, r) in rows {
        println!(
            "{:<42} {:>8.3} {:>8.3} {:>8.3}",
            name, r.ndcg[0], r.ndcg[1], r.ndcg[2]
        );
    }
}

/// Write the rows as a JSON report next to the console output so
/// EXPERIMENTS.md can reference machine-readable results.
pub fn write_json(
    path: &str,
    experiment: &str,
    rows: &[(String, EvalResult)],
) -> std::io::Result<()> {
    #[derive(serde::Serialize)]
    struct Row<'a> {
        technique: &'a str,
        weighted_error_rate: f64,
        error_rate: f64,
        ndcg: [f64; 3],
    }
    #[derive(serde::Serialize)]
    struct Report<'a> {
        experiment: &'a str,
        rows: Vec<Row<'a>>,
    }
    let report = Report {
        experiment,
        rows: rows
            .iter()
            .map(|(n, r)| Row {
                technique: n,
                weighted_error_rate: r.weighted_error,
                error_rate: r.error,
                ndcg: r.ndcg,
            })
            .collect(),
    };
    std::fs::write(path, serde_json::to_string_pretty(&report)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.3022), "30.22%");
        assert_eq!(fmt_pct(0.0), "0.00%");
    }

    #[test]
    fn json_report_roundtrips() {
        let rows = vec![(
            "Random".to_string(),
            EvalResult {
                weighted_error: 0.5,
                error: 0.5,
                ndcg: [0.4, 0.5, 0.6],
            },
        )];
        let path = std::env::temp_dir().join("ctxrank_report_test.json");
        write_json(path.to_str().expect("utf8 path"), "test", &rows).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("\"weighted_error_rate\": 0.5"));
        std::fs::remove_file(path).ok();
    }
}
