//! The evaluation dataset: windowed ranking groups with CTR labels.

use ctxrank_eval::CtrBuckets;
use ctxrank_features::MiningResource;
use ctxrank_ltr::KFold;
use ctxrank_synth::ConceptId;

/// Index of a mining resource in the per-item relevance arrays.
pub fn resource_index(r: MiningResource) -> usize {
    match r {
        MiningResource::Snippets => 0,
        MiningResource::Prisma => 1,
        MiningResource::Suggestions => 2,
    }
}

/// One concept instance inside a window group.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    pub surface: String,
    pub concept: ConceptId,
    /// Observed CTR (clicks / story views) — the learning label.
    pub ctr: f64,
    /// The §II-B concept-vector score (production baseline).
    pub baseline_score: f64,
    /// The nine dense interestingness features.
    pub interest: Vec<f64>,
    /// Log-scaled relevance feature per resource
    /// (indexed by [`resource_index`]).
    pub relevance: [f64; 3],
    /// Raw (un-compressed) relevance scores, for tie-breaking.
    pub relevance_raw: [f64; 3],
    /// Fractional position of the annotation in the story.
    pub position_frac: f64,
    /// Ground-truth relevance of the concept to the story (diagnostics
    /// only; never fed to a learner).
    pub gt_relevance: f64,
}

impl Item {
    /// The relevance feature for one resource.
    pub fn relevance_for(&self, r: MiningResource) -> f64 {
        self.relevance[resource_index(r)]
    }

    /// The raw relevance score for one resource.
    pub fn relevance_raw_for(&self, r: MiningResource) -> f64 {
        self.relevance_raw[resource_index(r)]
    }
}

/// One ranking group: the concepts sharing a 2500-character window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowGroup {
    pub story: usize,
    pub window: usize,
    pub items: Vec<Item>,
}

impl WindowGroup {
    /// Does the group contain at least one preference pair?
    pub fn has_pairs(&self) -> bool {
        self.items
            .iter()
            .any(|a| self.items.iter().any(|b| a.ctr > b.ctr))
    }
}

/// The assembled dataset.
#[derive(Debug)]
pub struct Dataset {
    pub groups: Vec<WindowGroup>,
    /// Distinct story ids present (after filtering), sorted.
    pub stories: Vec<usize>,
    /// CTR bucket table over every item (Eq. 6 gains).
    pub buckets: CtrBuckets,
}

impl Dataset {
    /// Build from groups (computes the bucket table).
    pub fn new(groups: Vec<WindowGroup>) -> Self {
        let mut stories: Vec<usize> = groups.iter().map(|g| g.story).collect();
        stories.sort_unstable();
        stories.dedup();
        let buckets = CtrBuckets::new(
            groups
                .iter()
                .flat_map(|g| g.items.iter().map(|i| i.ctr))
                .collect(),
        );
        Self {
            groups,
            stories,
            buckets,
        }
    }

    /// Total items across groups.
    pub fn num_items(&self) -> usize {
        self.groups.iter().map(|g| g.items.len()).sum()
    }

    /// Split group indices into `k` folds *by story* (all windows of a
    /// story stay on the same side, as the paper partitions documents).
    pub fn story_folds(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        let kf = KFold::new(self.stories.len(), k, seed);
        (0..k)
            .map(|f| {
                let test_stories: std::collections::HashSet<usize> = kf
                    .test_indices(f)
                    .iter()
                    .map(|&i| self.stories[i])
                    .collect();
                let mut train = Vec::new();
                let mut test = Vec::new();
                for (g, group) in self.groups.iter().enumerate() {
                    if test_stories.contains(&group.story) {
                        test.push(g);
                    } else {
                        train.push(g);
                    }
                }
                (train, test)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(ctr: f64) -> Item {
        Item {
            surface: "x".into(),
            concept: ConceptId(0),
            ctr,
            baseline_score: 0.0,
            interest: vec![0.0; 9],
            relevance: [0.0; 3],
            relevance_raw: [0.0; 3],
            position_frac: 0.0,
            gt_relevance: 0.0,
        }
    }

    fn group(story: usize, ctrs: &[f64]) -> WindowGroup {
        WindowGroup {
            story,
            window: 0,
            items: ctrs.iter().map(|&c| item(c)).collect(),
        }
    }

    #[test]
    fn buckets_span_items() {
        let ds = Dataset::new(vec![group(0, &[0.1, 0.2]), group(1, &[0.0, 0.3])]);
        assert_eq!(ds.num_items(), 4);
        assert_eq!(ds.buckets.len(), 4);
        assert_eq!(ds.stories, vec![0, 1]);
    }

    #[test]
    fn has_pairs_detects_ties() {
        assert!(group(0, &[0.1, 0.2]).has_pairs());
        assert!(!group(0, &[0.1, 0.1]).has_pairs());
    }

    #[test]
    fn story_folds_keep_stories_together() {
        let groups: Vec<WindowGroup> = (0..10)
            .flat_map(|s| vec![group(s, &[0.1, 0.2]), group(s, &[0.0, 0.3])])
            .collect();
        let ds = Dataset::new(groups);
        for (train, test) in ds.story_folds(5, 7) {
            let train_stories: std::collections::HashSet<usize> =
                train.iter().map(|&g| ds.groups[g].story).collect();
            let test_stories: std::collections::HashSet<usize> =
                test.iter().map(|&g| ds.groups[g].story).collect();
            assert!(train_stories.is_disjoint(&test_stories));
            assert_eq!(train.len() + test.len(), ds.groups.len());
        }
    }

    #[test]
    fn resource_indices_distinct() {
        use std::collections::HashSet;
        let idx: HashSet<usize> = MiningResource::ALL
            .iter()
            .map(|&r| resource_index(r))
            .collect();
        assert_eq!(idx.len(), 3);
    }
}
