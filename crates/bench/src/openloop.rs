//! Open-loop load generator with tail-latency SLOs.
//!
//! The loopback bench ([`crate::loopback`]) is *closed-loop*: each
//! client thread sends its next request only after the previous
//! response arrives, so a slow server slows the offered load and the
//! measured latencies silently forgive every stall — the classic
//! *coordinated omission* trap. Real portal traffic does not wait:
//! arrivals are a Poisson process at whatever rate the world offers.
//!
//! This module drives exactly that: requests are scheduled on a fixed
//! Poisson timeline at `offered_rps` **before** the run starts, each
//! lane fires at its scheduled instants regardless of how the server is
//! doing, and every latency is measured **from the scheduled arrival
//! time**, not from when the lane got around to sending. A stalled
//! server therefore shows up as inflated tail latencies (the truth)
//! instead of reduced throughput (the lie).
//!
//! The query mix is Zipf-skewed over a fixed body pool
//! ([`ctxrank_synth::ZipfQueryMix`]), matching the head-heavy profile
//! the serve-layer result cache is designed for; an exponent of 0
//! degenerates to a uniform (cache-hostile) mix.
//!
//! [`max_sustainable_rps`] climbs a rate ladder and reports the highest
//! offered rate whose p99 still meets the declared SLO — the headline
//! capacity number in `BENCH_throughput.json`'s `server_openloop` rows.

use ctxrank_serve::client::{ClientConfig, Conn};
use ctxrank_synth::ZipfQueryMix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Knobs for one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered arrival rate (requests per second across all lanes).
    pub offered_rps: f64,
    /// How long the arrival schedule runs.
    pub duration: Duration,
    /// Concurrent connection lanes arrivals are dealt onto. Must exceed
    /// `offered_rps × worst-case latency` or the lanes themselves
    /// become the bottleneck (which the report shows honestly as
    /// schedule slip, but is not the server's fault) — yet must NOT
    /// exceed the server's worker pool: a `ctxrank-serve` worker owns a
    /// connection for its whole keep-alive session (DESIGN.md §10.1),
    /// so surplus keep-alive lanes starve until another lane's
    /// connection closes, which reads as a near-keep-alive-timeout
    /// latency spike the server never actually imposed on anyone.
    pub connections: usize,
    /// Zipf exponent of the query mix (0 = uniform).
    pub zipf_exponent: f64,
    /// Seed for both the Poisson schedule and the query mix.
    pub seed: u64,
    /// The p99 service-level objective checked by
    /// [`OpenLoopReport::meets_slo`].
    pub slo_p99: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            offered_rps: 200.0,
            duration: Duration::from_secs(2),
            connections: 16,
            zipf_exponent: 1.2,
            seed: 0x09E7_100B,
            slo_p99: Duration::from_millis(50),
        }
    }
}

/// What one open-loop run observed.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The rate the schedule offered.
    pub offered_rps: f64,
    /// Arrivals in the schedule.
    pub sent: usize,
    /// 200 responses.
    pub ok: usize,
    /// 503 responses (server shed under pressure).
    pub shed: usize,
    /// Transport failures (timeouts, resets); the lane reconnects.
    pub errors: usize,
    /// `ok / wall_clock` — trails `offered_rps` when the server cannot
    /// keep up.
    pub achieved_rps: f64,
    /// Latency percentiles in milliseconds, measured from each
    /// request's *scheduled* arrival (no coordinated omission).
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
    /// The SLO this run was checked against, for the record.
    pub slo_p99_ms: f64,
}

impl OpenLoopReport {
    /// Did this run hold the declared p99 SLO while actually serving
    /// the offered load? Sheds and errors beyond 1% also fail: a server
    /// that "meets p99" by refusing work is not meeting capacity.
    pub fn meets_slo(&self) -> bool {
        self.ok > 0
            && self.p99_ms <= self.slo_p99_ms
            && (self.shed + self.errors) as f64 <= 0.01 * self.sent as f64
    }

    /// The row rendered into `BENCH_throughput.json`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "offered_rps": self.offered_rps,
            "sent": self.sent as u64,
            "ok": self.ok as u64,
            "shed": self.shed as u64,
            "errors": self.errors as u64,
            "achieved_rps": self.achieved_rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "max_ms": self.max_ms,
            "slo_p99_ms": self.slo_p99_ms,
        })
    }
}

/// One lane's pre-dealt schedule: (offset from run start, body index).
type Lane = Vec<(Duration, usize)>;

/// Deal a Poisson arrival schedule at `config.offered_rps` onto
/// `config.connections` lanes, with Zipf-sampled body indices. Built
/// before the clock starts so generation cost never skews arrivals.
fn build_schedule(config: &OpenLoopConfig, bodies: usize) -> Vec<Lane> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut mix = ZipfQueryMix::new(bodies, config.zipf_exponent, config.seed ^ 0x5A1F);
    let mut lanes: Vec<Lane> = vec![Vec::new(); config.connections.max(1)];
    let mut at = 0.0f64;
    let mut i = 0usize;
    loop {
        // Exponential inter-arrival: -ln(1-u)/rate, u ∈ [0, 1).
        let u: f64 = rng.random();
        at += -(1.0 - u).ln() / config.offered_rps;
        if at >= config.duration.as_secs_f64() {
            break;
        }
        let lane = i % lanes.len();
        lanes[lane].push((Duration::from_secs_f64(at), mix.next_index()));
        i += 1;
    }
    lanes
}

/// Sleep coarsely, then spin the final stretch: `thread::sleep` alone
/// overshoots by scheduler quanta, which at thousands of RPS would
/// smear the whole arrival process.
fn wait_until(start: Instant, offset: Duration) {
    let coarse = offset.saturating_sub(Duration::from_micros(200));
    let now = start.elapsed();
    if now < coarse {
        std::thread::sleep(coarse - now);
    }
    while start.elapsed() < offset {
        std::hint::spin_loop();
    }
}

/// Drive one open-loop run against `addr`, drawing request bodies from
/// `bodies` under the configured Zipf mix. Returns the observed report;
/// panics only on setup failures (cannot connect at all), never on
/// server responses — 503s and transport errors are counted, not fatal.
pub fn run_open_loop(
    addr: SocketAddr,
    bodies: &[String],
    config: &OpenLoopConfig,
) -> OpenLoopReport {
    assert!(!bodies.is_empty(), "open loop needs at least one body");
    assert!(config.offered_rps > 0.0, "offered_rps must be positive");
    let lanes = build_schedule(config, bodies.len());
    let sent: usize = lanes.iter().map(Vec::len).sum();
    let client_config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(5),
        ..ClientConfig::default()
    };

    let start = Instant::now();
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut errors = 0usize;
    let mut latencies: Vec<Duration> = Vec::with_capacity(sent);
    std::thread::scope(|scope| {
        let threads: Vec<_> = lanes
            .iter()
            .map(|lane| {
                let client_config = &client_config;
                scope.spawn(move || {
                    let mut conn = Conn::connect_with(addr, client_config).ok();
                    let mut lane_ok = 0usize;
                    let mut lane_shed = 0usize;
                    let mut lane_errors = 0usize;
                    let mut lane_lat = Vec::with_capacity(lane.len());
                    for &(offset, body_idx) in lane {
                        wait_until(start, offset);
                        if conn.is_none() {
                            conn = Conn::connect_with(addr, client_config).ok();
                        }
                        let result = match conn.as_mut() {
                            Some(c) => c.request("POST", "/rank", Some(&bodies[body_idx])),
                            None => {
                                lane_errors += 1;
                                continue;
                            }
                        };
                        // Latency from the SCHEDULED arrival: a lane
                        // running late (server backed up) charges the
                        // backlog to every waiting request, exactly as
                        // a real arrival would experience it.
                        let since_arrival = start.elapsed().saturating_sub(offset);
                        match result {
                            Ok((200, _, _)) => {
                                lane_ok += 1;
                                lane_lat.push(since_arrival);
                            }
                            Ok((503, _, _)) => lane_shed += 1,
                            Ok(_) => lane_errors += 1,
                            Err(_) => {
                                // Broken transport: drop the connection
                                // and rebuild on the next arrival.
                                lane_errors += 1;
                                conn = None;
                            }
                        }
                    }
                    (lane_ok, lane_shed, lane_errors, lane_lat)
                })
            })
            .collect();
        for t in threads {
            let (lo, ls, le, ll) = t.join().expect("open-loop lane");
            ok += lo;
            shed += ls;
            errors += le;
            latencies.extend(ll);
        }
    });
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    latencies.sort_unstable();
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx].as_secs_f64() * 1e3
    };
    OpenLoopReport {
        offered_rps: config.offered_rps,
        sent,
        ok,
        shed,
        errors,
        achieved_rps: ok as f64 / wall,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        max_ms: latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
        slo_p99_ms: config.slo_p99.as_secs_f64() * 1e3,
    }
}

/// Climb `ladder` (ascending offered rates), running the open loop at
/// each rung until the SLO first fails; returns the last sustainable
/// rate (0.0 if even the first rung fails) and every report taken.
pub fn max_sustainable_rps(
    addr: SocketAddr,
    bodies: &[String],
    base: &OpenLoopConfig,
    ladder: &[f64],
) -> (f64, Vec<OpenLoopReport>) {
    let mut sustained = 0.0f64;
    let mut reports = Vec::new();
    for &rate in ladder {
        let config = OpenLoopConfig {
            offered_rps: rate,
            ..base.clone()
        };
        let report = run_open_loop(addr, bodies, &config);
        let passed = report.meets_slo();
        reports.push(report);
        if !passed {
            break;
        }
        sustained = rate;
    }
    (sustained, reports)
}

/// Open-loop request documents are full §VI-sized stories (~2.5 KB),
/// not the loopback bench's 300-byte page fragments: the cache's value
/// is the ranking work a hit *skips*, and that has to cost something
/// for the cached/uncached comparison to measure it.
pub const OPENLOOP_DOC_BYTES: usize = 2500;

/// A pool of `distinct` pre-rendered `/rank` bodies drawn from the
/// experiment's synthetic news stream — the fixed query universe the
/// Zipf mix ranges over. Paper-shaped documents
/// ([`OPENLOOP_DOC_BYTES`]) with 6 candidate surfaces each.
pub fn openloop_bodies(exp: &crate::Experiment, distinct: usize) -> Vec<String> {
    let surfaces: Vec<&String> = {
        let mut s: Vec<&String> = exp.interest_raw.keys().collect();
        s.sort_unstable();
        s
    };
    (0..distinct)
        .map(|i| {
            let story = &exp.world.news[i % exp.world.news.len()];
            let mut text = story.text.clone();
            let mut cut = OPENLOOP_DOC_BYTES.min(text.len());
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
            // Distinguish bodies that cycle onto the same story so the
            // cache sees exactly `distinct` keys.
            text.push_str(&format!(" [variant {i}]"));
            let candidates: Vec<serde_json::Value> = (0..6)
                .map(|j| {
                    serde_json::Value::Str(surfaces[(i * 7 + j * 13) % surfaces.len()].clone())
                })
                .collect();
            serde_json::to_string(&serde_json::json!({
                "text": text,
                "candidates": serde_json::Value::Seq(candidates),
            }))
            .expect("render body")
        })
        .collect()
}

/// Server configuration for the open-loop benchmark: same worker pool
/// and queue depth as the loopback bench, with the result cache sized
/// by the caller (0 = disabled — the uncached baseline).
pub fn openloop_server_config(cache_capacity_bytes: usize) -> ctxrank_serve::ServeConfig {
    ctxrank_serve::ServeConfig {
        workers: 16,
        queue_capacity: 4096,
        batch_max_size: 16,
        batch_max_wait: Duration::from_micros(50),
        cache_capacity_bytes,
        ..ctxrank_serve::ServeConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_respects_rate_and_duration() {
        let config = OpenLoopConfig {
            offered_rps: 1000.0,
            duration: Duration::from_secs(4),
            connections: 8,
            zipf_exponent: 1.2,
            seed: 7,
            slo_p99: Duration::from_millis(50),
        };
        let lanes = build_schedule(&config, 64);
        assert_eq!(lanes.len(), 8);
        let total: usize = lanes.iter().map(Vec::len).sum();
        // Poisson(4000): 5 sigma ≈ 316.
        assert!(
            (total as f64 - 4000.0).abs() < 350.0,
            "expected ~4000 arrivals, got {total}"
        );
        for lane in &lanes {
            for w in lane.windows(2) {
                assert!(w[0].0 <= w[1].0, "lane schedule not sorted");
            }
            for &(at, body) in lane {
                assert!(at < config.duration);
                assert!(body < 64);
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_in_seed() {
        let config = OpenLoopConfig {
            offered_rps: 500.0,
            duration: Duration::from_secs(1),
            connections: 4,
            zipf_exponent: 1.0,
            seed: 42,
            slo_p99: Duration::from_millis(50),
        };
        let a = build_schedule(&config, 16);
        let b = build_schedule(&config, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_and_slo_logic() {
        let report = OpenLoopReport {
            offered_rps: 100.0,
            sent: 100,
            ok: 100,
            shed: 0,
            errors: 0,
            achieved_rps: 99.0,
            p50_ms: 1.0,
            p99_ms: 9.0,
            p999_ms: 12.0,
            max_ms: 15.0,
            slo_p99_ms: 10.0,
        };
        assert!(report.meets_slo());
        let failing = OpenLoopReport {
            p99_ms: 11.0,
            ..report.clone()
        };
        assert!(!failing.meets_slo());
        let shedding = OpenLoopReport {
            shed: 2,
            ..report.clone()
        };
        assert!(!shedding.meets_slo(), "2% shed must fail the SLO");
    }
}
