//! Assembling the §VI production framework from an [`Experiment`].
//!
//! The offline pipeline ends in two stages: [`TrainStage`] fits the
//! deployed combined linear model on the full click dataset, and
//! [`PublishStage`] freezes the packed stores plus the model into an
//! immutable [`Snapshot`] — the unit the serving layer loads, persists
//! and hot-swaps.

use crate::experiment::Experiment;
use crate::stages::{PublishStage, TrainStage};
use ctxrank_framework::{RuntimeRanker, Snapshot, SnapshotProjector};
use std::sync::Arc;

/// Train the combined linear model on the full click dataset and freeze
/// the packed stores into an immutable [`Snapshot`] — the §VI
/// production path.
pub fn build_snapshot(exp: &Experiment) -> Arc<Snapshot> {
    let trained = TrainStage::run(&exp.dataset);
    PublishStage::run(&exp.interest_raw, &exp.relevance_models, trained)
}

/// [`build_snapshot`], also returning the live [`SnapshotProjector`] so
/// the caller can fold freshly sealed click segments into incremental
/// delta publishes against the bootstrapped snapshot.
pub fn build_projector(exp: &Experiment) -> (SnapshotProjector, Arc<Snapshot>) {
    let trained = TrainStage::run(&exp.dataset);
    PublishStage::run_bootstrap(&exp.interest_raw, &exp.relevance_models, trained)
}

/// [`build_snapshot`] wrapped in a ready-to-serve [`RuntimeRanker`]
/// view.
pub fn build_runtime_ranker(exp: &Experiment) -> RuntimeRanker {
    RuntimeRanker::from_snapshot(build_snapshot(exp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;

    #[test]
    fn runtime_ranker_assembles_and_ranks() {
        let exp = Experiment::build(ExperimentConfig::small(11));
        let ranker = build_runtime_ranker(&exp);
        // Rank the entities of the first dataset story through the
        // production path.
        let g = &exp.dataset.groups[0];
        let story = &exp.world.news[g.story];
        let candidates: Vec<String> = g.items.iter().map(|i| i.surface.clone()).collect();
        let ranked = ranker.rank(&story.text, &candidates);
        assert_eq!(ranked.len(), candidates.len());
        // Scores are finite and ordered.
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert!(w[0].score.is_finite());
        }
    }

    #[test]
    fn packed_path_agrees_with_reference_ordering() {
        // The packed ranker quantizes features; its induced ordering
        // should still broadly agree with observed CTR more often than
        // chance on top-vs-bottom pairs.
        let exp = Experiment::build(ExperimentConfig::small(12));
        let ranker = build_runtime_ranker(&exp);
        let mut agree = 0usize;
        let mut total = 0usize;
        for g in exp.dataset.groups.iter().take(60) {
            let story = &exp.world.news[g.story];
            let candidates: Vec<String> = g.items.iter().map(|i| i.surface.clone()).collect();
            let ranked = ranker.rank(&story.text, &candidates);
            let best = &ranked[0].surface;
            let max_ctr_item = g
                .items
                .iter()
                .max_by(|a, b| a.ctr.partial_cmp(&b.ctr).expect("finite"))
                .expect("nonempty");
            total += 1;
            if *best == max_ctr_item.surface {
                agree += 1;
            }
        }
        // Far better than the ~1/n chance level.
        assert!(agree * 3 > total, "top-1 agreement {agree}/{total} too low");
    }

    #[test]
    fn snapshot_and_ranker_share_the_artifact() {
        let exp = Experiment::build(ExperimentConfig::small(11));
        let snap = build_snapshot(&exp);
        let ranker = RuntimeRanker::from_snapshot(snap.clone());
        assert_eq!(ranker.epoch(), snap.epoch());
        assert!(Arc::ptr_eq(ranker.snapshot(), &snap));
    }
}
