//! Assembling the §VI production framework from an [`Experiment`].

use crate::experiment::Experiment;
use crate::rankers::FeatureSet;
use ctxrank_features::MiningResource;
use ctxrank_framework::{GlobalTidTable, PackedInterestStore, PackedRelevanceStore, RuntimeRanker};
use ctxrank_ltr::{train, RankGroup, SvmConfig};

/// Train the combined linear model on the full click dataset and freeze
/// the packed stores into a [`RuntimeRanker`] — the §VI production path.
pub fn build_runtime_ranker(exp: &Experiment) -> RuntimeRanker {
    // Packed interestingness vectors (2 bytes/field).
    let concepts: Vec<(String, ctxrank_features::InterestFeatures)> = exp
        .interest_raw
        .iter()
        .map(|(s, f)| (s.clone(), *f))
        .collect();
    let interest = PackedInterestStore::build(&concepts);

    // Packed relevance store over the snippet-mined keywords (the
    // resource the production system uses, §V-A.6).
    let mut tids = GlobalTidTable::new();
    let snippets = &exp.relevance_models[crate::dataset::resource_index(MiningResource::Snippets)];
    let keyword_sets: Vec<(&str, &ctxrank_features::RelevantTerms)> = exp
        .interest_raw
        .keys()
        .filter_map(|s| snippets.terms(s).map(|rt| (s.as_str(), rt)))
        .collect();
    let relevance = PackedRelevanceStore::build(keyword_sets, &mut tids);

    // The deployed model: linear ranking SVM on all ten features.
    let feature_set = FeatureSet::InterestPlusRelevance(MiningResource::Snippets);
    let groups: Vec<RankGroup> = exp
        .dataset
        .groups
        .iter()
        .map(|g| {
            RankGroup::from_pairs(
                g.items
                    .iter()
                    .map(|item| (feature_set.features(item), item.ctr)),
            )
        })
        .filter(|g| {
            g.instances
                .iter()
                .any(|a| g.instances.iter().any(|b| a.label > b.label))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());

    RuntimeRanker::new(interest, relevance, tids, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;

    #[test]
    fn runtime_ranker_assembles_and_ranks() {
        let exp = Experiment::build(ExperimentConfig::small(11));
        let ranker = build_runtime_ranker(&exp);
        // Rank the entities of the first dataset story through the
        // production path.
        let g = &exp.dataset.groups[0];
        let story = &exp.world.news[g.story];
        let candidates: Vec<String> = g.items.iter().map(|i| i.surface.clone()).collect();
        let ranked = ranker.rank(&story.text, &candidates);
        assert_eq!(ranked.len(), candidates.len());
        // Scores are finite and ordered.
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert!(w[0].score.is_finite());
        }
    }

    #[test]
    fn packed_path_agrees_with_reference_ordering() {
        // The packed ranker quantizes features; its induced ordering
        // should still broadly agree with observed CTR more often than
        // chance on top-vs-bottom pairs.
        let exp = Experiment::build(ExperimentConfig::small(12));
        let ranker = build_runtime_ranker(&exp);
        let mut agree = 0usize;
        let mut total = 0usize;
        for g in exp.dataset.groups.iter().take(60) {
            let story = &exp.world.news[g.story];
            let candidates: Vec<String> = g.items.iter().map(|i| i.surface.clone()).collect();
            let ranked = ranker.rank(&story.text, &candidates);
            let best = &ranked[0].surface;
            let max_ctr_item = g
                .items
                .iter()
                .max_by(|a, b| a.ctr.partial_cmp(&b.ctr).expect("finite"))
                .expect("nonempty");
            total += 1;
            if *best == max_ctr_item.surface {
                agree += 1;
            }
        }
        // Far better than the ~1/n chance level.
        assert!(agree * 3 > total, "top-1 agreement {agree}/{total} too low");
    }
}
