//! Typed build stages for the offline pipeline.
//!
//! [`crate::Experiment::build`] used to be one monolithic function; it is
//! now a composition of five stages, each consuming and producing named
//! artifact structs:
//!
//! ```text
//! WorldStage ──▶ MiningStage ──▶ FeatureStage ──▶ TrainStage ──▶ PublishStage
//!  WorldArtifact  MiningArtifact  FeatureArtifact  TrainArtifact  Arc<Snapshot>
//! ```
//!
//! * [`WorldStage`] generates the synthetic world and derives the shared
//!   knowledge sources (unit dictionary, entity dictionary, the
//!   surface → concept candidate index).
//! * [`MiningStage`] annotates every story through the Shortcuts
//!   pipeline, simulates clicks, applies the §V-A.1 cleaning rules, and
//!   **emits the surviving click reports as events into an append-only
//!   [`SegmentStore`]** — the hand-off between mining and features is
//!   the event log, not a monolithic click artifact.
//! * [`FeatureStage`] replays the sealed segments to recover per-story
//!   click outcomes, extracts the Table I interestingness features,
//!   mines the three relevance models, and assembles the windowed,
//!   CTR-labelled dataset.
//! * [`TrainStage`] trains the deployed combined linear model on the
//!   full dataset.
//! * [`PublishStage`] packs the stores and freezes everything into an
//!   immutable [`ctxrank_framework::Snapshot`] — implemented as the
//!   *bootstrap case* of the [`SnapshotProjector`], so a full build and
//!   an incremental delta publish are the same projection applied to
//!   different prefixes of the log.
//!
//! The stages preserve the monolith's exact computation order, so
//! `Experiment::build` / `build_serial` remain bit-identical to the
//! pre-decomposition pipeline at every thread count: parallel loops
//! still collect by input index and every cross-surface pass walks
//! surfaces in sorted order.

use crate::dataset::{resource_index, Dataset, Item, WindowGroup};
use crate::experiment::{build_dictionary, DatasetStats, ExperimentConfig};
use crate::rankers::FeatureSet;
use ctxrank_features::{
    FeatureExtractor, InterestFeatures, MiningResource, RelevanceModel, RelevanceModelBuilder,
};
use ctxrank_framework::{
    FrozenParts, GlobalTidTable, PackedRelevanceStore, Snapshot, SnapshotProjector,
};
use ctxrank_ltr::{train, RankGroup, RankModel, SvmConfig};
use ctxrank_querylog::{extract_units, Event, SegmentConfig, SegmentStore, UnitDictionary};
use ctxrank_shortcuts::{EntityDictionary, Pipeline, PipelineConfig};
use ctxrank_synth::news::ground_truth_relevance;
use ctxrank_synth::{clicks::simulate_story, ConceptId, SynthWorld};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One entity detection inside a story, as mined from the annotation
/// pipeline (first occurrence of each surface only).
#[derive(Debug, Clone)]
pub struct EntityMention {
    pub surface: String,
    pub concept: ConceptId,
    /// Ground-truth relevance of the disambiguated concept to the story.
    pub gt_relevance: f64,
    /// Byte offset of the first occurrence (window membership test).
    pub byte_offset: usize,
    /// Fractional position in the document (§V-A.1 position bias).
    pub position_frac: f64,
    /// Baseline concept-vector score (§II-B).
    pub baseline_score: f64,
}

/// One annotated story, ready for click simulation.
#[derive(Debug, Clone)]
pub struct AnnotatedStory {
    pub story: usize,
    /// Normalized text as produced by the pipeline.
    pub text: String,
    pub entities: Vec<EntityMention>,
}

/// Product of [`WorldStage`]: the synthetic world plus the derived
/// knowledge sources every later stage reads.
pub struct WorldArtifact {
    pub world: SynthWorld,
    pub units: UnitDictionary,
    pub dictionary: EntityDictionary,
    /// Surface -> candidate concept ids (ambiguous surfaces have > 1).
    pub by_surface: HashMap<String, Vec<ConceptId>>,
}

/// Product of [`MiningStage`]: the annotated stories plus the sealed
/// click-event log. Click outcomes travel as [`Event::Click`] records in
/// `store` — downstream stages replay the log instead of receiving a
/// monolithic click artifact, so the same code path serves both the
/// offline bootstrap and incremental delta ingestion.
pub struct MiningArtifact {
    /// Stories surviving the §V-A.1 filter, in story order.
    pub stories: Vec<AnnotatedStory>,
    /// Distinct surfaces across the kept stories, sorted so downstream
    /// passes walk them in a reproducible order.
    pub surfaces: Vec<String>,
    /// The event log: one `Event::Click` per (story, entity), appended in
    /// story order and sealed.
    pub store: SegmentStore,
}

/// Product of [`FeatureStage`]: features, relevance models, and the
/// windowed dataset.
pub struct FeatureArtifact {
    /// Raw (unscaled) Table I features per dataset surface.
    pub interest_raw: HashMap<String, InterestFeatures>,
    /// Relevance models indexed by [`resource_index`].
    pub relevance_models: [RelevanceModel; 3],
    pub dataset: Dataset,
    pub stats: DatasetStats,
}

/// Product of [`TrainStage`]: the deployed combined linear model.
pub struct TrainArtifact {
    pub model: RankModel,
}

/// Generates the synthetic world and its derived knowledge sources.
pub struct WorldStage;

impl WorldStage {
    pub fn run(config: &ExperimentConfig) -> WorldArtifact {
        let world = SynthWorld::generate(config.world.clone());
        let units = extract_units(&world.query_log, &config.units);
        let dictionary = build_dictionary(&world);
        let mut by_surface: HashMap<String, Vec<ConceptId>> = HashMap::new();
        for c in world.universe.all() {
            by_surface.entry(c.surface()).or_default().push(c.id);
        }
        WorldArtifact {
            world,
            units,
            dictionary,
            by_surface,
        }
    }
}

/// Annotates stories, simulates clicks, applies the §V-A.1 cleaning.
pub struct MiningStage;

impl MiningStage {
    pub fn run(config: &ExperimentConfig, world: &WorldArtifact, threads: usize) -> MiningArtifact {
        // Annotate every story with the Shortcuts pipeline (scoped so the
        // pipeline's borrows end before the artifact is returned).
        let pipeline = Pipeline::new(
            &world.dictionary,
            &world.units,
            |t| world.world.corpus.idf(t),
            PipelineConfig::with_multiterm_bonus(config.multiterm_bonus),
        );
        let annotated: Vec<AnnotatedStory> =
            ctxrank_parallel::par_map(threads, &world.world.news, |story| {
                let doc = pipeline.process(&story.text);
                let mut seen: HashSet<&str> = HashSet::new();
                let mut entities = Vec::new();
                for a in doc.rankable() {
                    if !seen.insert(a.surface.as_str()) {
                        continue; // first occurrence only, as the click report aggregates
                    }
                    let Some(cands) = world.by_surface.get(&a.surface) else {
                        continue; // outside the supported concept set
                    };
                    // Ambiguity: prefer the sense matching the story topic.
                    let cid = *cands
                        .iter()
                        .find(|&&c| world.world.universe.get(c).topic == Some(story.topic))
                        .or_else(|| {
                            cands.iter().find(|&&c| {
                                story.secondary_topic.is_some_and(|(st, _)| {
                                    world.world.universe.get(c).topic == Some(st)
                                })
                            })
                        })
                        .unwrap_or(&cands[0]);
                    let gt = ground_truth_relevance(
                        world.world.universe.get(cid),
                        story.topic,
                        story.center,
                        story.secondary_topic,
                    );
                    entities.push(EntityMention {
                        surface: a.surface.clone(),
                        concept: cid,
                        gt_relevance: gt,
                        byte_offset: a.span.start,
                        position_frac: a.position_frac,
                        baseline_score: a.score,
                    });
                }
                AnnotatedStory {
                    story: story.id,
                    text: doc.text,
                    entities,
                }
            });
        drop(pipeline);

        // Click simulation + the §V-A.1 cleaning rules. Surviving click
        // reports are emitted into the event log: one `Event::Click` per
        // (story, entity), in mention order, so replay reconstructs every
        // per-story click report exactly.
        let mut store = SegmentStore::in_memory(SegmentConfig::default());
        let mut stories: Vec<AnnotatedStory> = Vec::new();
        for sd in annotated {
            if sd.entities.len() < 2 {
                continue;
            }
            let mentions: Vec<(ConceptId, f64, f64)> = sd
                .entities
                .iter()
                .map(|e| (e.concept, e.gt_relevance, e.position_frac))
                .collect();
            let clicks = simulate_story(
                config.seed,
                sd.story,
                &world.world.universe,
                &mentions,
                &config.clicks,
            );
            if clicks.passes_paper_filter() {
                for (e, r) in sd.entities.iter().zip(&clicks.records) {
                    store
                        .append(&Event::Click {
                            story: sd.story as u64,
                            surface: e.surface.clone(),
                            views: clicks.views,
                            clicks: r.clicks,
                        })
                        .expect("in-memory event log accepts appends");
                }
                stories.push(sd);
            }
        }
        store.seal().expect("in-memory event log seals");

        // Sorted so every downstream pass (feature extraction, relevance
        // mining) walks surfaces in a reproducible order rather than
        // whatever the dedup set happens to hash to.
        let surfaces: Vec<String> = {
            let distinct: HashSet<&str> = stories
                .iter()
                .flat_map(|sd| sd.entities.iter().map(|e| e.surface.as_str()))
                .collect();
            let mut surfaces: Vec<String> = distinct.into_iter().map(str::to_string).collect();
            surfaces.sort_unstable();
            surfaces
        };

        MiningArtifact {
            stories,
            surfaces,
            store,
        }
    }
}

/// Extracts interestingness features, mines the relevance models, and
/// assembles the windowed dataset.
pub struct FeatureStage;

/// One story's replayed click outcome: the annotated story, its view
/// count, and the (surface, clicks) records in log order.
type StoryClickInput<'a> = (&'a AnnotatedStory, u64, Vec<(String, u64)>);

impl FeatureStage {
    pub fn run(
        config: &ExperimentConfig,
        world: &WorldArtifact,
        mining: &MiningArtifact,
        threads: usize,
    ) -> FeatureArtifact {
        // Interestingness features, one per distinct surface.
        let extractor = FeatureExtractor::new(
            &world.world.query_log,
            &world.units,
            &world.world.corpus,
            |terms: &[String]| {
                world
                    .by_surface
                    .get(&terms.join(" "))
                    .and_then(|ids| ids.first())
                    .map_or(0, |&id| world.world.encyclopedia.word_count(id))
            },
            |terms: &[String]| {
                world
                    .by_surface
                    .get(&terms.join(" "))
                    .and_then(|ids| ids.first())
                    .and_then(|&id| world.world.universe.get(id).entity_type)
                    .map_or(0, |(hlt, _)| hlt.code())
            },
        );
        let per_surface_feats: Vec<InterestFeatures> =
            ctxrank_parallel::par_map(threads, &mining.surfaces, |s| {
                let terms: Vec<String> = s.split(' ').map(str::to_string).collect();
                extractor.interestingness(&terms)
            });
        let mut interest_cache: HashMap<String, Vec<f64>> = HashMap::new();
        let mut interest_raw: HashMap<String, InterestFeatures> = HashMap::new();
        for (s, feats) in mining.surfaces.iter().zip(per_surface_feats) {
            interest_cache.insert(s.clone(), feats.to_dense());
            interest_raw.insert(s.clone(), feats);
        }
        drop(extractor);

        // Relevance models for the three resources over the dataset's
        // concepts.
        let mut builder = RelevanceModelBuilder::new(&world.world.corpus, &world.world.query_log);
        builder.m = config.relevance_m;
        builder.min_idf = 3.2;
        builder.min_suggestion_freq = config.min_suggestion_freq;
        builder.weighting = config.keyword_weighting;
        let concept_term_lists: Vec<Vec<String>> = mining
            .surfaces
            .iter()
            .map(|s| s.split(' ').map(str::to_string).collect())
            .collect();
        // The three resources mine independently from the shared
        // (immutable) builder; run them as one job each.
        let mut models: Vec<RelevanceModel> = {
            let builder = &builder;
            let lists = &concept_term_lists;
            ctxrank_parallel::join_all(
                threads,
                vec![
                    Box::new(|| builder.build(lists.clone(), MiningResource::Snippets)),
                    Box::new(|| builder.build(lists.clone(), MiningResource::Prisma)),
                    Box::new(|| builder.build(lists.clone(), MiningResource::Suggestions)),
                ],
            )
        };
        // Order the array by resource_index.
        models.sort_by_key(|m| resource_index(m.resource));
        let relevance_models: [RelevanceModel; 3] = models
            .try_into()
            .unwrap_or_else(|_| unreachable!("three models built"));
        drop(builder);

        // Windowing and item assembly. The relevance models are compiled
        // onto interned stem ids first: window scoring then probes dense
        // bitmaps instead of hashing stem strings per (surface, window)
        // pair, with bit-identical sums.
        let compiled: Vec<ctxrank_features::CompiledRelevance> =
            relevance_models.iter().map(|m| m.compile()).collect();
        let mut groups: Vec<WindowGroup> = Vec::new();
        let mut stats = DatasetStats {
            stories_generated: world.world.news.len(),
            stories_kept: mining.stories.len(),
            ..DatasetStats::default()
        };
        // Recover per-story click outcomes by replaying the event log.
        // Events were appended in story order, one per entity mention, so
        // grouping by story id and walking each group in order rebuilds
        // the original click reports bit-exactly.
        let mut replayed: HashMap<u64, (u64, Vec<(String, u64)>)> = HashMap::new();
        for event in mining
            .store
            .replay()
            .expect("mining stage sealed an intact event log")
        {
            if let Event::Click {
                story,
                surface,
                views,
                clicks,
            } = event
            {
                let entry = replayed.entry(story).or_insert_with(|| (views, Vec::new()));
                entry.1.push((surface, clicks));
            }
        }
        let story_inputs: Vec<StoryClickInput> = mining
            .stories
            .iter()
            .map(|sd| {
                let (views, recs) = replayed
                    .remove(&(sd.story as u64))
                    .expect("every kept story has click events in the log");
                (sd, views, recs)
            })
            .collect();
        let per_story_groups: Vec<Vec<WindowGroup>> =
            ctxrank_parallel::par_map(threads, &story_inputs, |(sd, views, recs)| {
                // Surface → concept is injective per story (first
                // occurrence only), so mapping replayed surfaces through
                // the annotation recovers the concept-keyed CTR map with
                // the monolith's exact insert/overwrite order.
                let concept_of: HashMap<&str, ConceptId> = sd
                    .entities
                    .iter()
                    .map(|e| (e.surface.as_str(), e.concept))
                    .collect();
                let ctr_of: HashMap<ConceptId, f64> = recs
                    .iter()
                    .map(|(surface, clicks)| {
                        let concept = *concept_of
                            .get(surface.as_str())
                            .expect("replayed surface belongs to its story");
                        let ctr = if *views == 0 {
                            0.0
                        } else {
                            *clicks as f64 / *views as f64
                        };
                        (concept, ctr)
                    })
                    .collect();
                let windows = ctxrank_text::window::windows(
                    &sd.text,
                    config.window_size,
                    config.window_overlap,
                );
                let mut story_groups = Vec::new();
                for (w_idx, w) in windows.iter().enumerate() {
                    let members: Vec<&EntityMention> = sd
                        .entities
                        .iter()
                        .filter(|e| w.contains(e.byte_offset))
                        .collect();
                    if members.len() < 2 {
                        continue;
                    }
                    let stems = ctxrank_text::stemmed_terms(w.of(&sd.text));
                    let contexts: Vec<Vec<bool>> = compiled
                        .iter()
                        .map(|c| c.context_from_stems(&stems))
                        .collect();
                    let items: Vec<Item> = members
                        .iter()
                        .map(|&e| {
                            let mut relevance = [0.0; 3];
                            let mut relevance_raw = [0.0; 3];
                            for (i, model) in compiled.iter().enumerate() {
                                relevance_raw[i] = model.score(&e.surface, &contexts[i]);
                                relevance[i] = relevance_raw[i].ln_1p();
                            }
                            Item {
                                surface: e.surface.clone(),
                                concept: e.concept,
                                ctr: ctr_of.get(&e.concept).copied().unwrap_or(0.0),
                                baseline_score: e.baseline_score,
                                interest: interest_cache[&e.surface].clone(),
                                relevance,
                                relevance_raw,
                                position_frac: e.position_frac,
                                gt_relevance: e.gt_relevance,
                            }
                        })
                        .collect();
                    story_groups.push(WindowGroup {
                        story: sd.story,
                        window: w_idx,
                        items,
                    });
                }
                story_groups
            });
        for ((_, _, recs), story_groups) in story_inputs.iter().zip(per_story_groups) {
            stats.total_clicks += recs.iter().map(|(_, clicks)| clicks).sum::<u64>();
            for g in story_groups {
                stats.concept_instances += g.items.len();
                groups.push(g);
            }
        }
        stats.windows = groups.len();

        FeatureArtifact {
            interest_raw,
            relevance_models,
            dataset: Dataset::new(groups),
            stats,
        }
    }
}

/// Trains the deployed model: a linear ranking SVM on all ten features
/// (interestingness + the snippet-mined relevance, §V-A.6).
pub struct TrainStage;

impl TrainStage {
    pub fn run(dataset: &Dataset) -> TrainArtifact {
        let feature_set = FeatureSet::InterestPlusRelevance(MiningResource::Snippets);
        let groups: Vec<RankGroup> = dataset
            .groups
            .iter()
            .map(|g| {
                RankGroup::from_pairs(
                    g.items
                        .iter()
                        .map(|item| (feature_set.features(item), item.ctr)),
                )
            })
            .filter(|g| {
                g.instances
                    .iter()
                    .any(|a| g.instances.iter().any(|b| a.label > b.label))
            })
            .collect();
        TrainArtifact {
            model: train(&groups, &SvmConfig::default()),
        }
    }
}

/// Packs the stores and freezes the serving artifact.
///
/// The full build is the *bootstrap case* of the delta projection: the
/// stage assembles the frozen (re-mined/retrained) parts and hands the
/// interestingness base to [`SnapshotProjector::bootstrap`], which packs
/// the stores and claims the first epoch. Incremental delta publishes
/// later reuse the very same projector, so bootstrap-then-deltas is
/// bit-exact with a fresh full build over the concatenated log.
pub struct PublishStage;

impl PublishStage {
    pub fn run(
        interest_raw: &HashMap<String, InterestFeatures>,
        relevance_models: &[RelevanceModel; 3],
        trained: TrainArtifact,
    ) -> Arc<Snapshot> {
        Self::run_bootstrap(interest_raw, relevance_models, trained).1
    }

    /// Like [`PublishStage::run`], but also returns the projector so the
    /// caller can keep folding sealed click segments into incremental
    /// delta publishes against the bootstrapped snapshot.
    pub fn run_bootstrap(
        interest_raw: &HashMap<String, InterestFeatures>,
        relevance_models: &[RelevanceModel; 3],
        trained: TrainArtifact,
    ) -> (SnapshotProjector, Arc<Snapshot>) {
        // Packed relevance store over the snippet-mined keywords (the
        // resource the production system uses, §V-A.6).
        let mut tids = GlobalTidTable::new();
        let snippets = &relevance_models[resource_index(MiningResource::Snippets)];
        let keyword_sets: Vec<(&str, &ctxrank_features::RelevantTerms)> = interest_raw
            .keys()
            .filter_map(|s| snippets.terms(s).map(|rt| (s.as_str(), rt)))
            .collect();
        let relevance = PackedRelevanceStore::build(keyword_sets, &mut tids);

        let frozen = FrozenParts {
            relevance,
            tids,
            model: trained.model,
        };
        SnapshotProjector::bootstrap(frozen, interest_raw.iter().map(|(s, f)| (s.clone(), *f)))
            .expect("publish stage supplies every snapshot component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_compose_into_the_same_experiment() {
        let config = ExperimentConfig::small(7);
        let threads = 1;
        let world = WorldStage::run(&config);
        let mining = MiningStage::run(&config, &world, threads);
        assert!(!mining.stories.is_empty());
        assert!(mining.surfaces.windows(2).all(|w| w[0] < w[1]), "sorted");
        // Every kept story's click report lives in the sealed log.
        assert_eq!(mining.store.active_events(), 0, "log sealed after mining");
        let expected_events: u64 = mining
            .stories
            .iter()
            .map(|sd| sd.entities.len() as u64)
            .sum();
        assert_eq!(mining.store.sealed_events(), expected_events);
        let features = FeatureStage::run(&config, &world, &mining, threads);
        assert_eq!(features.stats.stories_kept, mining.stories.len());
        assert_eq!(features.stats.windows, features.dataset.groups.len());

        let exp = crate::Experiment::build_serial(config);
        assert_eq!(exp.stats.windows, features.stats.windows);
        assert_eq!(exp.stats.total_clicks, features.stats.total_clicks);
        assert_eq!(exp.dataset.groups.len(), features.dataset.groups.len());
    }

    #[test]
    fn publish_stage_freezes_a_snapshot() {
        let exp = crate::Experiment::build(ExperimentConfig::small(7));
        let trained = TrainStage::run(&exp.dataset);
        let snap = PublishStage::run(&exp.interest_raw, &exp.relevance_models, trained);
        assert!(snap.epoch() > 0);
        assert!(!snap.model().is_rbf());
        assert!(!snap.interest().is_empty());
    }

    #[test]
    fn publish_bootstrap_returns_a_live_projector() {
        let exp = crate::Experiment::build(ExperimentConfig::small(7));
        let trained = TrainStage::run(&exp.dataset);
        let (projector, snap) =
            PublishStage::run_bootstrap(&exp.interest_raw, &exp.relevance_models, trained);
        assert_eq!(projector.epoch(), snap.epoch());
        assert_eq!(projector.surfaces(), exp.interest_raw.len());
        assert_eq!(projector.folded_seq(), 0, "no segments folded yet");
    }
}
