//! The parallel `Experiment::build` must be indistinguishable from the
//! sequential reference build: same dataset, same stats, same metrics.

use ctxrank_bench::{evaluate_fixed, Experiment, ExperimentConfig};

#[test]
fn parallel_build_is_identical_to_serial() {
    let serial = Experiment::build_serial(ExperimentConfig::small(11));
    let parallel = Experiment::build_with_threads(ExperimentConfig::small(11), 4);

    assert_eq!(
        serial.stats.stories_generated,
        parallel.stats.stories_generated
    );
    assert_eq!(serial.stats.stories_kept, parallel.stats.stories_kept);
    assert_eq!(serial.stats.windows, parallel.stats.windows);
    assert_eq!(
        serial.stats.concept_instances,
        parallel.stats.concept_instances
    );
    assert_eq!(serial.stats.total_clicks, parallel.stats.total_clicks);

    // Every group, item, feature vector and label — not just counts.
    assert_eq!(serial.dataset.groups, parallel.dataset.groups);

    // And a downstream metric computed from each dataset agrees exactly.
    let a = evaluate_fixed(&serial.dataset, |i| i.baseline_score);
    let b = evaluate_fixed(&parallel.dataset, |i| i.baseline_score);
    assert_eq!(a.ndcg, b.ndcg);
    assert_eq!(a.weighted_error, b.weighted_error);
    assert_eq!(a.error, b.error);
}

#[test]
fn default_build_matches_serial_under_env_override() {
    // `build` picks its worker count from the environment/machine; it
    // must still be the same experiment.
    let serial = Experiment::build_serial(ExperimentConfig::small(12));
    let auto = Experiment::build(ExperimentConfig::small(12));
    assert_eq!(serial.dataset.groups, auto.dataset.groups);
    assert_eq!(serial.stats.total_clicks, auto.stats.total_clicks);
}
