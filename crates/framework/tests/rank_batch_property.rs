//! Property: `rank_batch` is exactly per-document `rank`, for arbitrary
//! documents and candidate sets, at any thread count.

use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::{GlobalTidTable, PackedInterestStore, PackedRelevanceStore, RuntimeRanker};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared ranker across all cases (training the model is the
/// expensive part; the property is about the batching layer).
fn ranker() -> &'static RuntimeRanker {
    static RANKER: OnceLock<RuntimeRanker> = OnceLock::new();
    RANKER.get_or_init(|| {
        let feats = |freq: u64| InterestFeatures {
            freq_exact: freq,
            freq_phrase_contained: freq + 100,
            unit_score: 0.5,
            searchengine_phrase: 200,
            concept_size: 2,
            number_of_chars: 12,
            subconcepts: 0,
            high_level_type: 4,
            wiki_word_count: 500,
        };
        let interest = PackedInterestStore::build(&[
            ("solar flares".to_string(), feats(1000)),
            ("random stuff".to_string(), feats(5)),
        ]);

        let mut tids = GlobalTidTable::new();
        let hot_kw = RelevantTerms {
            terms: vec![
                (ctxrank_text::stem("sunspot"), 9.0),
                (ctxrank_text::stem("telescope"), 6.0),
            ],
        };
        let cold_kw = RelevantTerms {
            terms: vec![(ctxrank_text::stem("garage"), 0.8)],
        };
        let relevance = PackedRelevanceStore::build(
            vec![("solar flares", &hot_kw), ("random stuff", &cold_kw)],
            &mut tids,
        );

        let groups: Vec<RankGroup> = (0..10)
            .map(|i| {
                let base = i as f64 * 0.01;
                RankGroup::from_pairs(vec![
                    (
                        {
                            let mut f = vec![0.0; 10];
                            f[0] = 5.0 + base;
                            f[9] = 1.0;
                            f
                        },
                        0.10,
                    ),
                    (
                        {
                            let mut f = vec![0.0; 10];
                            f[0] = 1.0;
                            f[9] = 0.1;
                            f
                        },
                        0.01,
                    ),
                ])
            })
            .collect();
        let model = train(&groups, &SvmConfig::default());
        RuntimeRanker::new(interest, relevance, tids, model)
    })
}

proptest! {
    #[test]
    fn rank_batch_equals_per_document_rank(
        docs in prop::collection::vec("\\PC{0,120}", 0..6),
        extra in prop::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,2}", 0..4),
        threads in 1usize..5,
    ) {
        let r = ranker();
        // Mix store-known surfaces with arbitrary (usually unknown) ones.
        let mut candidates = extra;
        candidates.push("solar flares".to_string());
        candidates.push("random stuff".to_string());

        let doc_refs: Vec<(&str, &[String])> = docs
            .iter()
            .map(|d| (d.as_str(), candidates.as_slice()))
            .collect();
        let batch = r.rank_batch_with_threads(&doc_refs, threads);
        prop_assert_eq!(batch.len(), docs.len());
        for ((text, cands), ranked) in doc_refs.iter().zip(&batch) {
            prop_assert_eq!(ranked, &r.rank(text, cands));
        }
    }
}
