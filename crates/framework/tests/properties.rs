//! Property-based tests for the packed production stores.

use ctxrank_framework::{
    golomb_decode, golomb_encode, optimal_rice_parameter, FieldQuantizer, GlobalTidTable,
    OnlineConfig, OnlineCtrAdjuster, PackedInterestStore, PackedRelevanceStore, PropensityTable,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// Golomb/Rice coding round-trips any strictly increasing id list at
    /// any reasonable parameter.
    #[test]
    fn golomb_roundtrip(ids in prop::collection::btree_set(0u32..4_194_303, 0..200),
                        k in 0u32..16) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let enc = golomb_encode(&ids, k);
        prop_assert_eq!(golomb_decode(&enc), ids);
    }

    /// The optimal parameter never loses to a naive fixed choice by much:
    /// decode still round-trips and size is bounded by the raw encoding.
    #[test]
    fn golomb_optimal_parameter_sane(ids in prop::collection::btree_set(0u32..100_000, 1..300)) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let k = optimal_rice_parameter(&ids);
        let enc = golomb_encode(&ids, k);
        prop_assert_eq!(golomb_decode(&enc), ids.clone());
        // Never absurdly larger than 4 bytes/id raw.
        prop_assert!(enc.byte_len() <= ids.len() * 8 + 16);
    }

    /// Quantize/dequantize error is bounded by one cell.
    #[test]
    fn quantizer_error_bounded(lo in -1e6f64..1e6, span in 0.001f64..1e6, v in 0.0f64..1.0) {
        let hi = lo + span;
        let q = FieldQuantizer::new(lo, hi);
        let x = lo + v * span;
        let cell = span / u16::MAX as f64;
        let back = q.dequantize(q.quantize(x));
        prop_assert!((back - x).abs() <= cell + 1e-9, "err {} > cell {}", (back - x).abs(), cell);
    }

    /// The TID table is a bijection over interned terms.
    #[test]
    fn tid_table_bijection(terms in prop::collection::btree_set("[a-z]{1,12}", 0..200)) {
        let mut table = GlobalTidTable::new();
        let terms: Vec<String> = terms.into_iter().collect();
        let ids: Vec<_> = terms.iter().map(|t| table.intern(t)).collect();
        let distinct: BTreeSet<_> = ids.iter().map(|i| i.0).collect();
        prop_assert_eq!(distinct.len(), terms.len());
        for (t, id) in terms.iter().zip(&ids) {
            prop_assert_eq!(table.get(t), Some(*id));
            prop_assert_eq!(table.term(*id), Some(t.as_str()));
        }
    }

    /// Packed interest round-trips every field within quantization
    /// tolerance (relative to the fitted range).
    #[test]
    fn packed_interest_roundtrip(
        rows in prop::collection::vec(
            (0u64..100_000, 0u64..100_000, 0.0f64..1.0, 0u64..10_000,
             1u32..4, 2u32..40, 0u32..5, 0u8..7, 0u32..10_000),
            1..40)
    ) {
        let concepts: Vec<(String, ctxrank_features::InterestFeatures)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (format!("c{i}"), ctxrank_features::InterestFeatures {
                    freq_exact: r.0,
                    freq_phrase_contained: r.1,
                    unit_score: r.2,
                    searchengine_phrase: r.3,
                    concept_size: r.4,
                    number_of_chars: r.5,
                    subconcepts: r.6,
                    high_level_type: r.7,
                    wiki_word_count: r.8,
                })
            })
            .collect();
        let store = PackedInterestStore::build(&concepts);
        for (surface, f) in &concepts {
            let packed = store.dense(surface).expect("stored");
            for (a, b) in f.to_dense().iter().zip(&packed) {
                // One u16 cell of the fitted range; ranges here are at
                // most ~ln(1e5) ≈ 11.5, so tolerance is generous.
                prop_assert!((a - b).abs() < 0.01, "{} vs {}", a, b);
            }
        }
    }

    /// The packed relevance score equals the reference (float) scoring
    /// within quantization error.
    #[test]
    fn packed_relevance_matches_reference(
        keywords in prop::collection::vec(("[a-z]{2,8}", 0.01f64..50.0), 1..60),
        context_pick in prop::collection::vec(any::<bool>(), 1..60)
    ) {
        // Dedup keyword terms, keep first score.
        let mut seen = std::collections::HashSet::new();
        let kws: Vec<(String, f64)> = keywords
            .into_iter()
            .filter(|(t, _)| seen.insert(t.clone()))
            .collect();
        let rt = ctxrank_features::RelevantTerms { terms: kws.clone() };
        let mut tids = GlobalTidTable::new();
        let store = PackedRelevanceStore::build(vec![("c", &rt)], &mut tids);

        // A context containing a subset of the keywords.
        let chosen: Vec<&(String, f64)> = kws
            .iter()
            .zip(context_pick.iter().cycle())
            .filter(|(_, &pick)| pick)
            .map(|(kw, _)| kw)
            .collect();
        let context = tids.context_tids(chosen.iter().map(|(t, _)| t.as_str()));
        let reference: f64 = chosen.iter().map(|(_, s)| *s).sum();
        let packed = store.score("c", &context);
        let tolerance = kws.len() as f64 * store.score_scale() / 1023.0 + 1e-9;
        prop_assert!(
            (packed - reference).abs() <= tolerance,
            "packed {} vs reference {} (tol {})", packed, reference, tolerance
        );
    }

    /// With an all-ones propensity table the IPW adjuster is
    /// byte-identical to the naive one on any feedback sequence —
    /// including its serialized form (the table never leaks into
    /// online.json).
    #[test]
    fn ipw_adjuster_with_unit_propensities_matches_naive(
        batches in prop::collection::vec(
            (0usize..6, 0usize..12, 0u64..2_000, 0u64..2_000), 0..80),
        table_ranks in 0usize..16
    ) {
        let surfaces = ["a", "b", "c", "d", "e", "f"];
        let mut naive = OnlineCtrAdjuster::new(OnlineConfig::default());
        let mut ipw = OnlineCtrAdjuster::new(OnlineConfig::default());
        ipw.set_propensities(PropensityTable::uniform(table_ranks));
        for &(s, rank, views, raw_clicks) in &batches {
            let surface = surfaces[s];
            let clicks = raw_clicks.min(views);
            naive.record(surface, views, clicks);
            ipw.record_ranked(surface, rank, views, clicks);
        }
        for surface in surfaces {
            prop_assert_eq!(naive.estimates(surface), ipw.estimates(surface));
            prop_assert_eq!(
                naive.adjustment(surface).to_bits(),
                ipw.adjustment(surface).to_bits()
            );
            prop_assert_eq!(naive.ctr_estimate(surface), ipw.ctr_estimate(surface));
        }
        prop_assert_eq!(
            serde_json::to_string(&naive).expect("ser"),
            serde_json::to_string(&ipw).expect("ser")
        );
    }
}
