//! Concurrent hot-swap: readers rank continuously while a publisher
//! installs rebuilt snapshots mid-traffic. Every ranking must be
//! internally consistent with exactly one published snapshot version
//! (no torn reads mixing two artifact generations), and each reader
//! must observe a monotone epoch sequence.

use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::{GlobalTidTable, PackedInterestStore, PackedRelevanceStore};
use ctxrank_framework::{RankedConcept, ServiceHandle, Snapshot, SnapshotBuilder};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const TEXT: &str = "sunspot activity disrupts radio communication worldwide";
const SURFACE: &str = "solar flares";

/// A snapshot whose single concept carries one relevance keyword of the
/// given weight — rank results are distinguishable per snapshot.
fn snapshot(weight: f64) -> Arc<Snapshot> {
    let interest = PackedInterestStore::build(&[(
        SURFACE.to_string(),
        InterestFeatures {
            freq_exact: 100,
            ..InterestFeatures::default()
        },
    )]);
    let mut tids = GlobalTidTable::new();
    let kw = RelevantTerms {
        terms: vec![(ctxrank_text::stem("sunspot"), weight)],
    };
    let relevance = PackedRelevanceStore::build(vec![(SURFACE, &kw)], &mut tids);
    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[9] = (g + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("snapshot")
}

#[test]
fn readers_stay_consistent_while_publisher_swaps() {
    const PUBLISHES: usize = 40;
    const READERS: usize = 4;
    let weights = [1.0, 3.0, 7.0, 15.0];
    let candidates = vec![SURFACE.to_string()];

    // Pre-build every snapshot the publisher will install, and the
    // exact ranking each one must produce. Distinct weights quantize to
    // distinct packed relevance scores, so the expectations differ
    // across the weight cycle.
    let snapshots: Vec<Arc<Snapshot>> = (0..PUBLISHES)
        .map(|i| snapshot(weights[i % weights.len()]))
        .collect();
    let expected: HashMap<u64, Vec<RankedConcept>> = snapshots
        .iter()
        .map(|s| {
            let r = ctxrank_framework::RuntimeRanker::from_snapshot(s.clone());
            (s.epoch(), r.rank(TEXT, &candidates))
        })
        .collect();
    {
        let distinct: std::collections::HashSet<String> = expected
            .values()
            .map(|r| format!("{:?}", r[0].relevance))
            .collect();
        assert!(distinct.len() > 1, "snapshots must be distinguishable");
    }

    let handle = ServiceHandle::new(snapshots[0].clone());
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let handle = &handle;
        let done = &done;
        let expected = &expected;
        let candidates = &candidates;

        let mut readers = Vec::new();
        for _ in 0..READERS {
            readers.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut iterations = 0usize;
                while !done.load(Ordering::Acquire) || iterations == 0 {
                    // A pinned view: the whole ranking runs on the one
                    // snapshot loaded here, however many publishes land
                    // meanwhile.
                    let ranker = handle.ranker();
                    let epoch = ranker.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    let got = ranker.rank(TEXT, candidates);
                    assert_eq!(
                        &got,
                        expected.get(&epoch).expect("known epoch"),
                        "ranking must match the snapshot it started on (epoch {epoch})"
                    );

                    // A batch loads its snapshot once at entry: every
                    // document must be ranked by the same version.
                    let docs: Vec<(&str, &[String])> =
                        (0..6).map(|_| (TEXT, candidates.as_slice())).collect();
                    let batch = handle.rank_batch(&docs);
                    let version = expected
                        .values()
                        .find(|e| *e == &batch[0])
                        .expect("batch output must match some published snapshot");
                    for b in &batch {
                        assert_eq!(b, version, "one batch must not mix snapshot versions");
                    }
                    iterations += 1;
                }
                iterations
            }));
        }

        for snap in &snapshots[1..] {
            handle.publish(snap.clone());
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);

        for r in readers {
            let iterations = r.join().expect("reader panicked");
            assert!(iterations > 0);
        }
    });

    // All publishes retired their predecessor; final epoch is the last
    // snapshot's.
    assert_eq!(handle.retired_len(), PUBLISHES - 1);
    assert_eq!(handle.epoch(), snapshots.last().unwrap().epoch());
}
