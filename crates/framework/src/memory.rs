//! Memory accounting for the §VI framework.
//!
//! Reproduces the paper's arithmetic (18 MB of interestingness vectors
//! and ~400 MB of relevance keywords per million concepts) against the
//! actual stores, and measures the additional saving from Golomb-coding
//! the TID lists.

use crate::golomb::{golomb_encode, optimal_rice_parameter};
use crate::packed::PackedInterestStore;
use crate::relstore::PackedRelevanceStore;
use crate::tid::GlobalTidTable;

/// A memory report over the assembled stores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryReport {
    pub num_concepts: usize,
    pub num_terms: usize,
    /// Bytes of packed interestingness vectors.
    pub interest_bytes: usize,
    /// Bytes of packed relevance pairs (4 per keyword).
    pub relevance_bytes: usize,
    /// Bytes the TID portion of the relevance store would occupy after
    /// Golomb coding (scores still cost 10 bits each).
    pub golomb_relevance_bytes: usize,
}

impl MemoryReport {
    /// Measure the stores.
    pub fn measure(
        interest: &PackedInterestStore,
        relevance: &PackedRelevanceStore,
        tids: &GlobalTidTable,
    ) -> Self {
        // Golomb-compress each concept's sorted TID list; add back the
        // fixed 10 bits per score.
        let mut golomb_bits = 0usize;
        let mut n_pairs = 0usize;
        for packed_list in relevance.tid_lists() {
            let tid_list: Vec<u32> = packed_list.iter().map(|&p| p >> 10).collect();
            // TIDs may repeat across score values only if two keywords
            // share a term, which build() precludes; dedup defensively.
            let mut unique = tid_list;
            unique.dedup();
            if unique.is_empty() {
                continue;
            }
            let k = optimal_rice_parameter(&unique);
            let enc = golomb_encode(&unique, k);
            golomb_bits += enc.bit_len;
            n_pairs += packed_list.len();
        }
        let golomb_relevance_bytes = (golomb_bits + n_pairs * 10).div_ceil(8);

        Self {
            num_concepts: interest.len(),
            num_terms: tids.len(),
            interest_bytes: interest.packed_bytes(),
            relevance_bytes: relevance.packed_bytes(),
            golomb_relevance_bytes,
        }
    }

    /// Interestingness bytes per concept (the paper's 18).
    pub fn interest_bytes_per_concept(&self) -> f64 {
        self.interest_bytes as f64 / self.num_concepts.max(1) as f64
    }

    /// Relevance bytes per concept (the paper's ≤ 400).
    pub fn relevance_bytes_per_concept(&self) -> f64 {
        self.relevance_bytes as f64 / self.num_concepts.max(1) as f64
    }

    /// Fraction of relevance bytes saved by Golomb coding.
    pub fn golomb_saving(&self) -> f64 {
        if self.relevance_bytes == 0 {
            0.0
        } else {
            1.0 - self.golomb_relevance_bytes as f64 / self.relevance_bytes as f64
        }
    }

    /// Extrapolate total bytes to `n` concepts, as the paper does for
    /// one million.
    pub fn extrapolate_bytes(&self, n: usize) -> u64 {
        ((self.interest_bytes_per_concept() + self.relevance_bytes_per_concept()) * n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_features::{InterestFeatures, RelevantTerms};

    fn stores() -> (PackedInterestStore, PackedRelevanceStore, GlobalTidTable) {
        let concepts: Vec<(String, InterestFeatures)> = (0..20)
            .map(|i| {
                (
                    format!("concept {i}"),
                    InterestFeatures {
                        freq_exact: i,
                        ..InterestFeatures::default()
                    },
                )
            })
            .collect();
        let interest = PackedInterestStore::build(&concepts);
        let mut tids = GlobalTidTable::new();
        let keyword_sets: Vec<(String, RelevantTerms)> = (0..20)
            .map(|i| {
                (
                    format!("concept {i}"),
                    RelevantTerms {
                        // Shared vocabulary across concepts: TIDs reused.
                        terms: (0..50)
                            .map(|j| (format!("kw{}", (i + j) % 80), 1.0 + j as f64))
                            .collect(),
                    },
                )
            })
            .collect();
        let relevance = PackedRelevanceStore::build(
            keyword_sets.iter().map(|(s, rt)| (s.as_str(), rt)),
            &mut tids,
        );
        (interest, relevance, tids)
    }

    #[test]
    fn per_concept_costs_match_paper_arithmetic() {
        let (i, r, t) = stores();
        let report = MemoryReport::measure(&i, &r, &t);
        assert_eq!(report.interest_bytes_per_concept(), 18.0);
        // 50 keywords → 200 B/concept (the paper's cap of 100 → 400 B).
        assert_eq!(report.relevance_bytes_per_concept(), 200.0);
    }

    #[test]
    fn golomb_saves_space() {
        let (i, r, t) = stores();
        let report = MemoryReport::measure(&i, &r, &t);
        assert!(
            report.golomb_saving() > 0.2,
            "saving {}",
            report.golomb_saving()
        );
        assert!(report.golomb_relevance_bytes < report.relevance_bytes);
    }

    #[test]
    fn term_sharing_bounds_tid_table() {
        let (_, _, t) = stores();
        // 20 concepts × 50 keywords but only 69 distinct terms
        // ((i + j) % 80 with i < 20, j < 50 covers 0..=68).
        assert_eq!(t.len(), 69);
    }

    #[test]
    fn extrapolation_to_one_million() {
        let (i, r, t) = stores();
        let report = MemoryReport::measure(&i, &r, &t);
        let bytes = report.extrapolate_bytes(1_000_000);
        // 18 MB + 200 MB with 50 keywords each.
        assert_eq!(bytes, 218_000_000);
    }
}
