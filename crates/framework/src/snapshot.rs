//! The immutable serving artifact.
//!
//! The §VI framework is an *offline mining pipeline feeding an online
//! ranker*: the offline side periodically rebuilds the packed stores and
//! the trained model, the online side serves them under strict latency
//! budgets. The hand-off between the two is a [`Snapshot`] — every
//! frozen component the runtime needs, assembled once through
//! [`SnapshotBuilder`] (the single assembly path; persistence and the
//! experiment pipeline both go through it), tagged with a monotonically
//! increasing epoch, and shared behind `Arc` so a serving fleet can
//! hold many concurrent views of one artifact.
//!
//! A snapshot never changes after `build()`. The only interior
//! mutability is the stem memo cache, which is *semantically* immutable:
//! a raw token always resolves to the same `Option<TermId>` for a given
//! snapshot, so the cache is a pure memo whose population order can
//! never be observed through results. It is sharded so concurrent
//! `rank`/`rank_batch` callers touch disjoint locks instead of
//! contending on one `RwLock` (the pre-snapshot design).

use crate::packed::PackedInterestStore;
use crate::relstore::PackedRelevanceStore;
use crate::tid::{GlobalTidTable, TermId};
use ctxrank_ltr::RankModel;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide epoch source. Epochs are assigned at `build()` time and
/// only ever move forward, so "newer snapshot" and "larger epoch" mean
/// the same thing within a process — the invariant the hot-swap
/// protocol (`crate::swap`) and the persisted manifest both rely on.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn claim_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Advance the epoch source past `epoch` (used when a persisted
/// snapshot restores an epoch minted by an earlier process).
fn reserve_epoch(epoch: u64) {
    NEXT_EPOCH.fetch_max(epoch.saturating_add(1), Ordering::Relaxed);
}

/// Shards in the stem memo cache. A power of two so the shard pick is a
/// mask; 16 is plenty to make cross-thread collisions rare at realistic
/// core counts.
const STEM_SHARDS: usize = 16;

/// Cap on distinct memoized tokens per shard; beyond this the shard
/// stops admitting new entries (news vocabulary saturates well below
/// the total of `STEM_SHARDS * STEM_SHARD_CAP = 2^16`).
const STEM_SHARD_CAP: usize = (1 << 16) / STEM_SHARDS;

/// FNV-1a over the token bytes — cheap, allocation-free, and only used
/// to spread tokens across shards (never for correctness).
fn shard_of(token: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in token.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) & (STEM_SHARDS - 1)
}

/// Sharded memo of raw token → interned TermId (`None` when the token
/// normalizes to nothing, is a stop word, or is absent from the TID
/// table). Keyed on the *unnormalized* token text so a cache hit skips
/// normalization, Porter stemming, and the intern-table probe entirely.
struct ShardedStemCache {
    shards: Vec<RwLock<HashMap<Box<str>, Option<TermId>>>>,
}

impl ShardedStemCache {
    fn new() -> Self {
        Self {
            shards: (0..STEM_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

/// Error from [`SnapshotBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A required component was never supplied to the builder.
    Missing(&'static str),
    /// The model is an RBF model; the production framework runs the
    /// linear model (packed features feed a dot product).
    RbfModel,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing(what) => write!(f, "snapshot builder missing {what}"),
            SnapshotError::RbfModel => {
                write!(f, "the production snapshot requires a linear model")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The frozen serving artifact: packed interestingness + relevance
/// stores, the Global TID Table, and the trained linear model, stamped
/// with its epoch. Construct through [`SnapshotBuilder`]; share behind
/// `Arc` (all ranking entry points take `Arc<Snapshot>` or a view over
/// one).
pub struct Snapshot {
    epoch: u64,
    interest: PackedInterestStore,
    relevance: PackedRelevanceStore,
    tids: GlobalTidTable,
    model: RankModel,
    stem_cache: ShardedStemCache,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("concepts", &self.interest.len())
            .field("terms", &self.tids.len())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// The snapshot's version id. Strictly increasing across `build()`
    /// calls in one process; restored (and reserved) by persistence.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The packed interestingness store.
    pub fn interest(&self) -> &PackedInterestStore {
        &self.interest
    }

    /// The packed relevance-keyword store.
    pub fn relevance(&self) -> &PackedRelevanceStore {
        &self.relevance
    }

    /// The Global TID Table.
    pub fn tids(&self) -> &GlobalTidTable {
        &self.tids
    }

    /// The trained ranking model.
    pub fn model(&self) -> &RankModel {
        &self.model
    }

    /// Whether this snapshot stores `surface` in either frozen store —
    /// i.e. whether a shard built by `partition_snapshot` *owns* the
    /// concept. Candidates failing this check rank with zeroed features
    /// and zero relevance, identically on every shard.
    pub fn contains_concept(&self, surface: &str) -> bool {
        self.interest.contains(surface) || self.relevance.contains(surface)
    }

    /// Resolve a raw (unnormalized) token to its interned TermId; the
    /// slow path behind the memo cache.
    fn resolve_token(&self, raw: &str) -> Option<TermId> {
        let norm = ctxrank_text::normalize_term(raw);
        if norm.is_empty() || ctxrank_text::is_stopword(&norm) {
            return None;
        }
        self.tids.get(&ctxrank_text::stem(&norm))
    }

    /// The document's context TID set, resolving tokens through the
    /// sharded stem cache: a hit turns "allocate + normalize + stem +
    /// intern probe" into a single hash lookup on the borrowed token,
    /// and concurrent documents only collide on a shard when their
    /// tokens hash together.
    pub fn context_tids_cached(&self, text: &str) -> HashSet<TermId> {
        let mut context = HashSet::new();
        // Misses grouped per shard so each shard's write lock is taken
        // at most once per document.
        let mut misses: Vec<Vec<(Box<str>, Option<TermId>)>> = vec![Vec::new(); STEM_SHARDS];
        for tok in ctxrank_text::tokenize(text) {
            let shard = shard_of(tok.text);
            let hit = self.stem_cache.shards[shard].read().get(tok.text).copied();
            match hit {
                Some(tid) => {
                    if let Some(tid) = tid {
                        context.insert(tid);
                    }
                }
                None => {
                    let tid = self.resolve_token(tok.text);
                    if let Some(tid) = tid {
                        context.insert(tid);
                    }
                    misses[shard].push((tok.text.into(), tid));
                }
            }
        }
        for (shard, entries) in misses.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let mut cache = self.stem_cache.shards[shard].write();
            if cache.len() < STEM_SHARD_CAP {
                cache.extend(entries);
            }
        }
        context
    }
}

/// The single assembly path for [`Snapshot`]s: collect the four frozen
/// components, validate them, stamp an epoch, freeze.
///
/// ```
/// # use ctxrank_framework::*;
/// # let interest = PackedInterestStore::build(&[]);
/// # let mut tids = GlobalTidTable::new();
/// # let relevance = PackedRelevanceStore::build(Vec::new(), &mut tids);
/// # let groups = vec![ctxrank_ltr::RankGroup::from_pairs(vec![
/// #     (vec![1.0, 0.0], 0.1), (vec![0.0, 1.0], 0.01)])];
/// # let model = ctxrank_ltr::train(&groups, &ctxrank_ltr::SvmConfig::default());
/// let snapshot = SnapshotBuilder::new()
///     .interest(interest)
///     .relevance(relevance)
///     .tids(tids)
///     .model(model)
///     .build()
///     .expect("all four components supplied and the model is linear");
/// ```
#[derive(Default)]
pub struct SnapshotBuilder {
    interest: Option<PackedInterestStore>,
    relevance: Option<PackedRelevanceStore>,
    tids: Option<GlobalTidTable>,
    model: Option<RankModel>,
    epoch: Option<u64>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The packed interestingness store.
    pub fn interest(mut self, interest: PackedInterestStore) -> Self {
        self.interest = Some(interest);
        self
    }

    /// The packed relevance-keyword store.
    pub fn relevance(mut self, relevance: PackedRelevanceStore) -> Self {
        self.relevance = Some(relevance);
        self
    }

    /// The Global TID Table the relevance store was interned against.
    pub fn tids(mut self, tids: GlobalTidTable) -> Self {
        self.tids = Some(tids);
        self
    }

    /// The trained (linear) ranking model.
    pub fn model(mut self, model: RankModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Pin the epoch instead of claiming the next one — used by
    /// persistence to restore a saved snapshot's identity. The process
    /// epoch source is advanced past it so later builds stay monotonic.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Validate and freeze. Fails when a component is missing or the
    /// model is RBF (the runtime dot product needs a linear model).
    pub fn build(self) -> Result<Arc<Snapshot>, SnapshotError> {
        let interest = self
            .interest
            .ok_or(SnapshotError::Missing("interest store"))?;
        let relevance = self
            .relevance
            .ok_or(SnapshotError::Missing("relevance store"))?;
        let tids = self.tids.ok_or(SnapshotError::Missing("tid table"))?;
        let model = self.model.ok_or(SnapshotError::Missing("rank model"))?;
        if model.is_rbf() {
            return Err(SnapshotError::RbfModel);
        }
        let epoch = match self.epoch {
            Some(e) => {
                reserve_epoch(e);
                e
            }
            None => claim_epoch(),
        };
        Ok(Arc::new(Snapshot {
            epoch,
            interest,
            relevance,
            tids,
            model,
            stem_cache: ShardedStemCache::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_ltr::{train, SvmConfig};

    fn parts() -> (
        PackedInterestStore,
        PackedRelevanceStore,
        GlobalTidTable,
        RankModel,
    ) {
        let interest = PackedInterestStore::build(&[]);
        let mut tids = GlobalTidTable::new();
        let relevance = PackedRelevanceStore::build(Vec::new(), &mut tids);
        let groups: Vec<ctxrank_ltr::RankGroup> = (0..4)
            .map(|g| {
                ctxrank_ltr::RankGroup::from_pairs(
                    (0..2).map(|i| (vec![(g + i) as f64, 1.0], i as f64 * 0.01)),
                )
            })
            .collect();
        let model = train(&groups, &SvmConfig::default());
        (interest, relevance, tids, model)
    }

    #[test]
    fn builder_requires_all_components() {
        let (interest, relevance, tids, model) = parts();
        let err = SnapshotBuilder::new()
            .interest(interest)
            .relevance(relevance)
            .tids(tids)
            .build()
            .unwrap_err();
        assert_eq!(err, SnapshotError::Missing("rank model"));
        drop(model);
    }

    #[test]
    fn snapshot_errors_name_the_violated_invariant() {
        // A server boot path reports these instead of panicking, so the
        // messages must say what was wrong, not just that something was.
        assert_eq!(
            SnapshotError::Missing("rank model").to_string(),
            "snapshot builder missing rank model"
        );
        assert!(SnapshotError::RbfModel.to_string().contains("linear model"));
        let empty = SnapshotBuilder::new().build();
        assert!(matches!(empty, Err(SnapshotError::Missing(_))));
    }

    #[test]
    fn epochs_increase_monotonically() {
        let mut last = 0;
        for _ in 0..3 {
            let (interest, relevance, tids, model) = parts();
            let snap = SnapshotBuilder::new()
                .interest(interest)
                .relevance(relevance)
                .tids(tids)
                .model(model)
                .build()
                .unwrap();
            assert!(snap.epoch() > last, "epoch {} after {last}", snap.epoch());
            last = snap.epoch();
        }
    }

    #[test]
    fn pinned_epoch_reserves_the_range() {
        let (interest, relevance, tids, model) = parts();
        let pinned = SnapshotBuilder::new()
            .interest(interest)
            .relevance(relevance)
            .tids(tids)
            .model(model)
            .epoch(1_000_000)
            .build()
            .unwrap();
        assert_eq!(pinned.epoch(), 1_000_000);
        let (interest, relevance, tids, model) = parts();
        let next = SnapshotBuilder::new()
            .interest(interest)
            .relevance(relevance)
            .tids(tids)
            .model(model)
            .build()
            .unwrap();
        assert!(next.epoch() > 1_000_000);
    }

    #[test]
    fn rbf_model_rejected() {
        let (interest, relevance, tids, _) = parts();
        let groups: Vec<ctxrank_ltr::RankGroup> = (0..4)
            .map(|g| {
                ctxrank_ltr::RankGroup::from_pairs(
                    (0..2).map(|i| (vec![(g + i) as f64, 1.0], i as f64 * 0.01)),
                )
            })
            .collect();
        let rbf = train(
            &groups,
            &SvmConfig {
                kernel: ctxrank_ltr::KernelKind::Rbf { gamma: 0.5, dim: 8 },
                ..SvmConfig::default()
            },
        );
        assert!(rbf.is_rbf());
        let err = SnapshotBuilder::new()
            .interest(interest)
            .relevance(relevance)
            .tids(tids)
            .model(rbf)
            .build()
            .unwrap_err();
        assert_eq!(err, SnapshotError::RbfModel);
    }
}
