//! Golomb-compressed relevance store — §VI's "even further reduced".
//!
//! The packed store ([`crate::relstore`]) spends 32 bits per
//! `(TID, score)` pair. The paper notes the cost "can be even further
//! reduced through: 1) exploiting the fact that many TIDs are shared by
//! related concepts, 2) using integer compression techniques, such as
//! Golomb Coding". This module is that store: per concept, the sorted
//! TID list is delta-encoded with Golomb/Rice coding and the 10-bit
//! quantized scores are bit-packed alongside. Scoring decodes on read —
//! trading CPU for memory, the classic inverted-index compromise. The
//! `components` benchmark and `framework_memory` binary quantify both
//! sides of the trade.

use crate::golomb::{golomb_decode, golomb_encode, optimal_rice_parameter, GolombEncoded};
use crate::relstore::{MAX_KEYWORDS, MAX_QSCORE};
use crate::tid::{GlobalTidTable, TermId};
use ctxrank_features::RelevantTerms;
use std::collections::{HashMap, HashSet};

/// One concept's compressed keyword block.
#[derive(Debug, Clone)]
struct Block {
    tids: GolombEncoded,
    /// Bit-packed 10-bit quantized scores, in TID order.
    scores: Vec<u8>,
}

/// The compressed per-concept relevance keyword store.
#[derive(Debug, Clone, Default)]
pub struct CompressedRelevanceStore {
    blocks: HashMap<String, Block>,
    score_scale: f64,
}

impl CompressedRelevanceStore {
    /// Build from mined keyword sets, interning terms into `tids`.
    /// Mirrors [`crate::relstore::PackedRelevanceStore::build`] so the
    /// two stores are drop-in comparable.
    pub fn build<'a>(
        concepts: impl IntoIterator<Item = (&'a str, &'a RelevantTerms)>,
        tids: &mut GlobalTidTable,
    ) -> Self {
        let concepts: Vec<(&str, &RelevantTerms)> = concepts.into_iter().collect();
        let score_scale = concepts
            .iter()
            .flat_map(|(_, rt)| rt.terms.iter().map(|(_, s)| *s))
            .fold(0.0_f64, f64::max)
            .max(1e-12);

        let mut blocks = HashMap::with_capacity(concepts.len());
        for (surface, rt) in concepts {
            // Quantize, intern, sort by TID, dedup (a term appears once).
            let mut pairs: Vec<(u32, u16)> = rt
                .terms
                .iter()
                .take(MAX_KEYWORDS)
                .map(|(term, score)| {
                    let tid = tids.intern(term);
                    let q = ((score / score_scale) * MAX_QSCORE as f64)
                        .round()
                        .clamp(0.0, MAX_QSCORE as f64) as u16;
                    (tid.0, q)
                })
                .collect();
            pairs.sort_unstable();
            pairs.dedup_by_key(|p| p.0);
            let tid_list: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let k = optimal_rice_parameter(&tid_list);
            let encoded = golomb_encode(&tid_list, k);
            blocks.insert(
                surface.to_string(),
                Block {
                    tids: encoded,
                    scores: pack_scores(pairs.iter().map(|p| p.1)),
                },
            );
        }
        Self {
            blocks,
            score_scale,
        }
    }

    /// Number of concepts stored.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Bytes of compressed keyword data (TIDs + scores, excluding the
    /// hash index).
    pub fn compressed_bytes(&self) -> usize {
        self.blocks
            .values()
            .map(|b| b.tids.byte_len() + b.scores.len())
            .sum()
    }

    /// Decode the concept's keywords as `(TermId, raw score)`.
    pub fn keywords(&self, surface: &str) -> Option<Vec<(TermId, f64)>> {
        let block = self.blocks.get(surface)?;
        let tids = golomb_decode(&block.tids);
        Some(
            tids.into_iter()
                .enumerate()
                .map(|(i, tid)| {
                    let q = unpack_score(&block.scores, i);
                    (TermId(tid), q as f64 / MAX_QSCORE as f64 * self.score_scale)
                })
                .collect(),
        )
    }

    /// Runtime relevance score: decode-on-read sum of matched keywords.
    pub fn score(&self, surface: &str, context: &HashSet<TermId>) -> f64 {
        match self.keywords(surface) {
            None => 0.0,
            Some(kws) => kws
                .into_iter()
                .filter(|(tid, _)| context.contains(tid))
                .map(|(_, s)| s)
                .sum(),
        }
    }

    /// The global score scale (shared semantics with the packed store).
    pub fn score_scale(&self) -> f64 {
        self.score_scale
    }
}

/// Pack 10-bit scores contiguously.
fn pack_scores(scores: impl Iterator<Item = u16>) -> Vec<u8> {
    let mut out = Vec::new();
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for s in scores {
        acc = (acc << 10) | (s as u32 & 0x3FF);
        bits += 10;
        while bits >= 8 {
            bits -= 8;
            out.push(((acc >> bits) & 0xFF) as u8);
        }
    }
    if bits > 0 {
        out.push(((acc << (8 - bits)) & 0xFF) as u8);
    }
    out
}

/// Read the `i`-th 10-bit score.
fn unpack_score(packed: &[u8], i: usize) -> u16 {
    let bit = i * 10;
    let mut v: u32 = 0;
    for b in 0..10 {
        let pos = bit + b;
        let byte = packed[pos / 8];
        let bitval = (byte >> (7 - pos % 8)) & 1;
        v = (v << 1) | bitval as u32;
    }
    v as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relstore::PackedRelevanceStore;

    fn rt(pairs: &[(&str, f64)]) -> RelevantTerms {
        RelevantTerms {
            terms: pairs.iter().map(|(t, s)| (t.to_string(), *s)).collect(),
        }
    }

    fn stores() -> (
        CompressedRelevanceStore,
        PackedRelevanceStore,
        GlobalTidTable,
    ) {
        let sets: Vec<(String, RelevantTerms)> = (0..15)
            .map(|i| {
                (
                    format!("c{i}"),
                    RelevantTerms {
                        terms: (0..40)
                            .map(|j| (format!("kw{}", (i * 3 + j) % 90), 0.5 + j as f64))
                            .collect(),
                    },
                )
            })
            .collect();
        let mut tids1 = GlobalTidTable::new();
        let compressed =
            CompressedRelevanceStore::build(sets.iter().map(|(s, r)| (s.as_str(), r)), &mut tids1);
        let mut tids2 = GlobalTidTable::new();
        let packed =
            PackedRelevanceStore::build(sets.iter().map(|(s, r)| (s.as_str(), r)), &mut tids2);
        // Both builds intern the same terms in the same order.
        (compressed, packed, tids1)
    }

    #[test]
    fn pack_unpack_scores_roundtrip() {
        let scores: Vec<u16> = vec![0, 1, 511, 1023, 777, 3, 1000];
        let packed = pack_scores(scores.iter().copied());
        for (i, &s) in scores.iter().enumerate() {
            assert_eq!(unpack_score(&packed, i), s, "index {i}");
        }
    }

    #[test]
    fn agrees_with_packed_store() {
        let (compressed, packed, tids) = stores();
        let ctx = tids.context_tids(["kw0", "kw7", "kw33", "kw88", "missing"]);
        for i in 0..15 {
            let surface = format!("c{i}");
            let a = compressed.score(&surface, &ctx);
            let b = packed.score(&surface, &ctx);
            assert!((a - b).abs() < 1e-9, "{surface}: {a} vs {b}");
        }
    }

    #[test]
    fn compression_actually_saves() {
        let (compressed, packed, _) = stores();
        assert!(
            compressed.compressed_bytes() < packed.packed_bytes(),
            "compressed {} >= packed {}",
            compressed.compressed_bytes(),
            packed.packed_bytes()
        );
    }

    #[test]
    fn keyword_decoding_roundtrips() {
        let mut tids = GlobalTidTable::new();
        let set = rt(&[("alpha", 3.0), ("beta", 7.0), ("gamma", 1.0)]);
        let store = CompressedRelevanceStore::build(vec![("c", &set)], &mut tids);
        let kws = store.keywords("c").expect("stored");
        assert_eq!(kws.len(), 3);
        let max = kws.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
        assert!((max - 7.0).abs() < 0.01);
    }

    #[test]
    fn unknown_and_empty() {
        let mut tids = GlobalTidTable::new();
        let store = CompressedRelevanceStore::build(Vec::new(), &mut tids);
        assert!(store.is_empty());
        assert_eq!(store.score("x", &HashSet::new()), 0.0);
        assert!(store.keywords("x").is_none());
    }
}
