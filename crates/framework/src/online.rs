//! Online CTR adaptation — the paper's §VIII future work.
//!
//! "In this scenario, the system would be able to respond to sudden
//! fluctuations in click data, either boosting scores of low scoring
//! concepts that are experiencing high CTRs, or punishing the scores of
//! those experiencing low CTRs. This may allow the system to potentially
//! react intelligently to world events in real time."
//!
//! [`OnlineCtrAdjuster`] keeps two exponentially-weighted moving averages
//! of each concept's observed CTR — a *fast* one (recent traffic) and a
//! *slow* one (the long-run norm). The log-ratio of the two, clamped and
//! scaled, becomes an additive score adjustment: a concept whose recent
//! CTR doubles its long-run CTR gets boosted, one whose traffic dies
//! gets punished. Adjustments decay automatically as the fast average
//! reverts to the slow one.

use crate::propensity::PropensityTable;
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning for the online adjuster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Smoothing of the fast (recent) CTR average, per feedback batch.
    pub fast_alpha: f64,
    /// Smoothing of the slow (long-run) CTR average.
    pub slow_alpha: f64,
    /// Batches with fewer views than this are ignored (too noisy).
    pub min_views: u64,
    /// Additive smoothing on CTRs (pseudo-clicks), stabilizing the
    /// ratio for low-traffic concepts.
    pub ctr_smoothing: f64,
    /// The score adjustment is `gain · ln(fast / slow)` clamped into
    /// `[-max_adjust, max_adjust]`.
    pub gain: f64,
    pub max_adjust: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            fast_alpha: 0.5,
            slow_alpha: 0.02,
            min_views: 20,
            ctr_smoothing: 1e-3,
            gain: 1.0,
            max_adjust: 2.0,
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ConceptState {
    fast: f64,
    slow: f64,
    batches: u64,
}

/// Streaming per-concept CTR tracker producing score adjustments.
///
/// Serializable so a serving process can persist accumulated CTR state
/// (`persist::save_service`) and resume adapting after a restart.
///
/// With a [`PropensityTable`] installed the adjuster becomes
/// position-bias-aware: [`Self::record_ranked`] multiplies clicks by
/// the clipped inverse propensity of the rank they were observed at,
/// so a click at rank 9 (rarely examined) counts for more than a click
/// at rank 0 — the inverse-propensity-scoring estimator of
/// counterfactual LTR. Without a table (or with an all-ones table) the
/// ranked path degenerates to the naive one bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct OnlineCtrAdjuster {
    config: OnlineConfigInner,
    state: HashMap<String, ConceptState>,
    /// Not serialized with the adjuster: the table is persisted as its
    /// own checksummed binary (`propensity.bin`) because a bit flip in
    /// a JSON float would deserialize cleanly into silently skewed
    /// weights — the binary codec validates everything.
    propensity: Option<PropensityTable>,
}

// `online.json` keeps its pre-propensity shape: exactly the fields the
// old derive emitted, so snapshots saved before (or after) this feature
// load interchangeably. The propensity table travels separately.
impl Serialize for OnlineCtrAdjuster {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("config".to_string(), self.config.to_content()),
            ("state".to_string(), self.state.to_content()),
        ])
    }
}

impl Deserialize for OnlineCtrAdjuster {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Self {
            config: Deserialize::from_content(c.get("config").unwrap_or(&Content::Null))?,
            state: Deserialize::from_content(c.get("state").unwrap_or(&Content::Null))?,
            propensity: None,
        })
    }
}

/// Internal copy so `Default` works without an `OnlineConfig: Default`
/// bound surprise.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct OnlineConfigInner(OnlineConfig);

impl OnlineCtrAdjuster {
    /// Create an adjuster with the given configuration.
    pub fn new(config: OnlineConfig) -> Self {
        Self {
            config: OnlineConfigInner(config),
            state: HashMap::new(),
            propensity: None,
        }
    }

    /// Feed one feedback batch for `surface`: how many times its
    /// annotations were viewed and clicked since the last batch.
    pub fn record(&mut self, surface: &str, views: u64, clicks: u64) {
        self.record_weighted(surface, views, clicks as f64);
    }

    /// Feed one rank-annotated feedback batch: clicks observed at
    /// `rank` are re-weighted by the installed propensity table's
    /// clipped inverse propensity before entering the CTR averages.
    /// Without a table the weight is exactly 1.0 (naive behaviour).
    pub fn record_ranked(&mut self, surface: &str, rank: usize, views: u64, clicks: u64) {
        let weight = self.propensity.as_ref().map_or(1.0, |p| p.weight(rank));
        self.record_weighted(surface, views, clicks as f64 * weight);
    }

    /// The shared EMA update. `record` passes raw clicks; the ranked
    /// path passes propensity-weighted clicks — so an all-ones table is
    /// byte-identical to the naive adjuster (`c as f64 * 1.0 == c as
    /// f64` exactly, in IEEE 754).
    fn record_weighted(&mut self, surface: &str, views: u64, effective_clicks: f64) {
        let cfg = &self.config.0;
        if views < cfg.min_views {
            return;
        }
        let ctr = effective_clicks / views as f64 + cfg.ctr_smoothing;
        match self.state.get_mut(surface) {
            Some(s) => {
                s.fast = (1.0 - cfg.fast_alpha) * s.fast + cfg.fast_alpha * ctr;
                s.slow = (1.0 - cfg.slow_alpha) * s.slow + cfg.slow_alpha * ctr;
                s.batches += 1;
            }
            None => {
                self.state.insert(
                    surface.to_string(),
                    ConceptState {
                        fast: ctr,
                        slow: ctr,
                        batches: 1,
                    },
                );
            }
        }
    }

    /// Install the propensity table applied by [`Self::record_ranked`].
    pub fn set_propensities(&mut self, table: PropensityTable) {
        self.propensity = Some(table);
    }

    /// Remove and return the installed propensity table, reverting the
    /// ranked path to naive weighting.
    pub fn clear_propensities(&mut self) -> Option<PropensityTable> {
        self.propensity.take()
    }

    /// The installed propensity table, if any.
    pub fn propensities(&self) -> Option<&PropensityTable> {
        self.propensity.as_ref()
    }

    /// The debiased long-run CTR estimate for `surface` (the slow EMA
    /// with the additive smoothing backed out) — `None` when no
    /// feedback has been recorded. Under `record_ranked` with a fitted
    /// table this estimates the surface's examination-free CTR.
    pub fn ctr_estimate(&self, surface: &str) -> Option<f64> {
        let cfg = &self.config.0;
        self.state
            .get(surface)
            .map(|s| (s.slow - cfg.ctr_smoothing).max(0.0))
    }

    /// The additive score adjustment for `surface` (0 when unknown or
    /// too little history).
    pub fn adjustment(&self, surface: &str) -> f64 {
        let cfg = &self.config.0;
        match self.state.get(surface) {
            Some(s) if s.batches >= 2 && s.slow > 0.0 => {
                (cfg.gain * (s.fast / s.slow).ln()).clamp(-cfg.max_adjust, cfg.max_adjust)
            }
            _ => 0.0,
        }
    }

    /// Current fast/slow CTR estimates (diagnostics).
    pub fn estimates(&self, surface: &str) -> Option<(f64, f64)> {
        self.state.get(surface).map(|s| (s.fast, s.slow))
    }

    /// Number of concepts being tracked.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no feedback has been recorded.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Forget a concept (e.g. when it leaves the supported set).
    pub fn forget(&mut self, surface: &str) {
        self.state.remove(surface);
    }
}

impl crate::ranker::RuntimeRanker {
    /// Rank with online adjustments applied on top of the model score —
    /// the §VIII "online version" of the system.
    pub fn rank_online(
        &self,
        text: &str,
        candidates: &[String],
        adjuster: &OnlineCtrAdjuster,
    ) -> Vec<crate::ranker::RankedConcept> {
        let mut ranked = self.rank(text, candidates);
        for r in &mut ranked {
            r.score += adjuster.adjustment(&r.surface);
        }
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.surface.cmp(&b.surface))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(adj: &mut OnlineCtrAdjuster, surface: &str, batches: usize, ctr: f64) {
        for _ in 0..batches {
            let views = 1000u64;
            adj.record(surface, views, (views as f64 * ctr) as u64);
        }
    }

    #[test]
    fn steady_traffic_no_adjustment() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "steady", 50, 0.02);
        assert!(
            adj.adjustment("steady").abs() < 0.05,
            "{}",
            adj.adjustment("steady")
        );
    }

    #[test]
    fn ctr_spike_boosts() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "breaking", 50, 0.01);
        // World event: CTR jumps 8x.
        feed(&mut adj, "breaking", 3, 0.08);
        let a = adj.adjustment("breaking");
        assert!(a > 0.5, "expected a boost, got {a}");
    }

    #[test]
    fn ctr_collapse_punishes() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "stale", 50, 0.05);
        feed(&mut adj, "stale", 4, 0.002);
        let a = adj.adjustment("stale");
        assert!(a < -0.5, "expected a punishment, got {a}");
    }

    #[test]
    fn adjustment_decays_back_to_zero() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "c", 50, 0.01);
        feed(&mut adj, "c", 3, 0.08);
        let spike = adj.adjustment("c");
        // Traffic reverts; after many normal batches the adjustment fades
        // (the slow average has also risen slightly, so "normal" now sits
        // a touch above the old baseline — the fast/slow ratio still
        // converges to 1).
        feed(&mut adj, "c", 200, 0.01);
        let later = adj.adjustment("c");
        assert!(
            later.abs() < spike.abs() / 3.0,
            "spike {spike}, later {later}"
        );
    }

    #[test]
    fn clamping_applies() {
        let cfg = OnlineConfig {
            max_adjust: 0.7,
            ..OnlineConfig::default()
        };
        let mut adj = OnlineCtrAdjuster::new(cfg);
        feed(&mut adj, "c", 50, 0.001);
        feed(&mut adj, "c", 5, 0.4);
        assert!(adj.adjustment("c") <= 0.7 + 1e-12);
    }

    #[test]
    fn low_traffic_batches_ignored() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        adj.record("tiny", 5, 5); // below min_views
        assert!(adj.is_empty());
        assert_eq!(adj.adjustment("tiny"), 0.0);
    }

    #[test]
    fn unknown_concept_zero() {
        let adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        assert_eq!(adj.adjustment("never seen"), 0.0);
    }

    #[test]
    fn forget_clears_state() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "c", 10, 0.02);
        assert_eq!(adj.len(), 1);
        adj.forget("c");
        assert!(adj.is_empty());
    }

    #[test]
    fn all_ones_table_is_byte_identical_to_naive() {
        let mut naive = OnlineCtrAdjuster::new(OnlineConfig::default());
        let mut ipw = OnlineCtrAdjuster::new(OnlineConfig::default());
        ipw.set_propensities(PropensityTable::uniform(10));
        let batches: &[(&str, usize, u64, u64)] = &[
            ("a", 0, 500, 25),
            ("b", 3, 120, 7),
            ("a", 9, 999, 1),
            ("c", 15, 40, 40), // rank past the table clamps to 1.0 too
            ("b", 1, 20, 0),
            ("a", 2, 19, 5), // below min_views on both paths
        ];
        for &(s, rank, views, clicks) in batches {
            naive.record(s, views, clicks);
            ipw.record_ranked(s, rank, views, clicks);
        }
        for s in ["a", "b", "c", "missing"] {
            assert_eq!(naive.estimates(s), ipw.estimates(s), "{s}");
            assert_eq!(naive.adjustment(s).to_bits(), ipw.adjustment(s).to_bits());
        }
        // The serialized forms (what persistence writes) are identical
        // bytes: the table never leaks into online.json.
        assert_eq!(
            serde_json::to_string(&naive).expect("ser"),
            serde_json::to_string(&ipw).expect("ser")
        );
    }

    #[test]
    fn clipping_caps_a_low_propensity_click() {
        let cfg = OnlineConfig::default();
        let mut adj = OnlineCtrAdjuster::new(cfg.clone());
        // Rank 1 has propensity 1/1000 — the raw inverse weight would
        // be 1000x; the cap limits it to 5x.
        adj.set_propensities(
            PropensityTable::from_examination(&[1.0, 0.001], 5.0).expect("valid table"),
        );
        adj.record_ranked("c", 1, 100, 1);
        let (fast, _) = adj.estimates("c").expect("recorded");
        let expected = 5.0 * 1.0 / 100.0 + cfg.ctr_smoothing;
        assert!(
            (fast - expected).abs() < 1e-12,
            "fast {fast} expected {expected}"
        );
    }

    #[test]
    fn ranked_path_respects_min_views() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        adj.set_propensities(PropensityTable::uniform(4));
        adj.record_ranked("tiny", 2, 5, 5);
        assert!(adj.is_empty());
    }

    #[test]
    fn ctr_estimate_backs_out_smoothing() {
        let cfg = OnlineConfig::default();
        let mut adj = OnlineCtrAdjuster::new(cfg);
        assert_eq!(adj.ctr_estimate("c"), None);
        adj.record("c", 1000, 20);
        let est = adj.ctr_estimate("c").expect("recorded");
        assert!((est - 0.02).abs() < 1e-12, "{est}");
    }

    #[test]
    fn ipw_recovers_examination_free_ctr() {
        // Clicks generated under examination [1, 1/2, 1/4] for a
        // surface with true (examined) CTR 0.2: the naive estimate is
        // dragged down by the biased ranks, the weighted one is not.
        let table = PropensityTable::from_examination(&[1.0, 0.5, 0.25], 10.0).expect("valid");
        let mut ipw = OnlineCtrAdjuster::new(OnlineConfig::default());
        ipw.set_propensities(table);
        let mut naive = OnlineCtrAdjuster::new(OnlineConfig::default());
        let exam = [1.0, 0.5, 0.25];
        for batch in 0..300 {
            let rank = batch % 3;
            let views = 1000u64;
            let clicks = (views as f64 * 0.2 * exam[rank]).round() as u64;
            ipw.record_ranked("c", rank, views, clicks);
            naive.record("c", views, clicks);
        }
        let debiased = ipw.ctr_estimate("c").expect("recorded");
        let biased = naive.ctr_estimate("c").expect("recorded");
        assert!((debiased - 0.2).abs() < 0.02, "debiased {debiased}");
        assert!(biased < 0.13, "naive should stay biased low: {biased}");
    }

    #[test]
    fn forget_and_clear_cover_the_new_state() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        let table = PropensityTable::from_examination(&[1.0, 0.5], 10.0).expect("valid");
        adj.set_propensities(table.clone());
        adj.record_ranked("c", 1, 100, 4);
        adj.forget("c");
        // Forgetting a surface drops its CTR state but not the global
        // propensity table (it is not per-surface state).
        assert!(adj.is_empty());
        assert_eq!(adj.propensities(), Some(&table));
        assert_eq!(adj.clear_propensities(), Some(table));
        assert_eq!(adj.propensities(), None);
        // Cleared: ranked records weight 1.0 again.
        adj.record_ranked("d", 1, 100, 4);
        let mut naive = OnlineCtrAdjuster::new(OnlineConfig::default());
        naive.record("d", 100, 4);
        assert_eq!(adj.estimates("d"), naive.estimates("d"));
    }

    #[test]
    fn deserialization_accepts_pre_propensity_payloads() {
        // A payload with only the legacy fields (what older builds
        // wrote) must load, with no table installed.
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        adj.record("c", 100, 7);
        let json = serde_json::to_string(&adj).expect("ser");
        assert!(!json.contains("propensity"), "{json}");
        let back: OnlineCtrAdjuster = serde_json::from_str(&json).expect("de");
        assert_eq!(back.estimates("c"), adj.estimates("c"));
        assert_eq!(back.propensities(), None);
    }
}
