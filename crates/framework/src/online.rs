//! Online CTR adaptation — the paper's §VIII future work.
//!
//! "In this scenario, the system would be able to respond to sudden
//! fluctuations in click data, either boosting scores of low scoring
//! concepts that are experiencing high CTRs, or punishing the scores of
//! those experiencing low CTRs. This may allow the system to potentially
//! react intelligently to world events in real time."
//!
//! [`OnlineCtrAdjuster`] keeps two exponentially-weighted moving averages
//! of each concept's observed CTR — a *fast* one (recent traffic) and a
//! *slow* one (the long-run norm). The log-ratio of the two, clamped and
//! scaled, becomes an additive score adjustment: a concept whose recent
//! CTR doubles its long-run CTR gets boosted, one whose traffic dies
//! gets punished. Adjustments decay automatically as the fast average
//! reverts to the slow one.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning for the online adjuster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Smoothing of the fast (recent) CTR average, per feedback batch.
    pub fast_alpha: f64,
    /// Smoothing of the slow (long-run) CTR average.
    pub slow_alpha: f64,
    /// Batches with fewer views than this are ignored (too noisy).
    pub min_views: u64,
    /// Additive smoothing on CTRs (pseudo-clicks), stabilizing the
    /// ratio for low-traffic concepts.
    pub ctr_smoothing: f64,
    /// The score adjustment is `gain · ln(fast / slow)` clamped into
    /// `[-max_adjust, max_adjust]`.
    pub gain: f64,
    pub max_adjust: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            fast_alpha: 0.5,
            slow_alpha: 0.02,
            min_views: 20,
            ctr_smoothing: 1e-3,
            gain: 1.0,
            max_adjust: 2.0,
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ConceptState {
    fast: f64,
    slow: f64,
    batches: u64,
}

/// Streaming per-concept CTR tracker producing score adjustments.
///
/// Serializable so a serving process can persist accumulated CTR state
/// (`persist::save_service`) and resume adapting after a restart.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineCtrAdjuster {
    config: OnlineConfigInner,
    state: HashMap<String, ConceptState>,
}

/// Internal copy so `Default` works without an `OnlineConfig: Default`
/// bound surprise.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct OnlineConfigInner(OnlineConfig);

impl OnlineCtrAdjuster {
    /// Create an adjuster with the given configuration.
    pub fn new(config: OnlineConfig) -> Self {
        Self {
            config: OnlineConfigInner(config),
            state: HashMap::new(),
        }
    }

    /// Feed one feedback batch for `surface`: how many times its
    /// annotations were viewed and clicked since the last batch.
    pub fn record(&mut self, surface: &str, views: u64, clicks: u64) {
        let cfg = &self.config.0;
        if views < cfg.min_views {
            return;
        }
        let ctr = clicks as f64 / views as f64 + cfg.ctr_smoothing;
        match self.state.get_mut(surface) {
            Some(s) => {
                s.fast = (1.0 - cfg.fast_alpha) * s.fast + cfg.fast_alpha * ctr;
                s.slow = (1.0 - cfg.slow_alpha) * s.slow + cfg.slow_alpha * ctr;
                s.batches += 1;
            }
            None => {
                self.state.insert(
                    surface.to_string(),
                    ConceptState {
                        fast: ctr,
                        slow: ctr,
                        batches: 1,
                    },
                );
            }
        }
    }

    /// The additive score adjustment for `surface` (0 when unknown or
    /// too little history).
    pub fn adjustment(&self, surface: &str) -> f64 {
        let cfg = &self.config.0;
        match self.state.get(surface) {
            Some(s) if s.batches >= 2 && s.slow > 0.0 => {
                (cfg.gain * (s.fast / s.slow).ln()).clamp(-cfg.max_adjust, cfg.max_adjust)
            }
            _ => 0.0,
        }
    }

    /// Current fast/slow CTR estimates (diagnostics).
    pub fn estimates(&self, surface: &str) -> Option<(f64, f64)> {
        self.state.get(surface).map(|s| (s.fast, s.slow))
    }

    /// Number of concepts being tracked.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no feedback has been recorded.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Forget a concept (e.g. when it leaves the supported set).
    pub fn forget(&mut self, surface: &str) {
        self.state.remove(surface);
    }
}

impl crate::ranker::RuntimeRanker {
    /// Rank with online adjustments applied on top of the model score —
    /// the §VIII "online version" of the system.
    pub fn rank_online(
        &self,
        text: &str,
        candidates: &[String],
        adjuster: &OnlineCtrAdjuster,
    ) -> Vec<crate::ranker::RankedConcept> {
        let mut ranked = self.rank(text, candidates);
        for r in &mut ranked {
            r.score += adjuster.adjustment(&r.surface);
        }
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.surface.cmp(&b.surface))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(adj: &mut OnlineCtrAdjuster, surface: &str, batches: usize, ctr: f64) {
        for _ in 0..batches {
            let views = 1000u64;
            adj.record(surface, views, (views as f64 * ctr) as u64);
        }
    }

    #[test]
    fn steady_traffic_no_adjustment() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "steady", 50, 0.02);
        assert!(
            adj.adjustment("steady").abs() < 0.05,
            "{}",
            adj.adjustment("steady")
        );
    }

    #[test]
    fn ctr_spike_boosts() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "breaking", 50, 0.01);
        // World event: CTR jumps 8x.
        feed(&mut adj, "breaking", 3, 0.08);
        let a = adj.adjustment("breaking");
        assert!(a > 0.5, "expected a boost, got {a}");
    }

    #[test]
    fn ctr_collapse_punishes() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "stale", 50, 0.05);
        feed(&mut adj, "stale", 4, 0.002);
        let a = adj.adjustment("stale");
        assert!(a < -0.5, "expected a punishment, got {a}");
    }

    #[test]
    fn adjustment_decays_back_to_zero() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "c", 50, 0.01);
        feed(&mut adj, "c", 3, 0.08);
        let spike = adj.adjustment("c");
        // Traffic reverts; after many normal batches the adjustment fades
        // (the slow average has also risen slightly, so "normal" now sits
        // a touch above the old baseline — the fast/slow ratio still
        // converges to 1).
        feed(&mut adj, "c", 200, 0.01);
        let later = adj.adjustment("c");
        assert!(
            later.abs() < spike.abs() / 3.0,
            "spike {spike}, later {later}"
        );
    }

    #[test]
    fn clamping_applies() {
        let cfg = OnlineConfig {
            max_adjust: 0.7,
            ..OnlineConfig::default()
        };
        let mut adj = OnlineCtrAdjuster::new(cfg);
        feed(&mut adj, "c", 50, 0.001);
        feed(&mut adj, "c", 5, 0.4);
        assert!(adj.adjustment("c") <= 0.7 + 1e-12);
    }

    #[test]
    fn low_traffic_batches_ignored() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        adj.record("tiny", 5, 5); // below min_views
        assert!(adj.is_empty());
        assert_eq!(adj.adjustment("tiny"), 0.0);
    }

    #[test]
    fn unknown_concept_zero() {
        let adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        assert_eq!(adj.adjustment("never seen"), 0.0);
    }

    #[test]
    fn forget_clears_state() {
        let mut adj = OnlineCtrAdjuster::new(OnlineConfig::default());
        feed(&mut adj, "c", 10, 0.02);
        assert_eq!(adj.len(), 1);
        adj.forget("c");
        assert!(adj.is_empty());
    }
}
