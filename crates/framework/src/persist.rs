//! Persistence for the production framework.
//!
//! The §VI framework splits work into an *offline* stage (feature
//! extraction, relevance mining, model training, store packing) and an
//! *online* stage (detection + ranking under strict latency budgets).
//! That split implies a hand-off artifact: the frozen [`Snapshot`]
//! written by the offline pipeline and loaded by the serving fleet.
//!
//! [`save_snapshot`]/[`load_snapshot`] implement that artifact as a
//! directory whose primary content is a single **arena file**,
//! `snapshot.ctxr` (see the `arena` module): one little-endian,
//! checksummed, section-aligned image of all four stores that loads
//! with *no per-entry decode* — the file is read once into an
//! `Arc`-owned aligned buffer, validated, and the stores become typed
//! views into it.
//!
//! The **legacy directory layout** is still understood as a fallback
//! (and written by [`save_snapshot_legacy`] for compatibility tests):
//!
//! * `snapshot.json` — the manifest: format version + the snapshot's
//!   epoch (restored on load, and reserved so later builds in the
//!   loading process stay monotonic);
//! * `interest.bin` — the packed interestingness vectors with their
//!   field quantizers (little-endian binary, built with `bytes`);
//! * `relevance.bin` — the packed `(TID, score)` store;
//! * `tids.bin` — the Global TID Table (term list; ids are dense);
//! * `model.json` — the linear ranking model (scaler + weights).
//!
//! A load prefers `snapshot.ctxr` when it exists and otherwise falls
//! back to the legacy files, so directories written by either
//! generation keep loading transparently.
//!
//! [`save_service`]/[`load_service`] additionally round-trip the online
//! CTR adjuster (`online.json`), so a restarted serving process resumes
//! §VIII adaptation where it left off instead of silently dropping it.
//!
//! Every failure mode — missing files, truncation, corruption, invalid
//! ranges — surfaces as a [`PersistError`] instead of a panic.
//!
//! **Crash/fault safety.** All byte-level I/O goes through the
//! [`PersistFs`] trait (default: [`StdFs`]), so a fault-injection
//! harness (`ctxrank-faultsim`) can wrap every read and write. Saves
//! are *atomic per file*: bytes land in `<name>.tmp` and are renamed
//! into place only after a successful flush. For arena saves the
//! rename of `snapshot.ctxr` **is** the commit point (and
//! [`save_service`] orders it after `online.json`); for legacy saves
//! the `snapshot.json` manifest is written last. A save that dies
//! mid-way (torn write, full disk, injected fault) therefore never
//! clobbers the previous good snapshot, and any corruption that does
//! reach an arena file is caught by its whole-file checksum and
//! surfaces as [`PersistError::Corrupt`].

use crate::arena::{self, AlignedBuf, ByteSlab, StrTable, U32Slab};
use crate::online::OnlineCtrAdjuster;
use crate::packed::{FieldQuantizer, PackedInterestStore, BYTES_PER_CONCEPT};
use crate::ranker::RuntimeRanker;
use crate::relstore::PackedRelevanceStore;
use crate::snapshot::{Snapshot, SnapshotBuilder};
use crate::swap::ServiceHandle;
use crate::tid::GlobalTidTable;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::io;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: u32 = 0x12DE_2009;
/// Bumped whenever the directory layout changes shape. Version 2 added
/// the `snapshot.json` manifest; files from version 1 (no manifest)
/// still load, with a fresh epoch.
const FORMAT_VERSION: u32 = 2;

const F_ARENA: &str = arena::ARENA_FILE;
const F_MANIFEST: &str = "snapshot.json";
const F_INTEREST: &str = "interest.bin";
const F_RELEVANCE: &str = "relevance.bin";
const F_TIDS: &str = "tids.bin";
const F_MODEL: &str = "model.json";
const F_ONLINE: &str = "online.json";
const F_PROPENSITY: &str = "propensity.bin";

/// Why a snapshot directory could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem-level failure on one component file (or the
    /// directory itself).
    Io {
        file: &'static str,
        source: io::Error,
    },
    /// A component file exists but its contents are not a valid
    /// encoding: bad magic, truncation, inverted ranges, malformed
    /// JSON, a non-linear model, ...
    Corrupt { file: &'static str, detail: String },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { file, source } => write!(f, "{file}: {source}"),
            PersistError::Corrupt { file, detail } => write!(f, "{file}: corrupt: {detail}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Corrupt { .. } => None,
        }
    }
}

fn io_err(file: &'static str) -> impl FnOnce(io::Error) -> PersistError {
    move |source| PersistError::Io { file, source }
}

fn corrupt(file: &'static str, detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        file,
        detail: detail.into(),
    }
}

fn check(buf: &Bytes, need: usize, file: &'static str, what: &str) -> Result<(), PersistError> {
    if buf.remaining() < need {
        return Err(corrupt(file, format!("truncated {what}")));
    }
    Ok(())
}

/// Pre-allocation cap for decoded collections: a corrupted count field
/// must never turn into a multi-gigabyte `with_capacity` (which aborts
/// the process instead of returning [`PersistError::Corrupt`]). Each
/// decoded entry consumes at least `min_entry_bytes` from the buffer,
/// so any honest count is bounded by what is actually left to read.
fn cap_alloc(claimed: usize, buf: &Bytes, min_entry_bytes: usize) -> usize {
    claimed.min(buf.remaining() / min_entry_bytes.max(1) + 1)
}

/// The byte-level filesystem operations the persist layer performs.
///
/// Production uses [`StdFs`]. The fault-injection harness
/// (`ctxrank-faultsim`) supplies an implementation whose readers and
/// writers inject short reads, torn writes, bit flips and I/O errors —
/// which is why the save/load paths below never touch `std::fs`
/// directly.
pub trait PersistFs {
    /// Open `path` for reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read>>;
    /// Create (truncate) `path` for writing.
    fn create_write(&self, path: &Path) -> io::Result<Box<dyn Write>>;
    /// Atomically move `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Create `path` and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Does `path` exist? (Never injected: existence probes decide
    /// between layout generations, not data integrity.)
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl PersistFs for StdFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }

    fn create_write(&self, path: &Path) -> io::Result<Box<dyn Write>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// Read a whole component file through `fs`.
fn read_file(fs: &dyn PersistFs, dir: &Path, file: &'static str) -> Result<Vec<u8>, PersistError> {
    let mut reader = fs.open_read(&dir.join(file)).map_err(io_err(file))?;
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes).map_err(io_err(file))?;
    Ok(bytes)
}

/// Stage `bytes` in `<file>.tmp` (flushed, not yet visible).
fn write_file_tmp(
    fs: &dyn PersistFs,
    dir: &Path,
    file: &'static str,
    bytes: &[u8],
) -> Result<(), PersistError> {
    let tmp: PathBuf = dir.join(format!("{file}.tmp"));
    let mut writer = fs.create_write(&tmp).map_err(io_err(file))?;
    writer.write_all(bytes).map_err(io_err(file))?;
    writer.flush().map_err(io_err(file))
}

/// Rename `<file>.tmp` into place — the point where a staged file
/// becomes visible.
fn commit_file_tmp(fs: &dyn PersistFs, dir: &Path, file: &'static str) -> Result<(), PersistError> {
    fs.rename(&dir.join(format!("{file}.tmp")), &dir.join(file))
        .map_err(io_err(file))
}

/// Write a component file atomically: bytes go to `<file>.tmp`, the
/// writer is flushed, and only then is the temp renamed into place. Any
/// failure leaves the previous version of `file` untouched.
fn write_file_atomic(
    fs: &dyn PersistFs,
    dir: &Path,
    file: &'static str,
    bytes: &[u8],
) -> Result<(), PersistError> {
    write_file_tmp(fs, dir, file, bytes)?;
    commit_file_tmp(fs, dir, file)
}

#[derive(Debug, Serialize, Deserialize)]
struct SnapshotManifest {
    format: u32,
    epoch: u64,
}

/// Write the four data files of `snapshot` into `dir` (atomically, via
/// `<name>.tmp` + rename) **without** the manifest — the caller commits
/// by writing the manifest last.
fn save_data_files(
    snapshot: &Snapshot,
    dir: &Path,
    fs: &dyn PersistFs,
) -> Result<(), PersistError> {
    fs.create_dir_all(dir)
        .map_err(io_err("snapshot directory"))?;
    write_file_atomic(fs, dir, F_INTEREST, &encode_interest(snapshot.interest()))?;
    write_file_atomic(
        fs,
        dir,
        F_RELEVANCE,
        &encode_relevance(snapshot.relevance()),
    )?;
    write_file_atomic(fs, dir, F_TIDS, &encode_tids(snapshot.tids()))?;
    let model =
        serde_json::to_vec_pretty(snapshot.model()).map_err(|e| corrupt(F_MODEL, e.to_string()))?;
    write_file_atomic(fs, dir, F_MODEL, &model)?;
    Ok(())
}

/// The commit point of every save: the manifest goes in last, so a save
/// that failed before this call leaves the previous manifest (and hence
/// a loadable directory) intact.
fn save_manifest(snapshot: &Snapshot, dir: &Path, fs: &dyn PersistFs) -> Result<(), PersistError> {
    let manifest = SnapshotManifest {
        format: FORMAT_VERSION,
        epoch: snapshot.epoch(),
    };
    let manifest_json =
        serde_json::to_vec_pretty(&manifest).map_err(|e| corrupt(F_MANIFEST, e.to_string()))?;
    write_file_atomic(fs, dir, F_MANIFEST, &manifest_json)
}

/// Encode `snapshot` as one arena image.
fn encode_arena(snapshot: &Snapshot) -> Result<Vec<u8>, PersistError> {
    let model =
        serde_json::to_vec_pretty(snapshot.model()).map_err(|e| corrupt(F_MODEL, e.to_string()))?;
    Ok(arena::encode(
        snapshot.interest(),
        snapshot.relevance(),
        snapshot.tids(),
        &model,
        snapshot.epoch(),
    ))
}

/// Save `snapshot` into `dir` (created if missing) as a single arena
/// file, `snapshot.ctxr`. The rename of that file is the commit point.
pub fn save_snapshot(snapshot: &Snapshot, dir: &Path) -> Result<(), PersistError> {
    save_snapshot_with(snapshot, dir, &StdFs)
}

/// [`save_snapshot`] through an explicit [`PersistFs`] (fault injection
/// and tests).
pub fn save_snapshot_with(
    snapshot: &Snapshot,
    dir: &Path,
    fs: &dyn PersistFs,
) -> Result<(), PersistError> {
    fs.create_dir_all(dir)
        .map_err(io_err("snapshot directory"))?;
    write_file_atomic(fs, dir, F_ARENA, &encode_arena(snapshot)?)
}

/// Save `snapshot` in the legacy multi-file directory layout
/// (`interest.bin` + `relevance.bin` + `tids.bin` + `model.json` +
/// manifest). Kept for downgrade compatibility and for tests that pin
/// the legacy decode path; new saves should use [`save_snapshot`].
pub fn save_snapshot_legacy(snapshot: &Snapshot, dir: &Path) -> Result<(), PersistError> {
    save_snapshot_legacy_with(snapshot, dir, &StdFs)
}

/// [`save_snapshot_legacy`] through an explicit [`PersistFs`]. Data
/// files are written first, the manifest last.
pub fn save_snapshot_legacy_with(
    snapshot: &Snapshot,
    dir: &Path,
    fs: &dyn PersistFs,
) -> Result<(), PersistError> {
    save_data_files(snapshot, dir, fs)?;
    save_manifest(snapshot, dir, fs)
}

/// Load a snapshot previously written by [`save_snapshot`] (preferring
/// the `snapshot.ctxr` arena file) with transparent fallback to the
/// legacy directory layout, including the pre-manifest generation
/// (which gets a fresh epoch).
pub fn load_snapshot(dir: &Path) -> Result<Arc<Snapshot>, PersistError> {
    load_snapshot_with(dir, &StdFs)
}

/// [`load_snapshot`] through an explicit [`PersistFs`]. Every injected
/// corruption surfaces as a typed [`PersistError`]; nothing panics.
pub fn load_snapshot_with(dir: &Path, fs: &dyn PersistFs) -> Result<Arc<Snapshot>, PersistError> {
    if fs.exists(&dir.join(F_ARENA)) {
        return load_arena_snapshot(dir, fs);
    }
    load_legacy_snapshot(dir, fs)
}

/// The zero-copy load path: read `snapshot.ctxr` once into an aligned
/// buffer, validate it (header, whole-file checksum, section bounds,
/// string-table invariants), and build the snapshot from views into
/// that buffer. No per-entry decode.
fn load_arena_snapshot(dir: &Path, fs: &dyn PersistFs) -> Result<Arc<Snapshot>, PersistError> {
    let bytes = read_file(fs, dir, F_ARENA)?;
    let buf = Arc::new(AlignedBuf::from_bytes(&bytes));
    drop(bytes);
    let decoded = arena::decode(buf).map_err(|detail| corrupt(F_ARENA, detail))?;
    let model: ctxrank_ltr::RankModel = serde_json::from_slice(&decoded.model_json)
        .map_err(|e| corrupt(F_ARENA, format!("model: {e}")))?;
    SnapshotBuilder::new()
        .interest(decoded.interest)
        .relevance(decoded.relevance)
        .tids(decoded.tids)
        .model(model)
        .epoch(decoded.epoch)
        .build()
        .map_err(|e| corrupt(F_ARENA, e.to_string()))
}

/// The legacy multi-file decode path.
fn load_legacy_snapshot(dir: &Path, fs: &dyn PersistFs) -> Result<Arc<Snapshot>, PersistError> {
    let interest = decode_interest(&mut Bytes::from(read_file(fs, dir, F_INTEREST)?))?;
    let relevance = decode_relevance(&mut Bytes::from(read_file(fs, dir, F_RELEVANCE)?))?;
    let tids = decode_tids(&mut Bytes::from(read_file(fs, dir, F_TIDS)?))?;
    let model_bytes = read_file(fs, dir, F_MODEL)?;
    let model: ctxrank_ltr::RankModel =
        serde_json::from_slice(&model_bytes).map_err(|e| corrupt(F_MODEL, e.to_string()))?;

    let mut builder = SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model);
    if fs.exists(&dir.join(F_MANIFEST)) {
        let bytes = read_file(fs, dir, F_MANIFEST)?;
        let manifest: SnapshotManifest =
            serde_json::from_slice(&bytes).map_err(|e| corrupt(F_MANIFEST, e.to_string()))?;
        if manifest.format == 0 || manifest.format > FORMAT_VERSION {
            return Err(corrupt(
                F_MANIFEST,
                format!("unsupported format version {}", manifest.format),
            ));
        }
        builder = builder.epoch(manifest.epoch);
    }
    builder.build().map_err(|e| corrupt(F_MODEL, e.to_string()))
}

/// Save every component of `ranker`'s snapshot into `dir`.
pub fn save_ranker(ranker: &RuntimeRanker, dir: &Path) -> Result<(), PersistError> {
    save_snapshot(ranker.snapshot(), dir)
}

/// Load a ranker previously written by [`save_ranker`].
pub fn load_ranker(dir: &Path) -> Result<RuntimeRanker, PersistError> {
    Ok(RuntimeRanker::from_snapshot(load_snapshot(dir)?))
}

/// Save a serving handle: its current snapshot plus the accumulated
/// online CTR state (`online.json`).
pub fn save_service(handle: &ServiceHandle, dir: &Path) -> Result<(), PersistError> {
    save_service_with(handle, dir, &StdFs)
}

/// [`save_service`] through an explicit [`PersistFs`]. Write order is
/// stage `snapshot.ctxr.tmp` → `online.json` → `propensity.bin` (when
/// a table is installed) → rename the arena into place, so a save that
/// fails at any point never clobbers the previous good snapshot.
pub fn save_service_with(
    handle: &ServiceHandle,
    dir: &Path,
    fs: &dyn PersistFs,
) -> Result<(), PersistError> {
    let snapshot = handle.current();
    fs.create_dir_all(dir)
        .map_err(io_err("snapshot directory"))?;
    write_file_tmp(fs, dir, F_ARENA, &encode_arena(&snapshot)?)?;
    let adjuster = handle.adjuster_state();
    let bytes =
        serde_json::to_vec_pretty(&adjuster).map_err(|e| corrupt(F_ONLINE, e.to_string()))?;
    write_file_atomic(fs, dir, F_ONLINE, &bytes)?;
    // The propensity table rides in its own checksummed binary, not in
    // online.json: JSON has no integrity check, and a flipped digit in
    // a weight would load as a silently skewed adjuster.
    if let Some(table) = adjuster.propensities() {
        write_file_atomic(fs, dir, F_PROPENSITY, &table.encode())?;
    }
    commit_file_tmp(fs, dir, F_ARENA)
}

/// Load a serving handle written by [`save_service`]. A plain snapshot
/// directory (no `online.json`) loads with an empty adjuster.
pub fn load_service(dir: &Path) -> Result<ServiceHandle, PersistError> {
    load_service_with(dir, &StdFs)
}

/// [`load_service`] through an explicit [`PersistFs`].
pub fn load_service_with(dir: &Path, fs: &dyn PersistFs) -> Result<ServiceHandle, PersistError> {
    let snapshot = load_snapshot_with(dir, fs)?;
    let mut adjuster = if fs.exists(&dir.join(F_ONLINE)) {
        let bytes = read_file(fs, dir, F_ONLINE)?;
        serde_json::from_slice::<OnlineCtrAdjuster>(&bytes)
            .map_err(|e| corrupt(F_ONLINE, e.to_string()))?
    } else {
        OnlineCtrAdjuster::default()
    };
    if fs.exists(&dir.join(F_PROPENSITY)) {
        let bytes = read_file(fs, dir, F_PROPENSITY)?;
        let table = crate::propensity::PropensityTable::decode(&bytes)
            .map_err(|e| corrupt(F_PROPENSITY, e.to_string()))?;
        adjuster.set_propensities(table);
    }
    Ok(ServiceHandle::with_adjuster(snapshot, adjuster))
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes, file: &'static str) -> Result<String, PersistError> {
    check(buf, 4, file, "string length")?;
    let len = buf.get_u32_le() as usize;
    check(buf, len, file, "string body")?;
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(file, "invalid utf-8"))
}

fn encode_interest(store: &PackedInterestStore) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(store.quantizers.len() as u32);
    for q in store.quantizers.iter() {
        buf.put_f64_le(q.lo);
        buf.put_f64_le(q.hi);
    }
    buf.put_u32_le(store.names.len() as u32);
    // Rows are already in dense slot order, so the file is reproducible.
    for (slot, surface) in store.names.iter().enumerate() {
        put_string(&mut buf, surface);
        buf.put_u32_le(slot as u32);
    }
    buf.put_u64_le(store.data.len() as u64);
    buf.put_slice(&store.data);
    buf.to_vec()
}

fn decode_interest(buf: &mut Bytes) -> Result<PackedInterestStore, PersistError> {
    const FILE: &str = F_INTEREST;
    check(buf, 8, FILE, "header")?;
    if buf.get_u32_le() != MAGIC {
        return Err(corrupt(FILE, "bad magic"));
    }
    let nq = buf.get_u32_le() as usize;
    if nq != ctxrank_features::InterestFeatures::DIM {
        return Err(corrupt(FILE, "quantizer count mismatch"));
    }
    let mut qs = Vec::with_capacity(nq);
    for _ in 0..nq {
        check(buf, 16, FILE, "quantizer")?;
        let lo = buf.get_f64_le();
        let hi = buf.get_f64_le();
        if !lo.is_finite() || !hi.is_finite() || hi < lo {
            return Err(corrupt(FILE, "invalid quantizer range"));
        }
        qs.push(FieldQuantizer::new(lo, hi));
    }
    let quantizers: [FieldQuantizer; ctxrank_features::InterestFeatures::DIM] = qs
        .try_into()
        .map_err(|_| corrupt(FILE, "quantizer count mismatch"))?;
    check(buf, 4, FILE, "index size")?;
    let n = buf.get_u32_le() as usize;
    // An entry is at least a 4-byte length + 4-byte slot; a corrupted
    // count cannot force a giant allocation.
    let mut surfaces = Vec::with_capacity(cap_alloc(n, buf, 8));
    for i in 0..n {
        let surface = get_string(buf, FILE)?;
        check(buf, 4, FILE, "slot")?;
        let slot = buf.get_u32_le();
        // The writer always emits dense slots in order; anything else
        // means the file was tampered with or corrupted.
        if slot as usize != i {
            return Err(corrupt(FILE, format!("non-dense slot {slot} at entry {i}")));
        }
        surfaces.push(surface);
    }
    check(buf, 8, FILE, "data length")?;
    let len = buf.get_u64_le() as usize;
    check(buf, len, FILE, "data")?;
    if len != n * BYTES_PER_CONCEPT {
        return Err(corrupt(FILE, format!("data is {len} B for {n} concepts")));
    }
    let data = buf.copy_to_bytes(len).to_vec();
    Ok(PackedInterestStore {
        names: StrTable::build(surfaces.iter().map(String::as_str)),
        data: ByteSlab::Owned(data),
        quantizers,
    })
}

fn encode_relevance(store: &PackedRelevanceStore) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_f64_le(store.score_scale);
    buf.put_u32_le(store.names.len() as u32);
    // Rows are in build order, which is also ascending range order.
    for (i, surface) in store.names.iter().enumerate() {
        put_string(&mut buf, surface);
        buf.put_u32_le(store.starts[i]);
        buf.put_u32_le(store.starts[i + 1]);
    }
    buf.put_u64_le(store.pairs.len() as u64);
    for &p in store.pairs.iter() {
        buf.put_u32_le(p);
    }
    buf.to_vec()
}

fn decode_relevance(buf: &mut Bytes) -> Result<PackedRelevanceStore, PersistError> {
    const FILE: &str = F_RELEVANCE;
    check(buf, 16, FILE, "header")?;
    if buf.get_u32_le() != MAGIC {
        return Err(corrupt(FILE, "bad magic"));
    }
    let score_scale = buf.get_f64_le();
    if !score_scale.is_finite() {
        return Err(corrupt(FILE, "score scale is not finite"));
    }
    let n = buf.get_u32_le() as usize;
    let mut surfaces = Vec::with_capacity(cap_alloc(n, buf, 12));
    let mut starts = Vec::with_capacity(cap_alloc(n, buf, 12) + 1);
    starts.push(0u32);
    for _ in 0..n {
        let surface = get_string(buf, FILE)?;
        check(buf, 8, FILE, "range")?;
        let start = buf.get_u32_le();
        let end = buf.get_u32_le();
        if end < start {
            return Err(corrupt(FILE, "inverted range"));
        }
        // The writer emits contiguous ranges in order; a gap or overlap
        // means the file was tampered with or corrupted.
        if start != *starts.last().expect("non-empty") {
            return Err(corrupt(FILE, "non-contiguous range"));
        }
        starts.push(end);
        surfaces.push(surface);
    }
    check(buf, 8, FILE, "pair count")?;
    let len = buf.get_u64_le() as usize;
    // `len * 4` on a corrupted u64 could wrap past the `check` below;
    // use the checked product so corruption stays a typed error.
    let pair_bytes = len
        .checked_mul(4)
        .ok_or_else(|| corrupt(FILE, "pair count overflow"))?;
    check(buf, pair_bytes, FILE, "pairs")?;
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        pairs.push(buf.get_u32_le());
    }
    if *starts.last().expect("non-empty") as usize != pairs.len() {
        return Err(corrupt(FILE, "range out of bounds"));
    }
    Ok(PackedRelevanceStore {
        names: StrTable::build(surfaces.iter().map(String::as_str)),
        starts: U32Slab::Owned(starts),
        pairs: U32Slab::Owned(pairs),
        score_scale,
    })
}

fn encode_tids(table: &GlobalTidTable) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(table.len() as u32);
    for term in table.iter_terms() {
        put_string(&mut buf, term);
    }
    buf.to_vec()
}

fn decode_tids(buf: &mut Bytes) -> Result<GlobalTidTable, PersistError> {
    const FILE: &str = F_TIDS;
    check(buf, 8, FILE, "header")?;
    if buf.get_u32_le() != MAGIC {
        return Err(corrupt(FILE, "bad magic"));
    }
    let n = buf.get_u32_le() as usize;
    let mut terms = Vec::with_capacity(cap_alloc(n, buf, 4));
    for _ in 0..n {
        terms.push(get_string(buf, FILE)?);
    }
    Ok(GlobalTidTable::from_terms(terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_features::{InterestFeatures, RelevantTerms};
    use ctxrank_ltr::{train, RankGroup, SvmConfig};

    fn sample_ranker() -> RuntimeRanker {
        let concepts: Vec<(String, InterestFeatures)> = (0..12)
            .map(|i| {
                (
                    format!("concept {i}"),
                    InterestFeatures {
                        freq_exact: i * 31,
                        wiki_word_count: (i * 97) as u32,
                        ..InterestFeatures::default()
                    },
                )
            })
            .collect();
        let interest = PackedInterestStore::build(&concepts);
        let mut tids = GlobalTidTable::new();
        let sets: Vec<(String, RelevantTerms)> = (0..12)
            .map(|i| {
                (
                    format!("concept {i}"),
                    RelevantTerms {
                        terms: (0..8)
                            .map(|j| (format!("kw{}", i + j), 1.0 + j as f64))
                            .collect(),
                    },
                )
            })
            .collect();
        let relevance =
            PackedRelevanceStore::build(sets.iter().map(|(s, r)| (s.as_str(), r)), &mut tids);
        let groups: Vec<RankGroup> = (0..10)
            .map(|g| {
                RankGroup::from_pairs((0..3).map(|i| {
                    let mut f = vec![0.0; 10];
                    f[0] = (g + i) as f64;
                    (f, i as f64 * 0.01)
                }))
            })
            .collect();
        let model = train(&groups, &SvmConfig::default());
        RuntimeRanker::new(interest, relevance, tids, model)
    }

    #[test]
    fn save_load_roundtrip_preserves_scores() {
        let ranker = sample_ranker();
        let dir = std::env::temp_dir().join(format!("ctxrank_persist_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        let loaded = load_ranker(&dir).expect("load");

        let candidates: Vec<String> = (0..12).map(|i| format!("concept {i}")).collect();
        let text = "kw1 kw5 kw9 filler words here";
        let a = ranker.rank(text, &candidates);
        let b = loaded.rank(text, &candidates);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.surface, y.surface);
            assert!(
                (x.score - y.score).abs() < 1e-12,
                "{} vs {}",
                x.score,
                y.score
            );
            assert!((x.relevance - y.relevance).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_preserves_epoch() {
        let ranker = sample_ranker();
        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_epoch_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        let loaded = load_ranker(&dir).expect("load");
        assert_eq!(loaded.epoch(), ranker.epoch());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arena_save_writes_single_file() {
        let ranker = sample_ranker();
        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_arena_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        assert!(dir.join(F_ARENA).exists(), "arena file written");
        assert!(!dir.join(F_INTEREST).exists(), "no legacy data files");
        assert!(!dir.join(F_MANIFEST).exists(), "no legacy manifest");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_save_roundtrips_and_matches_arena() {
        let ranker = sample_ranker();
        let dir = std::env::temp_dir().join(format!("ctxrank_persist_both_{}", std::process::id()));
        save_snapshot_legacy(ranker.snapshot(), &dir).expect("legacy save");
        assert!(!dir.join(F_ARENA).exists());
        let legacy = load_ranker(&dir).expect("legacy load");
        save_ranker(&ranker, &dir).expect("arena save");
        let arena = load_ranker(&dir).expect("arena load");

        let candidates: Vec<String> = (0..12).map(|i| format!("concept {i}")).collect();
        let text = "kw1 kw5 kw9 filler words here";
        let a = legacy.rank(text, &candidates);
        let b = arena.rank(text, &candidates);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.surface, y.surface);
            assert_eq!(x.score, y.score, "legacy and arena loads must agree");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_directory_without_manifest_loads() {
        let ranker = sample_ranker();
        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_legacy_{}", std::process::id()));
        save_snapshot_legacy(ranker.snapshot(), &dir).expect("save");
        std::fs::remove_file(dir.join("snapshot.json")).expect("remove manifest");
        let loaded = load_ranker(&dir).expect("legacy load");
        // A legacy artifact has no recorded epoch; it gets a fresh one.
        assert!(loaded.epoch() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let ranker = sample_ranker();
        let dir = std::env::temp_dir().join(format!("ctxrank_persist_bad_{}", std::process::id()));
        save_snapshot_legacy(ranker.snapshot(), &dir).expect("save");
        // Flip the magic of relevance.bin.
        let path = dir.join("relevance.bin");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] ^= 0xFF;
        std::fs::write(&path, bytes).expect("write");
        match load_ranker(&dir) {
            Err(PersistError::Corrupt { file, .. }) => assert_eq!(file, "relevance.bin"),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let ranker = sample_ranker();
        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_trunc_{}", std::process::id()));
        save_snapshot_legacy(ranker.snapshot(), &dir).expect("save");
        let path = dir.join("interest.bin");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write");
        match load_ranker(&dir) {
            Err(PersistError::Corrupt { file, detail }) => {
                assert_eq!(file, "interest.bin");
                assert!(detail.contains("truncated"), "{detail}");
            }
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arena_bit_flip_rejected_everywhere() {
        let ranker = sample_ranker();
        let dir = std::env::temp_dir().join(format!("ctxrank_persist_flip_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        let path = dir.join(F_ARENA);
        let good = std::fs::read(&path).expect("read");
        // Flip one bit at positions spread across the whole file: the
        // checksum (or a structural check) must reject every one.
        let step = (good.len() / 23).max(1);
        for byte in (0..good.len()).step_by(step) {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            std::fs::write(&path, &bad).expect("write");
            match load_ranker(&dir) {
                Err(PersistError::Corrupt { file, .. }) => assert_eq!(file, F_ARENA),
                other => panic!("bit flip at byte {byte} not rejected: {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arena_truncation_rejected() {
        let ranker = sample_ranker();
        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_atrunc_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        let path = dir.join(F_ARENA);
        let good = std::fs::read(&path).expect("read");
        for keep in [0, 7, 47, 48, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..keep]).expect("write");
            match load_ranker(&dir) {
                Err(PersistError::Corrupt { file, .. }) => assert_eq!(file, F_ARENA),
                other => panic!("truncation to {keep} B not rejected: {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_errors() {
        match load_ranker(Path::new("/nonexistent/ctxrank")) {
            Err(PersistError::Io { file, .. }) => assert_eq!(file, "interest.bin"),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn service_roundtrip_preserves_adjuster() {
        let ranker = sample_ranker();
        let handle = ServiceHandle::new(ranker.snapshot().clone());
        for _ in 0..40 {
            handle.record_feedback("concept 3", 1000, 20);
        }
        for _ in 0..3 {
            handle.record_feedback("concept 3", 1000, 160);
        }
        let boost = handle.adjustment("concept 3");
        assert!(boost > 0.5, "expected a boost, got {boost}");

        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_service_{}", std::process::id()));
        save_service(&handle, &dir).expect("save service");
        let restored = load_service(&dir).expect("load service");
        assert_eq!(restored.epoch(), handle.epoch());
        assert!(
            (restored.adjustment("concept 3") - boost).abs() < 1e-12,
            "restart must not drop online CTR state"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn service_roundtrip_preserves_propensity_table() {
        use crate::propensity::PropensityTable;

        let ranker = sample_ranker();
        let handle = ServiceHandle::new(ranker.snapshot().clone());
        let table =
            PropensityTable::from_examination(&[0.9, 0.45, 0.15, 0.05], 7.5).expect("valid table");
        handle.install_propensities(table.clone());
        for _ in 0..5 {
            handle.record_feedback_ranked("concept 3", 2, 1000, 20);
        }
        let est = handle
            .adjuster_state()
            .ctr_estimate("concept 3")
            .expect("recorded");

        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_propensity_{}", std::process::id()));
        save_service(&handle, &dir).expect("save service");
        assert!(dir.join(F_PROPENSITY).exists(), "propensity.bin written");
        // online.json stays propensity-free (backward-compatible shape).
        let online = std::fs::read_to_string(dir.join(F_ONLINE)).expect("online.json");
        assert!(!online.contains("propensity"), "{online}");

        let restored = load_service(&dir).expect("load service");
        assert_eq!(restored.propensity_ranks(), 4);
        let restored_adj = restored.adjuster_state();
        assert_eq!(restored_adj.propensities(), Some(&table));
        assert_eq!(restored_adj.ctr_estimate("concept 3"), Some(est));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_propensity_file_is_a_typed_corrupt_never_skewed() {
        use crate::propensity::PropensityTable;

        let ranker = sample_ranker();
        let handle = ServiceHandle::new(ranker.snapshot().clone());
        handle.install_propensities(
            PropensityTable::from_examination(&[1.0, 0.5, 0.25], 10.0).expect("valid table"),
        );
        let dir = std::env::temp_dir().join(format!(
            "ctxrank_persist_propensity_damage_{}",
            std::process::id()
        ));
        save_service(&handle, &dir).expect("save service");
        let path = dir.join(F_PROPENSITY);
        let clean = std::fs::read(&path).expect("read propensity.bin");

        // Bit flip in the middle of a weight.
        let mut flipped = clean.clone();
        flipped[20] ^= 0x08;
        std::fs::write(&path, &flipped).expect("write");
        match load_service(&dir) {
            Err(PersistError::Corrupt { file, .. }) => assert_eq!(file, F_PROPENSITY),
            other => panic!("expected Corrupt(propensity.bin), got {other:?}"),
        }

        // Torn tail.
        std::fs::write(&path, &clean[..clean.len() - 3]).expect("write");
        match load_service(&dir) {
            Err(PersistError::Corrupt { file, .. }) => assert_eq!(file, F_PROPENSITY),
            other => panic!("expected Corrupt(propensity.bin), got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
