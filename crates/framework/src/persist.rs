//! Persistence for the production framework.
//!
//! The §VI framework splits work into an *offline* stage (feature
//! extraction, relevance mining, model training, store packing) and an
//! *online* stage (detection + ranking under strict latency budgets).
//! That split implies a hand-off artifact: the frozen stores and the
//! trained model written by the offline pipeline and memory-mapped or
//! loaded by the serving fleet.
//!
//! [`save_ranker`]/[`load_ranker`] implement that artifact as a
//! directory:
//!
//! * `interest.bin` — the packed interestingness vectors with their
//!   field quantizers (little-endian binary, built with `bytes`);
//! * `relevance.bin` — the packed `(TID, score)` store;
//! * `tids.bin` — the Global TID Table (term list; ids are dense);
//! * `model.json` — the linear ranking model (scaler + weights).

use crate::packed::{FieldQuantizer, PackedInterestStore};
use crate::ranker::RuntimeRanker;
use crate::relstore::PackedRelevanceStore;
use crate::tid::{GlobalTidTable, TermId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::io;
use std::path::Path;

const MAGIC: u32 = 0x12DE_2009;

/// Save every component of `ranker` into `dir` (created if missing).
pub fn save_ranker(ranker: &RuntimeRanker, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("interest.bin"), encode_interest(&ranker.interest))?;
    std::fs::write(
        dir.join("relevance.bin"),
        encode_relevance(&ranker.relevance),
    )?;
    std::fs::write(dir.join("tids.bin"), encode_tids(&ranker.tids))?;
    let model = serde_json::to_vec_pretty(&ranker.model)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(dir.join("model.json"), model)?;
    Ok(())
}

/// Load a ranker previously written by [`save_ranker`].
pub fn load_ranker(dir: &Path) -> io::Result<RuntimeRanker> {
    let interest = decode_interest(&mut Bytes::from(std::fs::read(dir.join("interest.bin"))?))?;
    let relevance = decode_relevance(&mut Bytes::from(std::fs::read(dir.join("relevance.bin"))?))?;
    let tids = decode_tids(&mut Bytes::from(std::fs::read(dir.join("tids.bin"))?))?;
    let model: ctxrank_ltr::RankModel =
        serde_json::from_slice(&std::fs::read(dir.join("model.json"))?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(RuntimeRanker::new(interest, relevance, tids, model))
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn check(buf: &mut Bytes, need: usize, what: &str) -> io::Result<()> {
    if buf.remaining() < need {
        return Err(bad_data(&format!("truncated {what}")));
    }
    Ok(())
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> io::Result<String> {
    check(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    check(buf, len, "string body")?;
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("invalid utf-8"))
}

fn encode_interest(store: &PackedInterestStore) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(store.quantizers.len() as u32);
    for q in store.quantizers.iter() {
        buf.put_f64_le(q.lo);
        buf.put_f64_le(q.hi);
    }
    buf.put_u32_le(store.index.len() as u32);
    // Deterministic order: sort by slot so files are reproducible.
    let mut entries: Vec<(&String, &u32)> = store.index.iter().collect();
    entries.sort_by_key(|(_, &slot)| slot);
    for (surface, &slot) in entries {
        put_string(&mut buf, surface);
        buf.put_u32_le(slot);
    }
    buf.put_u64_le(store.data.len() as u64);
    buf.put_slice(&store.data);
    buf.to_vec()
}

fn decode_interest(buf: &mut Bytes) -> io::Result<PackedInterestStore> {
    check(buf, 8, "interest header")?;
    if buf.get_u32_le() != MAGIC {
        return Err(bad_data("interest.bin: bad magic"));
    }
    let nq = buf.get_u32_le() as usize;
    if nq != ctxrank_features::InterestFeatures::DIM {
        return Err(bad_data("interest.bin: quantizer count mismatch"));
    }
    let quantizers: [FieldQuantizer; ctxrank_features::InterestFeatures::DIM] = {
        let mut qs = Vec::with_capacity(nq);
        for _ in 0..nq {
            check(buf, 16, "quantizer")?;
            let lo = buf.get_f64_le();
            let hi = buf.get_f64_le();
            if !lo.is_finite() || !hi.is_finite() || hi < lo {
                return Err(bad_data("interest.bin: invalid quantizer range"));
            }
            qs.push(FieldQuantizer::new(lo, hi));
        }
        qs.try_into().expect("length checked")
    };
    check(buf, 4, "interest index size")?;
    let n = buf.get_u32_le() as usize;
    let mut index = HashMap::with_capacity(n);
    for _ in 0..n {
        let surface = get_string(buf)?;
        check(buf, 4, "interest slot")?;
        index.insert(surface, buf.get_u32_le());
    }
    check(buf, 8, "interest data length")?;
    let len = buf.get_u64_le() as usize;
    check(buf, len, "interest data")?;
    let data = buf.copy_to_bytes(len).to_vec();
    Ok(PackedInterestStore {
        index,
        data,
        quantizers,
    })
}

fn encode_relevance(store: &PackedRelevanceStore) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_f64_le(store.score_scale);
    buf.put_u32_le(store.index.len() as u32);
    let mut entries: Vec<(&String, &(u32, u32))> = store.index.iter().collect();
    entries.sort_by_key(|(_, &(s, _))| s);
    for (surface, &(start, end)) in entries {
        put_string(&mut buf, surface);
        buf.put_u32_le(start);
        buf.put_u32_le(end);
    }
    buf.put_u64_le(store.pairs.len() as u64);
    for &p in &store.pairs {
        buf.put_u32_le(p);
    }
    buf.to_vec()
}

fn decode_relevance(buf: &mut Bytes) -> io::Result<PackedRelevanceStore> {
    check(buf, 16, "relevance header")?;
    if buf.get_u32_le() != MAGIC {
        return Err(bad_data("relevance.bin: bad magic"));
    }
    let score_scale = buf.get_f64_le();
    let n = buf.get_u32_le() as usize;
    let mut index = HashMap::with_capacity(n);
    for _ in 0..n {
        let surface = get_string(buf)?;
        check(buf, 8, "relevance range")?;
        let start = buf.get_u32_le();
        let end = buf.get_u32_le();
        if end < start {
            return Err(bad_data("relevance.bin: inverted range"));
        }
        index.insert(surface, (start, end));
    }
    check(buf, 8, "relevance pair count")?;
    let len = buf.get_u64_le() as usize;
    check(buf, len * 4, "relevance pairs")?;
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        pairs.push(buf.get_u32_le());
    }
    for &(s, e) in index.values() {
        if e as usize > pairs.len() || s > e {
            return Err(bad_data("relevance.bin: range out of bounds"));
        }
    }
    Ok(PackedRelevanceStore {
        index,
        pairs,
        score_scale,
    })
}

fn encode_tids(table: &GlobalTidTable) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(table.terms.len() as u32);
    for term in &table.terms {
        put_string(&mut buf, term);
    }
    buf.to_vec()
}

fn decode_tids(buf: &mut Bytes) -> io::Result<GlobalTidTable> {
    check(buf, 8, "tid header")?;
    if buf.get_u32_le() != MAGIC {
        return Err(bad_data("tids.bin: bad magic"));
    }
    let n = buf.get_u32_le() as usize;
    let mut terms = Vec::with_capacity(n);
    let mut ids = HashMap::with_capacity(n);
    for i in 0..n {
        let term = get_string(buf)?;
        ids.insert(term.clone(), TermId(i as u32));
        terms.push(term);
    }
    Ok(GlobalTidTable { ids, terms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_features::{InterestFeatures, RelevantTerms};
    use ctxrank_ltr::{train, RankGroup, SvmConfig};

    fn sample_ranker() -> RuntimeRanker {
        let concepts: Vec<(String, InterestFeatures)> = (0..12)
            .map(|i| {
                (
                    format!("concept {i}"),
                    InterestFeatures {
                        freq_exact: i * 31,
                        wiki_word_count: (i * 97) as u32,
                        ..InterestFeatures::default()
                    },
                )
            })
            .collect();
        let interest = PackedInterestStore::build(&concepts);
        let mut tids = GlobalTidTable::new();
        let sets: Vec<(String, RelevantTerms)> = (0..12)
            .map(|i| {
                (
                    format!("concept {i}"),
                    RelevantTerms {
                        terms: (0..8)
                            .map(|j| (format!("kw{}", i + j), 1.0 + j as f64))
                            .collect(),
                    },
                )
            })
            .collect();
        let relevance =
            PackedRelevanceStore::build(sets.iter().map(|(s, r)| (s.as_str(), r)), &mut tids);
        let groups: Vec<RankGroup> = (0..10)
            .map(|g| {
                RankGroup::from_pairs((0..3).map(|i| {
                    let mut f = vec![0.0; 10];
                    f[0] = (g + i) as f64;
                    (f, i as f64 * 0.01)
                }))
            })
            .collect();
        let model = train(&groups, &SvmConfig::default());
        RuntimeRanker::new(interest, relevance, tids, model)
    }

    #[test]
    fn save_load_roundtrip_preserves_scores() {
        let ranker = sample_ranker();
        let dir = std::env::temp_dir().join(format!("ctxrank_persist_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        let loaded = load_ranker(&dir).expect("load");

        let candidates: Vec<String> = (0..12).map(|i| format!("concept {i}")).collect();
        let text = "kw1 kw5 kw9 filler words here";
        let a = ranker.rank(text, &candidates);
        let b = loaded.rank(text, &candidates);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.surface, y.surface);
            assert!(
                (x.score - y.score).abs() < 1e-12,
                "{} vs {}",
                x.score,
                y.score
            );
            assert!((x.relevance - y.relevance).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let ranker = sample_ranker();
        let dir = std::env::temp_dir().join(format!("ctxrank_persist_bad_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        // Flip the magic of relevance.bin.
        let path = dir.join("relevance.bin");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] ^= 0xFF;
        std::fs::write(&path, bytes).expect("write");
        assert!(load_ranker(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let ranker = sample_ranker();
        let dir =
            std::env::temp_dir().join(format!("ctxrank_persist_trunc_{}", std::process::id()));
        save_ranker(&ranker, &dir).expect("save");
        let path = dir.join("interest.bin");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write");
        assert!(load_ranker(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_errors() {
        assert!(load_ranker(Path::new("/nonexistent/ctxrank")).is_err());
    }
}
