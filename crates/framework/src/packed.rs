//! Packed interestingness vectors — 2 bytes per field, 18 per concept.
//!
//! §VI: "For each concept we have in the system, we first compute the
//! values for these features in the offline process, and employ a
//! normalization that would fit each field to two bytes (this causes a
//! minor decrease in granularity). So the interestingness vectors for 1
//! million concepts would cost 18MB in memory; with the use of efficient
//! data structures, such as hash tables, the vectors for the detected
//! concepts can be retrieved in constant time."

use crate::arena::{ByteSlab, StrTable};
use ctxrank_features::InterestFeatures;

/// Bytes used per concept (9 fields × 2 bytes).
pub const BYTES_PER_CONCEPT: usize = InterestFeatures::DIM * 2;

/// Linear quantizer for one feature field: maps `[lo, hi]` onto
/// `0..=u16::MAX`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldQuantizer {
    pub(crate) lo: f64,
    pub(crate) hi: f64,
}

impl FieldQuantizer {
    /// Fit to a range.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && hi >= lo);
        Self { lo, hi }
    }

    /// Fit to the observed range of an iterator of values.
    pub fn fit(values: impl IntoIterator<Item = f64>) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() {
            // No values: a degenerate quantizer.
            return Self { lo: 0.0, hi: 0.0 };
        }
        Self { lo, hi }
    }

    /// Quantize (clamping out-of-range values).
    pub fn quantize(&self, v: f64) -> u16 {
        if self.hi <= self.lo {
            return 0;
        }
        let frac = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        (frac * u16::MAX as f64).round() as u16
    }

    /// Reconstruct the midpoint value of a quantized cell.
    pub fn dequantize(&self, q: u16) -> f64 {
        self.lo + (q as f64 / u16::MAX as f64) * (self.hi - self.lo)
    }
}

/// The packed per-concept feature store. Concept `i` (dense slot order
/// = build order) owns bytes `i*18..(i+1)*18` of `data`; the surface →
/// slot index is a [`StrTable`], so an arena-loaded store is a pure
/// view into the snapshot buffer.
#[derive(Debug, Clone)]
pub struct PackedInterestStore {
    pub(crate) names: StrTable,
    /// 18 bytes per concept, contiguous.
    pub(crate) data: ByteSlab,
    pub(crate) quantizers: [FieldQuantizer; InterestFeatures::DIM],
}

impl PackedInterestStore {
    /// Build the store from `(surface, features)` pairs. The quantizers
    /// are fitted per field over the full concept set, as the offline
    /// process would.
    pub fn build(concepts: &[(String, InterestFeatures)]) -> Self {
        let dense: Vec<Vec<f64>> = concepts.iter().map(|(_, f)| f.to_dense()).collect();
        let quantizers: [FieldQuantizer; InterestFeatures::DIM] =
            std::array::from_fn(|d| FieldQuantizer::fit(dense.iter().map(|row| row[d])));

        let names = StrTable::build(concepts.iter().map(|(s, _)| s.as_str()));
        let mut data = Vec::with_capacity(concepts.len() * BYTES_PER_CONCEPT);
        for row in &dense {
            for (d, &v) in row.iter().enumerate() {
                let q = quantizers[d].quantize(v);
                data.extend_from_slice(&q.to_le_bytes());
            }
        }
        Self {
            names,
            data: ByteSlab::Owned(data),
            quantizers,
        }
    }

    /// Number of concepts stored.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.len() == 0
    }

    /// Bytes consumed by the packed vectors (excluding the hash index).
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Reconstruct a concept's dense feature row (with quantization
    /// error), or `None` for unknown surfaces.
    pub fn dense(&self, surface: &str) -> Option<Vec<f64>> {
        let i = self.names.lookup(surface)?;
        let base = i as usize * BYTES_PER_CONCEPT;
        let row = (0..InterestFeatures::DIM)
            .map(|d| {
                let o = base + d * 2;
                let q = u16::from_le_bytes([self.data[o], self.data[o + 1]]);
                self.quantizers[d].dequantize(q)
            })
            .collect();
        Some(row)
    }

    /// The fitted quantizers.
    pub fn quantizers(&self) -> &[FieldQuantizer; InterestFeatures::DIM] {
        &self.quantizers
    }

    /// Whether `surface` has a stored feature row.
    pub fn contains(&self, surface: &str) -> bool {
        self.names.lookup(surface).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_features(seed: u64) -> InterestFeatures {
        InterestFeatures {
            freq_exact: seed * 10,
            freq_phrase_contained: seed * 15,
            unit_score: (seed as f64 * 0.1) % 1.0,
            searchengine_phrase: seed * 3,
            concept_size: (seed % 3 + 1) as u32,
            number_of_chars: (seed % 20 + 4) as u32,
            subconcepts: (seed % 2) as u32,
            high_level_type: (seed % 7) as u8,
            wiki_word_count: (seed * 100 % 5000) as u32,
        }
    }

    fn store() -> (Vec<(String, InterestFeatures)>, PackedInterestStore) {
        let concepts: Vec<(String, InterestFeatures)> = (0..50)
            .map(|i| (format!("concept {i}"), sample_features(i)))
            .collect();
        let store = PackedInterestStore::build(&concepts);
        (concepts, store)
    }

    #[test]
    fn eighteen_bytes_per_concept() {
        let (_, store) = store();
        assert_eq!(BYTES_PER_CONCEPT, 18);
        assert_eq!(store.packed_bytes(), 50 * 18);
    }

    #[test]
    fn roundtrip_is_close() {
        let (concepts, store) = store();
        for (surface, f) in &concepts {
            let original = f.to_dense();
            let packed = store.dense(surface).expect("stored concept");
            for (a, b) in original.iter().zip(&packed) {
                // "Minor decrease in granularity": relative error bounded
                // by one quantization cell.
                assert!(
                    (a - b).abs() <= 1e-3 * (1.0 + a.abs()),
                    "{surface}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn unknown_surface_none() {
        let (_, store) = store();
        assert!(store.dense("never stored").is_none());
    }

    #[test]
    fn quantizer_clamps() {
        let q = FieldQuantizer::new(0.0, 10.0);
        assert_eq!(q.quantize(-5.0), 0);
        assert_eq!(q.quantize(15.0), u16::MAX);
        assert!((q.dequantize(q.quantize(5.0)) - 5.0).abs() < 0.01);
    }

    #[test]
    fn degenerate_quantizer() {
        let q = FieldQuantizer::fit(std::iter::empty());
        assert_eq!(q.quantize(3.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
        let constant = FieldQuantizer::fit([4.0, 4.0]);
        assert_eq!(constant.quantize(4.0), 0);
        assert_eq!(constant.dequantize(0), 4.0);
    }

    #[test]
    fn million_concept_extrapolation_matches_paper() {
        // 1M concepts × 18 B = 18 MB, as §VI states.
        let bytes = 1_000_000usize * BYTES_PER_CONCEPT;
        assert_eq!(bytes, 18_000_000);
    }
}
