//! Sharding a [`Snapshot`] by `TermId` range, and the two-phase epoch
//! barrier sharded publishes go through.
//!
//! One process on one box caps how many concepts the framework can
//! serve. The scale-out step splits the frozen artifact across N shard
//! processes: each shard owns the concepts whose *lowest relevance
//! keyword TID* falls in its range of the dense TID space (the PR 2
//! interning makes that partition key free — pairs are stored sorted by
//! packed value with the TID in the high bits, so a concept's first
//! pair names its lowest keyword). Concepts with no keywords fall back
//! to shard 0, so the shards form an exact disjoint cover of the full
//! concept set.
//!
//! **Bit-identity.** A shard snapshot is a *row slice* of the full
//! snapshot, not a rebuild: the packed 18-byte interest rows and packed
//! relevance pairs are copied verbatim, the interest quantizers and the
//! relevance `score_scale` stay the *global* values fitted over the
//! full set, and every shard carries the full Global TID Table and the
//! same trained model. Ranking an owned candidate on its shard is
//! therefore bit-identical to ranking it on the full snapshot — the
//! property the scatter-gather router's merged top-k relies on.
//! Candidates a shard does not own rank with zeroed features and zero
//! relevance, exactly as the full snapshot ranks a globally unknown
//! surface — so an unknown candidate also produces the same bits on
//! every shard.
//!
//! **Epochs.** Every shard partition is pinned to the source snapshot's
//! epoch, so "the fleet serves epoch E" is a meaningful cross-process
//! statement. A publish to E+1 is a two-phase barrier driven by the
//! router or an operator: *prepare* stages the shard's E+1 partition in
//! an [`EpochBarrier`] (validated monotone against the serving epoch),
//! then *commit* flips it into the shard's `SwapCell` atomically. The
//! barrier holds at most one staged snapshot; a re-prepare replaces it
//! (idempotent retries), and a commit names the epoch it expects so a
//! crashed or repeated driver cannot flip the wrong artifact.

use crate::arena::{ByteSlab, StrTable, U32Slab};
use crate::packed::{PackedInterestStore, BYTES_PER_CONCEPT};
use crate::relstore::PackedRelevanceStore;
use crate::snapshot::{Snapshot, SnapshotBuilder, SnapshotError};
use parking_lot::Mutex;
use std::sync::Arc;

/// The TID range one shard owns: `tid_lo..tid_hi` over the dense TID
/// space (`0..tids.len()`), exclusive on the right. Published in a
/// shard's `/healthz` so operators can see the partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBounds {
    /// This shard's index, `0..shards`.
    pub shard: usize,
    /// Total shard count in the partition.
    pub shards: usize,
    /// Inclusive lower TID bound.
    pub tid_lo: u32,
    /// Exclusive upper TID bound.
    pub tid_hi: u32,
}

/// Per-shard range width over a dense TID space. The span is computed
/// over the *actual* interned term count, not the 22-bit id ceiling, so
/// small snapshots still spread across shards instead of collapsing
/// onto shard 0.
fn span(tid_space: usize, shards: usize) -> usize {
    tid_space.div_ceil(shards).max(1)
}

/// The shard owning `tid` in a `shards`-way partition of `tid_space`
/// dense ids. Out-of-space ids clamp to the last shard (they cannot
/// occur for pairs interned against the same table).
pub fn shard_of_tid(tid: u32, tid_space: usize, shards: usize) -> usize {
    ((tid as usize) / span(tid_space, shards)).min(shards.saturating_sub(1))
}

impl ShardBounds {
    /// Bounds of `shard` in a `shards`-way split of `tid_space` ids.
    pub fn of(shard: usize, shards: usize, tid_space: usize) -> Self {
        let w = span(tid_space, shards);
        Self {
            shard,
            shards,
            tid_lo: (shard * w).min(tid_space) as u32,
            tid_hi: ((shard + 1) * w).min(tid_space) as u32,
        }
    }

    /// Whether `tid` falls in this shard's range.
    pub fn owns_tid(&self, tid: u32) -> bool {
        self.tid_lo <= tid && tid < self.tid_hi
    }
}

/// Why a snapshot could not be partitioned.
#[derive(Debug)]
pub enum PartitionError {
    /// A zero-shard partition is meaningless.
    ZeroShards,
    /// Assembling a shard snapshot failed (cannot happen for a snapshot
    /// that itself passed `build()`, but surfaced rather than unwrapped).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroShards => write!(f, "cannot partition into zero shards"),
            PartitionError::Snapshot(e) => write!(f, "shard snapshot assembly failed: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::ZeroShards => None,
            PartitionError::Snapshot(e) => Some(e),
        }
    }
}

/// One shard of a partitioned snapshot: its TID bounds and its sliced,
/// epoch-pinned artifact (save it with `save_snapshot` like any other).
#[derive(Debug, Clone)]
pub struct ShardPartition {
    pub bounds: ShardBounds,
    pub snapshot: Arc<Snapshot>,
}

/// The lowest keyword TID of `surface`, i.e. its partition key.
fn first_keyword_tid(rel: &PackedRelevanceStore, surface: &str) -> Option<u32> {
    let i = rel.names.lookup(surface)? as usize;
    let a = rel.starts[i] as usize;
    let b = rel.starts[i + 1] as usize;
    // Pairs are sorted by packed value; TID occupies the high bits, so
    // the first pair carries the lowest TID.
    rel.pairs
        .get(a..b)
        .and_then(<[u32]>::first)
        .map(|&p| p >> 10)
}

/// The shard that owns `surface` in a `shards`-way partition of
/// `full`. Keyword-less (and unknown) surfaces fall back to shard 0.
pub fn owner_shard(full: &Snapshot, shards: usize, surface: &str) -> usize {
    debug_assert!(shards > 0);
    first_keyword_tid(full.relevance(), surface)
        .map(|tid| shard_of_tid(tid, full.tids().len(), shards))
        .unwrap_or(0)
}

/// Split `full` into `shards` disjoint row-slice snapshots, each pinned
/// to `full`'s epoch (see the module docs for the ownership rule and
/// the bit-identity argument).
pub fn partition_snapshot(
    full: &Snapshot,
    shards: usize,
) -> Result<Vec<ShardPartition>, PartitionError> {
    if shards == 0 {
        return Err(PartitionError::ZeroShards);
    }
    let tid_space = full.tids().len();
    let interest = full.interest();
    let relevance = full.relevance();

    // Row indices per shard, in full-store build order, so each shard's
    // dense order is a subsequence of the full order (last-wins lookup
    // semantics of duplicate surfaces are preserved by the slice).
    let mut interest_rows: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for i in 0..interest.names.len() as u32 {
        let owner = owner_shard(full, shards, interest.names.str_at(i));
        interest_rows[owner].push(i);
    }
    let mut relevance_rows: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for i in 0..relevance.names.len() as u32 {
        let owner = owner_shard(full, shards, relevance.names.str_at(i));
        relevance_rows[owner].push(i);
    }

    let mut out = Vec::with_capacity(shards);
    for shard in 0..shards {
        let names = StrTable::build(
            interest_rows[shard]
                .iter()
                .map(|&i| interest.names.str_at(i)),
        );
        let mut data = Vec::with_capacity(interest_rows[shard].len() * BYTES_PER_CONCEPT);
        for &i in &interest_rows[shard] {
            let base = i as usize * BYTES_PER_CONCEPT;
            data.extend_from_slice(&interest.data[base..base + BYTES_PER_CONCEPT]);
        }
        let shard_interest = PackedInterestStore {
            names,
            data: ByteSlab::Owned(data),
            // Global quantizers, verbatim: dequantized features must be
            // bit-identical to the full store's.
            quantizers: interest.quantizers,
        };

        let names = StrTable::build(
            relevance_rows[shard]
                .iter()
                .map(|&i| relevance.names.str_at(i)),
        );
        let mut starts = Vec::with_capacity(relevance_rows[shard].len() + 1);
        starts.push(0u32);
        let mut pairs: Vec<u32> = Vec::new();
        for &i in &relevance_rows[shard] {
            let a = relevance.starts[i as usize] as usize;
            let b = relevance.starts[i as usize + 1] as usize;
            pairs.extend_from_slice(&relevance.pairs[a..b]);
            starts.push(pairs.len() as u32);
        }
        let shard_relevance = PackedRelevanceStore {
            names,
            starts: U32Slab::Owned(starts),
            pairs: U32Slab::Owned(pairs),
            // Global scale: dequantized keyword scores stay bit-identical.
            score_scale: relevance.score_scale,
        };

        let snapshot = SnapshotBuilder::new()
            .interest(shard_interest)
            .relevance(shard_relevance)
            // Every shard resolves context tokens against the full term
            // table, so context TID sets agree across the fleet.
            .tids(full.tids().clone())
            .model(full.model().clone())
            .epoch(full.epoch())
            .build()
            .map_err(PartitionError::Snapshot)?;
        out.push(ShardPartition {
            bounds: ShardBounds::of(shard, shards, tid_space),
            snapshot,
        });
    }
    Ok(out)
}

/// Why an [`EpochBarrier`] transition was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierError {
    /// Prepared snapshot does not advance the serving epoch.
    NotAhead { staged: u64, serving: u64 },
    /// Commit arrived with nothing staged.
    NothingStaged { requested: u64 },
    /// Commit named a different epoch than the staged snapshot's.
    EpochMismatch { staged: u64, requested: u64 },
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::NotAhead { staged, serving } => {
                write!(
                    f,
                    "staged epoch {staged} does not advance serving epoch {serving}"
                )
            }
            BarrierError::NothingStaged { requested } => {
                write!(f, "commit of epoch {requested} with nothing staged")
            }
            BarrierError::EpochMismatch { staged, requested } => {
                write!(
                    f,
                    "commit of epoch {requested} but epoch {staged} is staged"
                )
            }
        }
    }
}

impl std::error::Error for BarrierError {}

/// The shard-side half of the two-phase publish: *prepare* stages the
/// next epoch's snapshot without touching traffic, *commit* hands it
/// back for the one atomic `SwapCell` flip. Holding the staged artifact
/// here (instead of publishing on prepare) is what lets a driver bring
/// every shard to "loaded and validated" before any shard changes what
/// it serves — the window in which a scatter can observe mixed epochs
/// shrinks to the commit fan-out alone.
#[derive(Default)]
pub struct EpochBarrier {
    staged: Mutex<Option<Arc<Snapshot>>>,
}

impl EpochBarrier {
    /// A barrier with nothing staged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage `next` for a later commit. Refused unless it advances
    /// `serving_epoch`; a re-prepare replaces the previous staging (so
    /// a retried driver converges instead of wedging).
    pub fn prepare(&self, next: Arc<Snapshot>, serving_epoch: u64) -> Result<u64, BarrierError> {
        let staged = next.epoch();
        if staged <= serving_epoch {
            return Err(BarrierError::NotAhead {
                staged,
                serving: serving_epoch,
            });
        }
        *self.staged.lock() = Some(next);
        Ok(staged)
    }

    /// Take the staged snapshot for publishing. `epoch` must name the
    /// staged epoch exactly — a stale or misdirected commit is refused
    /// and the staging stays put.
    pub fn commit(&self, epoch: u64) -> Result<Arc<Snapshot>, BarrierError> {
        let mut staged = self.staged.lock();
        match staged.as_ref().map(|s| s.epoch()) {
            None => Err(BarrierError::NothingStaged { requested: epoch }),
            Some(e) if e != epoch => Err(BarrierError::EpochMismatch {
                staged: e,
                requested: epoch,
            }),
            Some(_) => Ok(staged.take().expect("staged checked non-empty")),
        }
    }

    /// The staged epoch, if any (surfaced in shard `/healthz`).
    pub fn staged_epoch(&self) -> Option<u64> {
        self.staged.lock().as_ref().map(|s| s.epoch())
    }

    /// Drop any staging, returning the epoch it held.
    pub fn abort(&self) -> Option<u64> {
        self.staged.lock().take().map(|s| s.epoch())
    }
}

impl std::fmt::Debug for EpochBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochBarrier")
            .field("staged_epoch", &self.staged_epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranker::RuntimeRanker;
    use crate::tid::GlobalTidTable;
    use ctxrank_features::{InterestFeatures, RelevantTerms};
    use ctxrank_ltr::{train, RankGroup, SvmConfig};

    /// A snapshot with `n` concepts whose keywords spread across the
    /// TID space, plus one keyword-less concept.
    fn full_snapshot(n: usize, weight: f64) -> Arc<Snapshot> {
        let concepts: Vec<(String, InterestFeatures)> = (0..n)
            .map(|i| {
                (
                    format!("concept {i}"),
                    InterestFeatures {
                        freq_exact: 100 + i as u64 * 7,
                        unit_score: (i as f64 * 0.13) % 1.0,
                        ..InterestFeatures::default()
                    },
                )
            })
            .chain(std::iter::once((
                "keywordless".to_string(),
                InterestFeatures::default(),
            )))
            .collect();
        let interest = PackedInterestStore::build(&concepts);

        let keyword_sets: Vec<RelevantTerms> = (0..n)
            .map(|i| RelevantTerms {
                terms: (0..3)
                    .map(|j| (format!("kw{}x{j}", i), weight + (i + j) as f64))
                    .collect(),
            })
            .chain(std::iter::once(RelevantTerms { terms: Vec::new() }))
            .collect();
        let mut tids = GlobalTidTable::new();
        let relevance = PackedRelevanceStore::build(
            concepts
                .iter()
                .map(|(s, _)| s.as_str())
                .zip(keyword_sets.iter()),
            &mut tids,
        );

        let groups: Vec<RankGroup> = (0..10)
            .map(|g| {
                RankGroup::from_pairs((0..2).map(|i| {
                    let mut f = vec![0.0; 10];
                    f[0] = (g + i) as f64;
                    f[9] = (g * 2 + i) as f64;
                    (f, i as f64 * 0.01)
                }))
            })
            .collect();
        let model = train(&groups, &SvmConfig::default());
        SnapshotBuilder::new()
            .interest(interest)
            .relevance(relevance)
            .tids(tids)
            .model(model)
            .build()
            .expect("full snapshot")
    }

    #[test]
    fn partition_is_a_disjoint_cover_pinned_to_the_source_epoch() {
        let full = full_snapshot(23, 2.0);
        for shards in [1, 2, 3, 5] {
            let parts = partition_snapshot(&full, shards).expect("partition");
            assert_eq!(parts.len(), shards);
            let mut seen = std::collections::HashMap::new();
            for part in &parts {
                assert_eq!(part.snapshot.epoch(), full.epoch(), "epoch pin");
                assert_eq!(part.snapshot.tids().len(), full.tids().len());
                for i in 0..part.snapshot.interest().len() as u32 {
                    let s = part.snapshot.interest().names.str_at(i).to_string();
                    assert!(part.snapshot.contains_concept(&s));
                    let prev = seen.insert(s.clone(), part.bounds.shard);
                    assert_eq!(prev, None, "{s} owned twice ({shards} shards)");
                }
            }
            assert_eq!(seen.len(), full.interest().len(), "{shards} shards");
            // Ownership matches the partition key rule.
            for (surface, &shard) in &seen {
                assert_eq!(shard, owner_shard(&full, shards, surface), "{surface}");
            }
        }
    }

    #[test]
    fn keywordless_concepts_fall_back_to_shard_zero() {
        let full = full_snapshot(8, 1.0);
        assert_eq!(owner_shard(&full, 4, "keywordless"), 0);
        assert_eq!(owner_shard(&full, 4, "never stored"), 0);
        let parts = partition_snapshot(&full, 4).expect("partition");
        assert!(parts[0].snapshot.contains_concept("keywordless"));
    }

    #[test]
    fn owned_candidates_rank_bit_identically_on_their_shard() {
        let full = full_snapshot(17, 3.0);
        let parts = partition_snapshot(&full, 3).expect("partition");
        let full_ranker = RuntimeRanker::from_snapshot(full.clone());
        let doc = "kw0x1 kw5x0 kw11x2 kw16x0 and some filler text";
        for i in 0..17 {
            let surface = format!("concept {i}");
            let owner = owner_shard(&full, 3, &surface);
            let shard_ranker = RuntimeRanker::from_snapshot(parts[owner].snapshot.clone());
            let cands = vec![surface.clone()];
            let on_full = full_ranker.rank(doc, &cands);
            let on_shard = shard_ranker.rank(doc, &cands);
            // Bit-identical, not approximately equal: same packed bytes,
            // same global quantizers/scale/model/TID table.
            assert_eq!(on_full, on_shard, "{surface}");
        }
    }

    #[test]
    fn unknown_candidates_rank_identically_on_every_shard() {
        let full = full_snapshot(6, 1.5);
        let parts = partition_snapshot(&full, 2).expect("partition");
        let cands = vec!["never stored anywhere".to_string()];
        let doc = "kw1x0 kw4x2";
        let on_full = RuntimeRanker::from_snapshot(full.clone()).rank(doc, &cands);
        for part in &parts {
            let got = RuntimeRanker::from_snapshot(part.snapshot.clone()).rank(doc, &cands);
            assert_eq!(got, on_full, "shard {}", part.bounds.shard);
        }
    }

    #[test]
    fn bounds_agree_with_shard_of_tid() {
        for tid_space in [0usize, 1, 2, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 4, 9] {
                let bounds: Vec<ShardBounds> = (0..shards)
                    .map(|s| ShardBounds::of(s, shards, tid_space))
                    .collect();
                for tid in 0..tid_space as u32 {
                    let owner = shard_of_tid(tid, tid_space, shards);
                    assert!(
                        bounds[owner].owns_tid(tid),
                        "tid {tid} {tid_space}/{shards}"
                    );
                    let owners = bounds.iter().filter(|b| b.owns_tid(tid)).count();
                    assert_eq!(owners, 1, "tid {tid} {tid_space}/{shards}");
                }
            }
        }
    }

    #[test]
    fn zero_shards_is_an_error() {
        let full = full_snapshot(3, 1.0);
        assert!(matches!(
            partition_snapshot(&full, 0),
            Err(PartitionError::ZeroShards)
        ));
    }

    #[test]
    fn barrier_prepare_then_commit_flips_exactly_the_staged_epoch() {
        let serving = full_snapshot(3, 1.0);
        let next = full_snapshot(3, 2.0);
        let barrier = EpochBarrier::new();
        assert_eq!(barrier.staged_epoch(), None);
        let staged = barrier
            .prepare(next.clone(), serving.epoch())
            .expect("prepare");
        assert_eq!(staged, next.epoch());
        assert_eq!(barrier.staged_epoch(), Some(staged));
        // Commit must name the staged epoch.
        assert_eq!(
            barrier.commit(staged + 1).unwrap_err(),
            BarrierError::EpochMismatch {
                staged,
                requested: staged + 1
            }
        );
        let committed = barrier.commit(staged).expect("commit");
        assert!(Arc::ptr_eq(&committed, &next));
        assert_eq!(barrier.staged_epoch(), None);
        // The staging is consumed: a replayed commit is refused.
        assert_eq!(
            barrier.commit(staged).unwrap_err(),
            BarrierError::NothingStaged { requested: staged }
        );
    }

    #[test]
    fn barrier_refuses_non_advancing_epochs_and_supports_abort() {
        let serving = full_snapshot(3, 1.0);
        let stale = full_snapshot(3, 0.5);
        let next = full_snapshot(3, 2.0);
        let barrier = EpochBarrier::new();
        // `stale` was built before `next` but after `serving`; pretend
        // the shard already serves `next`'s epoch.
        assert_eq!(
            barrier.prepare(stale.clone(), next.epoch()),
            Err(BarrierError::NotAhead {
                staged: stale.epoch(),
                serving: next.epoch()
            })
        );
        barrier
            .prepare(next.clone(), serving.epoch())
            .expect("prepare");
        assert_eq!(barrier.abort(), Some(next.epoch()));
        assert_eq!(barrier.staged_epoch(), None);
        assert_eq!(barrier.abort(), None);
    }
}
