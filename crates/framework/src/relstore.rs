//! Packed relevance store — `(TID, score)` in 32 bits, ≤ 100 per concept.
//!
//! §VI: "for each concept we actually need to store up to hundred term
//! ids (TIDs) and their scores ... We normalize the scores of the
//! relevant terms to be in the range of 0 and 1023, so that they can fit
//! in 10 bits. So for each concept, we need 400 bytes to store its top
//! 100 (TID, score) pairs, since each pair can be stored in 32 bits,
//! combined."
//!
//! Layout of one packed pair: bits 31‥10 = TID (22 bits),
//! bits 9‥0 = quantized score.

use crate::arena::{StrTable, U32Slab};
use crate::tid::{GlobalTidTable, TermId, MAX_TID};
use ctxrank_features::RelevantTerms;
use std::collections::HashSet;

/// Scores are quantized to 10 bits.
pub const MAX_QSCORE: u32 = 1023;
/// Keywords kept per concept.
pub const MAX_KEYWORDS: usize = 100;

/// Pack a `(tid, qscore)` pair into 32 bits.
fn pack(tid: TermId, qscore: u32) -> u32 {
    debug_assert!(tid.0 <= MAX_TID);
    debug_assert!(qscore <= MAX_QSCORE);
    (tid.0 << 10) | qscore
}

/// Unpack a 32-bit pair.
fn unpack(packed: u32) -> (TermId, u32) {
    (TermId(packed >> 10), packed & MAX_QSCORE)
}

/// The packed per-concept relevance keyword store. Concept `i` (dense
/// row order = build order) owns `pairs[starts[i]..starts[i+1]]`; the
/// surface → row index is a [`StrTable`], so an arena-loaded store is
/// a pure view into the snapshot buffer.
#[derive(Debug, Clone, Default)]
pub struct PackedRelevanceStore {
    pub(crate) names: StrTable,
    /// `len() + 1` prefix offsets into `pairs` (concept ranges are
    /// contiguous in build order).
    pub(crate) starts: U32Slab,
    /// Packed `(TID, score)` pairs, sorted by TID within each concept
    /// (enables Golomb compression of the TID deltas).
    pub(crate) pairs: U32Slab,
    /// Global score scale: a quantized score `q` represents
    /// `q / 1023 * score_scale`.
    pub(crate) score_scale: f64,
}

impl PackedRelevanceStore {
    /// Build from mined keyword sets, interning terms into `tids`.
    ///
    /// `score_scale` is fitted to the maximum keyword score observed so
    /// the 10-bit quantization spans the full range.
    pub fn build<'a>(
        concepts: impl IntoIterator<Item = (&'a str, &'a RelevantTerms)>,
        tids: &mut GlobalTidTable,
    ) -> Self {
        let concepts: Vec<(&str, &RelevantTerms)> = concepts.into_iter().collect();
        let score_scale = concepts
            .iter()
            .flat_map(|(_, rt)| rt.terms.iter().map(|(_, s)| *s))
            .fold(0.0_f64, f64::max)
            .max(1e-12);

        let names = StrTable::build(concepts.iter().map(|(s, _)| *s));
        let mut starts = Vec::with_capacity(concepts.len() + 1);
        starts.push(0u32);
        let mut pairs = Vec::new();
        for (_, rt) in concepts {
            let mut concept_pairs: Vec<u32> = rt
                .terms
                .iter()
                .take(MAX_KEYWORDS)
                .map(|(term, score)| {
                    let tid = tids.intern(term);
                    let q = ((score / score_scale) * MAX_QSCORE as f64)
                        .round()
                        .clamp(0.0, MAX_QSCORE as f64) as u32;
                    pack(tid, q)
                })
                .collect();
            // Sort by TID so the per-concept list is delta-compressible.
            concept_pairs.sort_unstable();
            pairs.extend_from_slice(&concept_pairs);
            starts.push(pairs.len() as u32);
        }
        Self {
            names,
            starts: U32Slab::Owned(starts),
            pairs: U32Slab::Owned(pairs),
            score_scale,
        }
    }

    /// The pair range of concept row `i`.
    #[inline]
    fn range(&self, i: u32) -> std::ops::Range<usize> {
        self.starts[i as usize] as usize..self.starts[i as usize + 1] as usize
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.len() == 0
    }

    /// Bytes of packed pair data (excluding the hash index).
    pub fn packed_bytes(&self) -> usize {
        self.pairs.len() * 4
    }

    /// The concept's packed keyword list as `(TermId, raw score)`.
    pub fn keywords(&self, surface: &str) -> Option<Vec<(TermId, f64)>> {
        let i = self.names.lookup(surface)?;
        Some(
            self.pairs[self.range(i)]
                .iter()
                .map(|&p| {
                    let (tid, q) = unpack(p);
                    (tid, q as f64 / MAX_QSCORE as f64 * self.score_scale)
                })
                .collect(),
        )
    }

    /// Runtime relevance score: sum of dequantized scores of the
    /// concept's keywords present in the context TID set. Unknown
    /// concepts score 0.
    pub fn score(&self, surface: &str, context: &HashSet<TermId>) -> f64 {
        match self.names.lookup(surface) {
            None => 0.0,
            Some(i) => self.pairs[self.range(i)]
                .iter()
                .map(|&p| unpack(p))
                .filter(|(tid, _)| context.contains(tid))
                .map(|(_, q)| q as f64 / MAX_QSCORE as f64 * self.score_scale)
                .sum(),
        }
    }

    /// Sorted TID lists per concept — input for the Golomb compression
    /// experiment.
    pub fn tid_lists(&self) -> impl Iterator<Item = &[u32]> {
        // Each concept's range is sorted by packed value; since TID is in
        // the high bits, the TID sequence is sorted too.
        let pairs: &[u32] = &self.pairs;
        let starts: &[u32] = &self.starts;
        (0..self.len()).map(move |i| &pairs[starts[i] as usize..starts[i + 1] as usize])
    }

    /// The global score scale.
    pub fn score_scale(&self) -> f64 {
        self.score_scale
    }

    /// Whether `surface` has a stored keyword list.
    pub fn contains(&self, surface: &str) -> bool {
        self.names.lookup(surface).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(pairs: &[(&str, f64)]) -> RelevantTerms {
        RelevantTerms {
            terms: pairs.iter().map(|(t, s)| (t.to_string(), *s)).collect(),
        }
    }

    fn store() -> (PackedRelevanceStore, GlobalTidTable) {
        let mut tids = GlobalTidTable::new();
        let a = rt(&[("sunspot", 8.0), ("telescop", 6.0), ("radiat", 4.0)]);
        let b = rt(&[("market", 5.0), ("stock", 3.0)]);
        let store =
            PackedRelevanceStore::build(vec![("solar flares", &a), ("wall street", &b)], &mut tids);
        (store, tids)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let tid = TermId(4_000_000);
        let (t2, q2) = unpack(pack(tid, 1000));
        assert_eq!(t2, tid);
        assert_eq!(q2, 1000);
    }

    #[test]
    fn four_bytes_per_pair() {
        let (store, _) = store();
        assert_eq!(store.packed_bytes(), 5 * 4);
        // Paper arithmetic: 100 pairs → 400 B/concept.
        assert_eq!(MAX_KEYWORDS * 4, 400);
    }

    #[test]
    fn keywords_roundtrip_scores() {
        let (store, tids) = store();
        let kws = store.keywords("solar flares").expect("stored");
        assert_eq!(kws.len(), 3);
        // Max score maps to the top of the quantization range.
        let max = kws.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
        assert!((max - 8.0).abs() < 0.01);
        // TIDs resolve back to terms.
        for (tid, _) in kws {
            assert!(tids.term(tid).is_some());
        }
    }

    #[test]
    fn scoring_matches_unpacked_model() {
        let (store, tids) = store();
        let ctx = tids.context_tids(["sunspot", "radiat", "unrelated"]);
        let s = store.score("solar flares", &ctx);
        assert!((s - 12.0).abs() < 0.05, "score {s}");
        assert_eq!(store.score("wall street", &ctx), 0.0);
        assert_eq!(store.score("unknown", &ctx), 0.0);
    }

    #[test]
    fn keyword_cap_enforced() {
        let mut tids = GlobalTidTable::new();
        let big = RelevantTerms {
            terms: (0..150).map(|i| (format!("t{i}"), 1.0)).collect(),
        };
        let store = PackedRelevanceStore::build(vec![("big", &big)], &mut tids);
        assert_eq!(store.keywords("big").expect("stored").len(), MAX_KEYWORDS);
    }

    #[test]
    fn tid_lists_sorted_for_compression() {
        let (store, _) = store();
        for list in store.tid_lists() {
            let tids: Vec<u32> = list.iter().map(|&p| p >> 10).collect();
            let mut sorted = tids.clone();
            sorted.sort_unstable();
            assert_eq!(tids, sorted);
        }
    }

    #[test]
    fn empty_store() {
        let mut tids = GlobalTidTable::new();
        let store = PackedRelevanceStore::build(Vec::new(), &mut tids);
        assert!(store.is_empty());
        assert_eq!(store.packed_bytes(), 0);
    }
}
