//! The Global TID Table.
//!
//! §VI: "the system uses a global hash table (Global TID Table) which
//! simply maps a given term to its TID (if that term is used by at least
//! one concept) ... the total number of unique terms stored in the
//! Global TID Table decreases as we increase the number of concepts in
//! the system ... the largest TID value we need to support in the system
//! is not too large and can easily fit into 22 bits."

use std::collections::HashMap;

/// A term id — guaranteed to fit in 22 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

/// The largest representable TID (22 bits).
pub const MAX_TID: u32 = (1 << 22) - 1;

/// Maps stemmed terms to dense [`TermId`]s.
#[derive(Debug, Clone, Default)]
pub struct GlobalTidTable {
    pub(crate) ids: HashMap<String, TermId>,
    pub(crate) terms: Vec<String>,
}

impl GlobalTidTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its (possibly existing) id.
    ///
    /// # Panics
    /// Panics if the table outgrows the 22-bit id space.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        assert!(id.0 <= MAX_TID, "Global TID Table exceeded 22-bit id space");
        self.ids.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        id
    }

    /// Look up a term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Reverse lookup.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Map a prepared context (stemmed terms) to the set of known TIDs.
    pub fn context_tids<'a>(
        &self,
        stemmed_terms: impl IntoIterator<Item = &'a str>,
    ) -> std::collections::HashSet<TermId> {
        stemmed_terms
            .into_iter()
            .filter_map(|t| self.get(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = GlobalTidTable::new();
        let a = t.intern("warm");
        let b = t.intern("warm");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = GlobalTidTable::new();
        assert_eq!(t.intern("a"), TermId(0));
        assert_eq!(t.intern("b"), TermId(1));
        assert_eq!(t.intern("c"), TermId(2));
    }

    #[test]
    fn reverse_lookup() {
        let mut t = GlobalTidTable::new();
        let id = t.intern("sunspot");
        assert_eq!(t.term(id), Some("sunspot"));
        assert_eq!(t.term(TermId(99)), None);
    }

    #[test]
    fn get_does_not_intern() {
        let t = GlobalTidTable::new();
        assert_eq!(t.get("missing"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn context_mapping_skips_unknown() {
        let mut t = GlobalTidTable::new();
        let a = t.intern("alpha");
        t.intern("beta");
        let ctx = t.context_tids(["alpha", "gamma"]);
        assert_eq!(ctx.len(), 1);
        assert!(ctx.contains(&a));
    }

    #[test]
    fn max_tid_is_22_bits() {
        assert_eq!(MAX_TID, 4_194_303);
    }
}
