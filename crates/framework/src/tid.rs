//! The Global TID Table.
//!
//! §VI: "the system uses a global hash table (Global TID Table) which
//! simply maps a given term to its TID (if that term is used by at least
//! one concept) ... the total number of unique terms stored in the
//! Global TID Table decreases as we increase the number of concepts in
//! the system ... the largest TID value we need to support in the system
//! is not too large and can easily fit into 22 bits."
//!
//! The table has two representations behind one API: a *building* form
//! (growable `HashMap`, used by the offline pipeline while interning)
//! and a *frozen* form (an arena-backed [`StrTable`] view created when a
//! `snapshot.ctxr` file is loaded — no per-term allocation or decode).

use crate::arena::StrTable;
use std::collections::HashMap;

/// A term id — guaranteed to fit in 22 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

/// The largest representable TID (22 bits).
pub const MAX_TID: u32 = (1 << 22) - 1;

#[derive(Debug, Clone)]
enum Repr {
    /// Offline form: supports [`GlobalTidTable::intern`].
    Building {
        ids: HashMap<String, TermId>,
        terms: Vec<String>,
    },
    /// Arena-loaded form: lookups go through the shared string table,
    /// term text is borrowed straight from the snapshot buffer.
    Frozen(StrTable),
}

/// Maps stemmed terms to dense [`TermId`]s.
#[derive(Debug, Clone)]
pub struct GlobalTidTable {
    repr: Repr,
}

impl Default for GlobalTidTable {
    fn default() -> Self {
        Self {
            repr: Repr::Building {
                ids: HashMap::new(),
                terms: Vec::new(),
            },
        }
    }
}

impl GlobalTidTable {
    /// Create an empty (building) table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rehydrate a building table from dense-ordered terms (legacy
    /// directory decode).
    pub(crate) fn from_terms(terms: Vec<String>) -> Self {
        let ids = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TermId(i as u32)))
            .collect();
        Self {
            repr: Repr::Building { ids, terms },
        }
    }

    /// Wrap an arena-backed string table (ids are the dense indices).
    pub(crate) fn from_frozen(table: StrTable) -> Self {
        Self {
            repr: Repr::Frozen(table),
        }
    }

    /// The table as a frozen string table — the arena encoder's view.
    /// Cheap for an arena-loaded table; builds the hash index once for
    /// a building table.
    pub(crate) fn to_str_table(&self) -> StrTable {
        match &self.repr {
            Repr::Building { terms, .. } => StrTable::build(terms.iter().map(String::as_str)),
            Repr::Frozen(t) => t.clone(),
        }
    }

    /// Intern a term, returning its (possibly existing) id.
    ///
    /// # Panics
    /// Panics if the table outgrows the 22-bit id space, or if called
    /// on a frozen (arena-loaded) table — interning is an offline
    /// operation and loaded snapshots are immutable.
    pub fn intern(&mut self, term: &str) -> TermId {
        match &mut self.repr {
            Repr::Building { ids, terms } => {
                if let Some(&id) = ids.get(term) {
                    return id;
                }
                let id = TermId(terms.len() as u32);
                assert!(id.0 <= MAX_TID, "Global TID Table exceeded 22-bit id space");
                ids.insert(term.to_string(), id);
                terms.push(term.to_string());
                id
            }
            Repr::Frozen(_) => panic!("intern on a frozen (arena-loaded) Global TID Table"),
        }
    }

    /// Look up a term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        match &self.repr {
            Repr::Building { ids, .. } => ids.get(term).copied(),
            Repr::Frozen(t) => t.lookup(term).map(TermId),
        }
    }

    /// Reverse lookup.
    pub fn term(&self, id: TermId) -> Option<&str> {
        match &self.repr {
            Repr::Building { terms, .. } => terms.get(id.0 as usize).map(String::as_str),
            Repr::Frozen(t) => {
                if (id.0 as usize) < t.len() {
                    Some(t.str_at(id.0))
                } else {
                    None
                }
            }
        }
    }

    /// Terms in dense id order.
    pub(crate) fn iter_terms(&self) -> Box<dyn Iterator<Item = &str> + '_> {
        match &self.repr {
            Repr::Building { terms, .. } => Box::new(terms.iter().map(String::as_str)),
            Repr::Frozen(t) => Box::new(t.iter()),
        }
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Building { terms, .. } => terms.len(),
            Repr::Frozen(t) => t.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a prepared context (stemmed terms) to the set of known TIDs.
    pub fn context_tids<'a>(
        &self,
        stemmed_terms: impl IntoIterator<Item = &'a str>,
    ) -> std::collections::HashSet<TermId> {
        stemmed_terms
            .into_iter()
            .filter_map(|t| self.get(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = GlobalTidTable::new();
        let a = t.intern("warm");
        let b = t.intern("warm");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = GlobalTidTable::new();
        assert_eq!(t.intern("a"), TermId(0));
        assert_eq!(t.intern("b"), TermId(1));
        assert_eq!(t.intern("c"), TermId(2));
    }

    #[test]
    fn reverse_lookup() {
        let mut t = GlobalTidTable::new();
        let id = t.intern("sunspot");
        assert_eq!(t.term(id), Some("sunspot"));
        assert_eq!(t.term(TermId(99)), None);
    }

    #[test]
    fn get_does_not_intern() {
        let t = GlobalTidTable::new();
        assert_eq!(t.get("missing"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn context_mapping_skips_unknown() {
        let mut t = GlobalTidTable::new();
        let a = t.intern("alpha");
        t.intern("beta");
        let ctx = t.context_tids(["alpha", "gamma"]);
        assert_eq!(ctx.len(), 1);
        assert!(ctx.contains(&a));
    }

    #[test]
    fn max_tid_is_22_bits() {
        assert_eq!(MAX_TID, 4_194_303);
    }

    #[test]
    fn frozen_table_agrees_with_building_table() {
        let mut built = GlobalTidTable::new();
        for term in ["warm", "ocean", "arctic", "trade"] {
            built.intern(term);
        }
        let frozen = GlobalTidTable::from_frozen(built.to_str_table());
        assert_eq!(frozen.len(), built.len());
        for term in ["warm", "ocean", "arctic", "trade", "missing"] {
            assert_eq!(frozen.get(term), built.get(term), "{term}");
        }
        for id in 0..=4 {
            assert_eq!(frozen.term(TermId(id)), built.term(TermId(id)));
        }
        let ctx = ["warm", "unknown", "trade"];
        assert_eq!(frozen.context_tids(ctx), built.context_tids(ctx));
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn intern_on_frozen_panics() {
        let mut t = GlobalTidTable::from_frozen(GlobalTidTable::new().to_str_table());
        t.intern("nope");
    }
}
