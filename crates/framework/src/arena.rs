//! The single-file arena snapshot format (`snapshot.ctxr`).
//!
//! The legacy directory layout decodes every store entry on load:
//! each surface string is allocated, hashed and inserted into a
//! `HashMap`, every packed pair is copied through a byte cursor. For a
//! million-concept snapshot that is millions of allocations before the
//! first query can be served. The arena format removes that work: the
//! whole snapshot is one little-endian file whose sections are already
//! in the stores' in-memory layout, so loading is
//!
//! 1. read the file once into an 8-byte-aligned, `Arc`-owned buffer;
//! 2. verify the header and the whole-file word-folded FNV-1a checksum;
//! 3. validate section bounds/alignment and string-table invariants;
//! 4. hand out typed views (`&[u32]`, `&[u8]`) into the buffer.
//!
//! No per-entry decode happens at any point — the hash index used for
//! concept lookup is itself a section (an open-addressed slot table),
//! written by the offline save and reused verbatim by the online load.
//!
//! ## File layout
//!
//! ```text
//! header (48 B):
//!   0  magic        u64   "ctxrARN1"
//!   8  version      u32   1
//!   12 byte order   u32   0x01020304 (read with native endianness:
//!                         a big-endian host rejects the file instead
//!                         of silently misreading the section casts)
//!   16 epoch        u64   snapshot epoch
//!   24 checksum     u64   word-folded FNV-1a over the file, this field zeroed
//!   32 total_len    u64   file length (fast truncation check)
//!   40 sections     u32   15
//!   44 reserved     u32   0
//! section table (15 × {offset u64, len u64}), offsets 8-byte aligned
//! sections, in table order, zero-padded to 8-byte boundaries
//! ```
//!
//! Sections 0–2 are the Global TID Table's string table (prefix
//! offsets, hash slots, UTF-8 blob); 3–7 the interest store (string
//! table, packed rows, field quantizers); 8–13 the relevance store
//! (string table, range starts, packed pairs, score scale); 14 the
//! ranking model as JSON.
//!
//! **Version policy.** `version` is bumped on any layout change; a
//! loader rejects versions it does not know and the caller falls back
//! to the legacy directory decode. New optional sections append to the
//! table (readers ignore trailing entries they do not understand only
//! after a version bump that documents them).
//!
//! Integrity is split in two: the checksum catches *corruption* (any
//! bit flip anywhere fails the load with a typed error), structural
//! validation catches *hostility* (no offset, count or slot value read
//! from the file can cause an out-of-bounds access or a panic later).

use crate::packed::{FieldQuantizer, PackedInterestStore, BYTES_PER_CONCEPT};
use crate::relstore::PackedRelevanceStore;
use crate::tid::{GlobalTidTable, MAX_TID};
use ctxrank_features::InterestFeatures;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// The arena snapshot's file name inside a snapshot directory.
pub(crate) const ARENA_FILE: &str = "snapshot.ctxr";

const MAGIC: u64 = u64::from_le_bytes(*b"ctxrARN1");
const VERSION: u32 = 1;
const BYTE_ORDER_MARK: u32 = 0x0102_0304;
const HEADER_LEN: usize = 48;
const CHECKSUM_OFFSET: usize = 24;
const SECTION_COUNT: usize = 15;

// Section table indices. A `S_*_OFFSETS` entry is the base of a
// three-section string table: offsets at `base`, hash slots at
// `base + 1`, the UTF-8 blob at `base + 2`.
const S_TID_OFFSETS: usize = 0;
const S_INT_OFFSETS: usize = 3;
const S_INT_DATA: usize = 6;
const S_INT_QUANT: usize = 7;
const S_REL_OFFSETS: usize = 8;
const S_REL_STARTS: usize = 11;
const S_REL_PAIRS: usize = 12;
const S_REL_SCALE: usize = 13;
const S_MODEL: usize = 14;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `h`.
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of `bytes` — both the string-table slot hash and the
/// building block of the whole-file checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Whole-file checksum: the FNV-1a fold applied to 8-byte
/// little-endian words (the tail zero-padded) with the checksum word
/// itself read as zero. Word granularity costs one multiply per 8
/// bytes instead of per byte, so verification does not dominate the
/// arena load; any single bit flip still changes the folded word and
/// therefore the sum.
fn file_checksum(bytes: &[u8]) -> u64 {
    const CHECKSUM_WORD: usize = CHECKSUM_OFFSET / 8;
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for (idx, chunk) in chunks.by_ref().enumerate() {
        let w = if idx == CHECKSUM_WORD {
            0
        } else {
            u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
        };
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A byte buffer whose base address is 8-byte aligned (backed by a
/// `Vec<u64>`), so any section at an 8-aligned offset can be viewed as
/// `&[u32]` or `&[u64]` without copying.
pub(crate) struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Copy `bytes` into aligned storage (one memcpy).
    pub(crate) fn from_bytes(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: the destination allocation holds words.len()*8 >=
        // bytes.len() bytes and u8 has no alignment requirement.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
        Self {
            words,
            len: bytes.len(),
        }
    }

    /// The buffer contents.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: the allocation holds at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

impl fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AlignedBuf({} B)", self.len)
    }
}

/// A byte slice that is either owned (built in memory) or a view into
/// an `Arc`-shared arena buffer (loaded from `snapshot.ctxr`).
#[derive(Clone)]
pub(crate) enum ByteSlab {
    Owned(Vec<u8>),
    Arena {
        buf: Arc<AlignedBuf>,
        off: usize,
        len: usize,
    },
}

impl ByteSlab {
    /// Arena view; `None` when the range is out of bounds.
    fn arena(buf: &Arc<AlignedBuf>, off: usize, len: usize) -> Option<Self> {
        off.checked_add(len).filter(|&end| end <= buf.len)?;
        Some(ByteSlab::Arena {
            buf: Arc::clone(buf),
            off,
            len,
        })
    }
}

impl Deref for ByteSlab {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            ByteSlab::Owned(v) => v,
            ByteSlab::Arena { buf, off, len } => &buf.bytes()[*off..off + len],
        }
    }
}

impl Default for ByteSlab {
    fn default() -> Self {
        ByteSlab::Owned(Vec::new())
    }
}

impl fmt::Debug for ByteSlab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByteSlab::Owned(v) => write!(f, "ByteSlab::Owned({} B)", v.len()),
            ByteSlab::Arena { len, .. } => write!(f, "ByteSlab::Arena({len} B)"),
        }
    }
}

/// A `u32` slice, owned or cast directly out of the arena buffer.
#[derive(Clone)]
pub(crate) enum U32Slab {
    Owned(Vec<u32>),
    Arena {
        buf: Arc<AlignedBuf>,
        /// Byte offset into the buffer; 4-byte aligned (validated).
        off: usize,
        /// Length in elements.
        len: usize,
    },
}

impl U32Slab {
    /// Arena view over `len_bytes` bytes at `off`; `None` when the
    /// range is misaligned, has a ragged length, or is out of bounds.
    fn arena(buf: &Arc<AlignedBuf>, off: usize, len_bytes: usize) -> Option<Self> {
        if !off.is_multiple_of(4) || !len_bytes.is_multiple_of(4) {
            return None;
        }
        off.checked_add(len_bytes).filter(|&end| end <= buf.len)?;
        Some(U32Slab::Arena {
            buf: Arc::clone(buf),
            off,
            len: len_bytes / 4,
        })
    }
}

impl Deref for U32Slab {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        match self {
            U32Slab::Owned(v) => v,
            U32Slab::Arena { buf, off, len } => {
                let bytes = &buf.bytes()[*off..off + len * 4];
                // SAFETY: the buffer base is 8-byte aligned and `off`
                // was validated to be a multiple of 4 at construction,
                // so the pointer is aligned for u32; the range holds
                // exactly `len` u32s and lives as long as `buf`.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), *len) }
            }
        }
    }
}

impl Default for U32Slab {
    fn default() -> Self {
        U32Slab::Owned(Vec::new())
    }
}

impl fmt::Debug for U32Slab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            U32Slab::Owned(v) => write!(f, "U32Slab::Owned({})", v.len()),
            U32Slab::Arena { len, .. } => write!(f, "U32Slab::Arena({len})"),
        }
    }
}

/// A frozen string table: `count` strings addressed by dense index,
/// plus an open-addressed hash index for string → index lookup. The
/// same three arrays serve an in-memory build and a zero-copy arena
/// view, so there is exactly one lookup path.
#[derive(Clone)]
pub(crate) struct StrTable {
    /// `count + 1` prefix offsets into `blob`.
    offsets: U32Slab,
    /// Power-of-two slot table; a slot holds `index + 1` (0 = empty).
    /// Load factor ≤ 0.5 by construction.
    slots: U32Slab,
    /// Concatenated UTF-8 string bytes.
    blob: ByteSlab,
}

impl Default for StrTable {
    fn default() -> Self {
        Self::build(std::iter::empty())
    }
}

impl fmt::Debug for StrTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StrTable({} strings)", self.len())
    }
}

impl StrTable {
    /// Build an owned table. When the same key appears twice, lookup
    /// resolves to the *last* occurrence (matching `HashMap::insert`).
    pub(crate) fn build<'a, I: IntoIterator<Item = &'a str>>(keys: I) -> Self {
        let keys: Vec<&'a str> = keys.into_iter().collect();
        let mut offsets = Vec::with_capacity(keys.len() + 1);
        offsets.push(0u32);
        let mut blob = Vec::new();
        for k in &keys {
            blob.extend_from_slice(k.as_bytes());
            offsets.push(u32::try_from(blob.len()).expect("string table blob exceeds 4 GiB"));
        }
        let cap = (keys.len().max(1) * 2).next_power_of_two();
        let mask = cap - 1;
        let mut slots = vec![0u32; cap];
        for (i, k) in keys.iter().enumerate() {
            let mut pos = (fnv1a(k.as_bytes()) as usize) & mask;
            loop {
                match slots[pos] {
                    0 => {
                        slots[pos] = i as u32 + 1;
                        break;
                    }
                    v if keys[(v - 1) as usize] == *k => {
                        slots[pos] = i as u32 + 1;
                        break;
                    }
                    _ => pos = (pos + 1) & mask,
                }
            }
        }
        Self {
            offsets: U32Slab::Owned(offsets),
            slots: U32Slab::Owned(slots),
            blob: ByteSlab::Owned(blob),
        }
    }

    /// Assemble a table from (arena) parts, validating every invariant
    /// the accessors rely on: any file bytes that pass cannot cause an
    /// out-of-bounds access, a non-UTF-8 `&str`, or an unbounded probe.
    fn from_parts(offsets: U32Slab, slots: U32Slab, blob: ByteSlab) -> Result<Self, String> {
        let offs: &[u32] = &offsets;
        if offs.is_empty() {
            return Err("string table has no offset entries".into());
        }
        let count = offs.len() - 1;
        if count >= u32::MAX as usize {
            return Err("string table count overflows u32".into());
        }
        if offs[0] != 0 {
            return Err("string table offsets do not start at 0".into());
        }
        if offs.windows(2).any(|w| w[0] > w[1]) {
            return Err("string table offsets are not monotone".into());
        }
        if *offs.last().expect("non-empty") as usize != blob.len() {
            return Err("string table offsets do not cover the blob".into());
        }
        let text = std::str::from_utf8(&blob).map_err(|_| "string table blob is not UTF-8")?;
        if offs.iter().any(|&o| !text.is_char_boundary(o as usize)) {
            return Err("string table offset splits a UTF-8 sequence".into());
        }
        let sl: &[u32] = &slots;
        if !sl.len().is_power_of_two() {
            return Err("string table slot count is not a power of two".into());
        }
        if sl.iter().any(|&v| v as usize > count) {
            return Err("string table slot points past the last string".into());
        }
        Ok(Self {
            offsets,
            slots,
            blob,
        })
    }

    /// Number of stored strings.
    pub(crate) fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The raw bytes of string `i`.
    #[inline]
    pub(crate) fn bytes_at(&self, i: u32) -> &[u8] {
        let a = self.offsets[i as usize] as usize;
        let b = self.offsets[i as usize + 1] as usize;
        &self.blob[a..b]
    }

    /// String `i`. The blob is UTF-8-validated on build/load, so the
    /// fallback arm is unreachable; it exists to keep this path
    /// panic-free even on hostile input.
    #[inline]
    pub(crate) fn str_at(&self, i: u32) -> &str {
        std::str::from_utf8(self.bytes_at(i)).unwrap_or("")
    }

    /// Dense index of `key`, if stored.
    pub(crate) fn lookup(&self, key: &str) -> Option<u32> {
        let slots: &[u32] = &self.slots;
        if slots.is_empty() {
            return None;
        }
        let mask = slots.len() - 1;
        let mut pos = (fnv1a(key.as_bytes()) as usize) & mask;
        // The probe is bounded by the table size so a (hostile) full
        // slot table cannot loop forever.
        for _ in 0..slots.len() {
            match slots[pos] {
                0 => return None,
                v => {
                    let i = v - 1;
                    if self.bytes_at(i) == key.as_bytes() {
                        return Some(i);
                    }
                }
            }
            pos = (pos + 1) & mask;
        }
        None
    }

    /// Strings in dense-index order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len() as u32).map(move |i| self.str_at(i))
    }

    fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    fn slots(&self) -> &[u32] {
        &self.slots
    }

    fn blob(&self) -> &[u8] {
        &self.blob
    }
}

/// Everything decoded (viewed) out of one arena file.
pub(crate) struct DecodedArena {
    pub(crate) epoch: u64,
    pub(crate) interest: PackedInterestStore,
    pub(crate) relevance: PackedRelevanceStore,
    pub(crate) tids: GlobalTidTable,
    /// The ranking model JSON (small; copied out of the buffer).
    pub(crate) model_json: Vec<u8>,
}

fn u32s_to_bytes(v: &[u32]) -> Vec<u8> {
    let mut b = Vec::with_capacity(v.len() * 4);
    for &x in v {
        b.extend_from_slice(&x.to_le_bytes());
    }
    b
}

/// Serialize a snapshot's components into one arena file.
pub(crate) fn encode(
    interest: &PackedInterestStore,
    relevance: &PackedRelevanceStore,
    tids: &GlobalTidTable,
    model_json: &[u8],
    epoch: u64,
) -> Vec<u8> {
    let tid_table = tids.to_str_table();

    fn put(out: &mut Vec<u8>, table: &mut [(u64, u64)], id: usize, bytes: &[u8]) {
        while !out.len().is_multiple_of(8) {
            out.push(0);
        }
        table[id] = (out.len() as u64, bytes.len() as u64);
        out.extend_from_slice(bytes);
    }

    fn str_table(out: &mut Vec<u8>, table: &mut [(u64, u64)], base: usize, t: &StrTable) {
        put(out, table, base, &u32s_to_bytes(t.offsets()));
        put(out, table, base + 1, &u32s_to_bytes(t.slots()));
        put(out, table, base + 2, t.blob());
    }

    let mut out = vec![0u8; HEADER_LEN + SECTION_COUNT * 16];
    let mut table = [(0u64, 0u64); SECTION_COUNT];

    str_table(&mut out, &mut table, S_TID_OFFSETS, &tid_table);

    str_table(&mut out, &mut table, S_INT_OFFSETS, &interest.names);
    put(&mut out, &mut table, S_INT_DATA, &interest.data);
    let mut quant = Vec::with_capacity(InterestFeatures::DIM * 16);
    for q in interest.quantizers.iter() {
        quant.extend_from_slice(&q.lo.to_le_bytes());
        quant.extend_from_slice(&q.hi.to_le_bytes());
    }
    put(&mut out, &mut table, S_INT_QUANT, &quant);

    str_table(&mut out, &mut table, S_REL_OFFSETS, &relevance.names);
    put(
        &mut out,
        &mut table,
        S_REL_STARTS,
        &u32s_to_bytes(&relevance.starts),
    );
    put(
        &mut out,
        &mut table,
        S_REL_PAIRS,
        &u32s_to_bytes(&relevance.pairs),
    );
    put(
        &mut out,
        &mut table,
        S_REL_SCALE,
        &relevance.score_scale.to_le_bytes(),
    );

    put(&mut out, &mut table, S_MODEL, model_json);

    // Header and section table.
    out[0..8].copy_from_slice(&MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&BYTE_ORDER_MARK.to_le_bytes());
    out[16..24].copy_from_slice(&epoch.to_le_bytes());
    let total = out.len() as u64;
    out[32..40].copy_from_slice(&total.to_le_bytes());
    out[40..44].copy_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    for (i, (off, len)) in table.iter().enumerate() {
        let at = HEADER_LEN + i * 16;
        out[at..at + 8].copy_from_slice(&off.to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&len.to_le_bytes());
    }
    let sum = file_checksum(&out);
    out[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
    out
}

fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

/// Decode (that is: validate and view) an arena buffer. Every failure
/// is a `String` detail the caller wraps into a typed persist error.
pub(crate) fn decode(buf: Arc<AlignedBuf>) -> Result<DecodedArena, String> {
    let b = buf.bytes();
    if b.len() < HEADER_LEN + SECTION_COUNT * 16 {
        return Err(format!("truncated header ({} B)", b.len()));
    }
    if rd_u64(b, 0) != MAGIC {
        return Err("bad magic".into());
    }
    let version = rd_u32(b, 8);
    if version != VERSION {
        return Err(format!("unsupported arena version {version}"));
    }
    // Read with *native* endianness: on a big-endian host this
    // mismatches and the file is rejected instead of the section casts
    // silently misreading little-endian data.
    let bom = u32::from_ne_bytes(b[12..16].try_into().expect("4 bytes"));
    if bom != BYTE_ORDER_MARK {
        return Err("byte-order mismatch (arena snapshots are little-endian)".into());
    }
    let epoch = rd_u64(b, 16);
    if rd_u64(b, 32) != b.len() as u64 {
        return Err(format!(
            "length mismatch: header says {}, file is {}",
            rd_u64(b, 32),
            b.len()
        ));
    }
    if rd_u32(b, 40) as usize != SECTION_COUNT {
        return Err(format!("unexpected section count {}", rd_u32(b, 40)));
    }
    let stored = rd_u64(b, CHECKSUM_OFFSET);
    let computed = file_checksum(b);
    if stored != computed {
        return Err(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        ));
    }

    let mut sections = [(0usize, 0usize); SECTION_COUNT];
    for (i, s) in sections.iter_mut().enumerate() {
        let at = HEADER_LEN + i * 16;
        let off = rd_u64(b, at);
        let len = rd_u64(b, at + 8);
        let end = off.checked_add(len).filter(|&e| e <= b.len() as u64);
        if !off.is_multiple_of(8) || end.is_none() {
            return Err(format!("section {i} out of bounds ({off}+{len})"));
        }
        *s = (off as usize, len as usize);
    }

    let bytes_sec = |i: usize| {
        let (off, len) = sections[i];
        ByteSlab::arena(&buf, off, len).ok_or_else(|| format!("section {i} out of bounds"))
    };
    let u32_sec = |i: usize| {
        let (off, len) = sections[i];
        U32Slab::arena(&buf, off, len)
            .ok_or_else(|| format!("section {i} is not a whole u32 array"))
    };
    let str_table = |base: usize| -> Result<StrTable, String> {
        StrTable::from_parts(u32_sec(base)?, u32_sec(base + 1)?, bytes_sec(base + 2)?)
    };

    // Global TID Table.
    let tid_table = str_table(S_TID_OFFSETS).map_err(|e| format!("tid table: {e}"))?;
    if tid_table.len() > MAX_TID as usize + 1 {
        return Err("tid table exceeds the 22-bit id space".into());
    }
    let tids = GlobalTidTable::from_frozen(tid_table);

    // Interest store.
    let names = str_table(S_INT_OFFSETS).map_err(|e| format!("interest names: {e}"))?;
    let data = bytes_sec(S_INT_DATA)?;
    if data.len() != names.len() * BYTES_PER_CONCEPT {
        return Err(format!(
            "interest data is {} B for {} concepts",
            data.len(),
            names.len()
        ));
    }
    let (qoff, qlen) = sections[S_INT_QUANT];
    if qlen != InterestFeatures::DIM * 16 {
        return Err("quantizer section length mismatch".into());
    }
    let mut quantizers = [FieldQuantizer { lo: 0.0, hi: 0.0 }; InterestFeatures::DIM];
    for (d, q) in quantizers.iter_mut().enumerate() {
        let lo = f64::from_le_bytes(b[qoff + d * 16..qoff + d * 16 + 8].try_into().expect("8"));
        let hi = f64::from_le_bytes(
            b[qoff + d * 16 + 8..qoff + d * 16 + 16]
                .try_into()
                .expect("8"),
        );
        if !lo.is_finite() || !hi.is_finite() || hi < lo {
            return Err(format!("invalid quantizer range for field {d}"));
        }
        *q = FieldQuantizer { lo, hi };
    }
    let interest = PackedInterestStore {
        names,
        data,
        quantizers,
    };

    // Relevance store.
    let names = str_table(S_REL_OFFSETS).map_err(|e| format!("relevance names: {e}"))?;
    let starts = u32_sec(S_REL_STARTS)?;
    let pairs = u32_sec(S_REL_PAIRS)?;
    {
        let s: &[u32] = &starts;
        if s.len() != names.len() + 1 {
            return Err("relevance starts do not match the concept count".into());
        }
        if s[0] != 0 || s.windows(2).any(|w| w[0] > w[1]) {
            return Err("relevance starts are not monotone from 0".into());
        }
        if *s.last().expect("non-empty") as usize != pairs.len() {
            return Err("relevance starts do not cover the pair array".into());
        }
    }
    let (soff, slen) = sections[S_REL_SCALE];
    if slen != 8 {
        return Err("score scale section length mismatch".into());
    }
    let score_scale = f64::from_le_bytes(b[soff..soff + 8].try_into().expect("8"));
    if !score_scale.is_finite() {
        return Err("score scale is not finite".into());
    }
    let relevance = PackedRelevanceStore {
        names,
        starts,
        pairs,
        score_scale,
    };

    let model_json = bytes_sec(S_MODEL)?.to_vec();

    Ok(DecodedArena {
        epoch,
        interest,
        relevance,
        tids,
        model_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_table_lookup_hit_and_miss() {
        let t = StrTable::build(["alpha", "beta", "gamma"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup("alpha"), Some(0));
        assert_eq!(t.lookup("gamma"), Some(2));
        assert_eq!(t.lookup("delta"), None);
        assert_eq!(t.str_at(1), "beta");
        let all: Vec<&str> = t.iter().collect();
        assert_eq!(all, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn str_table_empty() {
        let t = StrTable::default();
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup(""), None);
        assert_eq!(t.lookup("x"), None);
    }

    #[test]
    fn str_table_duplicate_key_last_wins() {
        let t = StrTable::build(["a", "b", "a"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup("a"), Some(2));
        assert_eq!(t.lookup("b"), Some(1));
    }

    #[test]
    fn str_table_empty_string_key() {
        let t = StrTable::build(["", "x"]);
        assert_eq!(t.lookup(""), Some(0));
        assert_eq!(t.str_at(0), "");
    }

    #[test]
    fn str_table_survives_arena_roundtrip() {
        // Serialize the parts through an aligned buffer and re-assemble.
        let t = StrTable::build(["solar flares", "wall street", "ünïcode"]);
        let mut file = u32s_to_bytes(t.offsets());
        let slots_off = file.len();
        file.extend_from_slice(&u32s_to_bytes(t.slots()));
        let blob_off = file.len();
        file.extend_from_slice(t.blob());
        let buf = Arc::new(AlignedBuf::from_bytes(&file));
        let v = StrTable::from_parts(
            U32Slab::arena(&buf, 0, slots_off).expect("offsets"),
            U32Slab::arena(&buf, slots_off, blob_off - slots_off).expect("slots"),
            ByteSlab::arena(&buf, blob_off, file.len() - blob_off).expect("blob"),
        )
        .expect("valid parts");
        assert_eq!(v.lookup("wall street"), Some(1));
        assert_eq!(v.lookup("ünïcode"), Some(2));
        assert_eq!(v.lookup("missing"), None);
        assert_eq!(v.str_at(2), "ünïcode");
    }

    #[test]
    fn from_parts_rejects_bad_offsets() {
        let bad = StrTable::from_parts(
            U32Slab::Owned(vec![0, 5, 3]),
            U32Slab::Owned(vec![0, 0]),
            ByteSlab::Owned(b"hello".to_vec()),
        );
        assert!(bad.is_err(), "non-monotone offsets must be rejected");

        let bad = StrTable::from_parts(
            U32Slab::Owned(vec![0, 9]),
            U32Slab::Owned(vec![0, 0]),
            ByteSlab::Owned(b"hello".to_vec()),
        );
        assert!(bad.is_err(), "offsets past the blob must be rejected");

        let bad = StrTable::from_parts(
            U32Slab::Owned(vec![0, 5]),
            U32Slab::Owned(vec![0, 0, 0]),
            ByteSlab::Owned(b"hello".to_vec()),
        );
        assert!(bad.is_err(), "non-power-of-two slot table must be rejected");

        let bad = StrTable::from_parts(
            U32Slab::Owned(vec![0, 5]),
            U32Slab::Owned(vec![7, 0]),
            ByteSlab::Owned(b"hello".to_vec()),
        );
        assert!(bad.is_err(), "slot past the last string must be rejected");
    }

    #[test]
    fn from_parts_rejects_invalid_utf8() {
        let bad = StrTable::from_parts(
            U32Slab::Owned(vec![0, 2]),
            U32Slab::Owned(vec![0, 0]),
            ByteSlab::Owned(vec![0xFF, 0xFE]),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn aligned_buf_roundtrips_bytes() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let src: Vec<u8> = (0..n).map(|i| (i * 37 % 251) as u8).collect();
            let buf = AlignedBuf::from_bytes(&src);
            assert_eq!(buf.bytes(), &src[..]);
            assert_eq!(buf.bytes().as_ptr() as usize % 8, 0, "8-byte aligned");
        }
    }

    #[test]
    fn checksum_detects_any_single_bit_flip_in_header() {
        let mut bytes = vec![0u8; 64];
        bytes[..8].copy_from_slice(&MAGIC.to_le_bytes());
        let sum = file_checksum(&bytes);
        bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(file_checksum(&bytes), sum, "checksum field itself excluded");
        // (Bits 192..256 are the checksum field itself and excluded.)
        for bit in [0usize, 77, 300, 511] {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(
                file_checksum(&flipped),
                sum,
                "bit {bit} must change the sum"
            );
        }
    }
}
