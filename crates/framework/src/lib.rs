//! The production framework (§VI).
//!
//! "All the techniques described so far ... are achieved through
//! preprocessing and are therefore offline procedures. However, the final
//! system, which detects and ranks the concepts in a given document,
//! needs to be quite efficient as this will be done in real time. This
//! sets computational as well as memory limitations."
//!
//! The paper's memory budget for 1 million concepts:
//!
//! * **interestingness vectors** — 9 features × 2 bytes = 18 B/concept
//!   (18 MB total), hash-table access in constant time → [`packed`];
//! * **relevant keywords** — up to 100 `(TID, score)` pairs per concept,
//!   a TID fitting in 22 bits and a score in 10 bits, so one pair packs
//!   into 32 bits → 400 B/concept (~400 MB total) → [`relstore`];
//! * a **Global TID Table** mapping each term used by at least one
//!   concept to its term id → [`tid`];
//! * further reduction via integer compression (Golomb coding,
//!   Witten/Moffat/Bell \[26\]) → [`golomb`];
//! * the runtime **Stemmer → Ranker** flow → [`ranker`], with the
//!   throughput experiment reproduced in `crates/bench`;
//! * the §VIII future-work **online CTR adaptation** → [`online`]: fast
//!   vs slow CTR averages per concept, boosting or punishing scores as
//!   world events move the click stream in real time — made
//!   position-bias-aware by [`propensity`], which fits per-rank
//!   examination probabilities with RegressionEM and turns them into
//!   clipped inverse-propensity click weights.
//!
//! The offline/online hand-off is organized around an immutable
//! [`Snapshot`] artifact: [`snapshot::SnapshotBuilder`] is the single
//! assembly path, [`persist`] (de)serializes snapshots, [`ranker`]
//! serves thin stateless views over one, and [`swap`] hot-swaps
//! rebuilt snapshots under live traffic without locks on the read
//! path. [`delta`] closes the loop incrementally: sealed click-stream
//! segments fold into [`delta::DeltaSnapshot`]s that merge into the
//! next epoch without a full rebuild. [`partition`] takes the artifact
//! multi-process: it slices a snapshot into TID-range shards (row
//! slices that rank bit-identically to the full artifact) and defines
//! the two-phase [`partition::EpochBarrier`] shard publishes go
//! through.

pub(crate) mod arena;
pub mod compressed;
pub mod delta;
pub mod golomb;
pub mod memory;
pub mod online;
pub mod packed;
pub mod partition;
pub mod persist;
pub mod propensity;
pub mod ranker;
pub mod relstore;
pub mod snapshot;
pub mod swap;
pub mod tid;

pub use compressed::CompressedRelevanceStore;
pub use delta::{DeltaError, DeltaSnapshot, FrozenParts, SnapshotProjector, SurfaceAdd};
pub use golomb::{golomb_decode, golomb_encode, optimal_rice_parameter};
pub use memory::MemoryReport;
pub use online::{OnlineConfig, OnlineCtrAdjuster};
pub use packed::{FieldQuantizer, PackedInterestStore};
pub use partition::{
    owner_shard, partition_snapshot, shard_of_tid, BarrierError, EpochBarrier, PartitionError,
    ShardBounds, ShardPartition,
};
pub use persist::{
    load_ranker, load_service, load_service_with, load_snapshot, load_snapshot_with, save_ranker,
    save_service, save_service_with, save_snapshot, save_snapshot_legacy,
    save_snapshot_legacy_with, save_snapshot_with, PersistError, PersistFs, StdFs,
};
pub use propensity::{
    EmCell, EmConfig, EmFit, PropensityCodecError, PropensityEstimator, PropensityTable,
    DEFAULT_WEIGHT_CAP,
};
pub use ranker::{RankedConcept, RuntimeRanker};
pub use relstore::PackedRelevanceStore;
pub use snapshot::{Snapshot, SnapshotBuilder, SnapshotError};
pub use swap::{ServiceHandle, SwapCell};
pub use tid::{GlobalTidTable, TermId, MAX_TID};
