//! Propensity estimation for position-bias correction.
//!
//! The §VIII online adjuster consumes aggregated (views, clicks)
//! feedback. Under position bias those counts over-represent head
//! ranks: a click at rank 0 is easy, a click at rank 9 is rare even for
//! an attractive concept. [`PropensityEstimator`] recovers the per-rank
//! examination probabilities from a rank-annotated click log alone — no
//! relevance labels — via the EM procedure of the RegressionEM line of
//! work (Wang et al., WSDM'18), specialized to its tabular form: one
//! examination parameter per rank, one attractiveness parameter per
//! surface. [`PropensityTable`] then turns the fitted curve into
//! clipped inverse-propensity weights for `OnlineCtrAdjuster`, and owns
//! the checksummed binary codec the persistence layer stores it with
//! (`propensity.bin`) — weights that silently drift after a partial
//! write would skew every adjustment, so the file is fully validating:
//! magic, length, finiteness, range and FNV-1a checksum.
//!
//! Model: `P(click at rank r on surface s) = θ_r · γ_s`, both latent.
//! E-step, for a non-clicked impression:
//!
//! ```text
//! P(examined | no click) = θ_r (1 − γ_s) / (1 − θ_r γ_s)
//! P(attractive | no click) = γ_s (1 − θ_r) / (1 − θ_r γ_s)
//! ```
//!
//! M-step: θ_r averages `clicks + non_clicks · P(examined | no click)`
//! over the impressions at rank r (and symmetrically for γ_s). The
//! marginal log-likelihood is non-decreasing — the classic EM
//! guarantee — which the golden tests pin down.

use serde::{Deserialize, Serialize};

/// Magic prefix of the encoded propensity table ("debias" spelled the
/// ICDE way — distinct from the arena's `0x12DE_2009`).
const PROPENSITY_MAGIC: u32 = 0xDEB1_A5ED;

/// Hard cap on the number of ranks a decoded table may claim; real
/// tables have tens of entries, and the cap bounds the allocation a
/// corrupt length prefix can demand.
const MAX_RANKS: u32 = 1 << 16;

/// Parameter clamp keeping EM probabilities away from the 0/1
/// boundaries (where the E-step ratios degenerate).
const EM_EPSILON: f64 = 1e-6;

/// FNV-1a, 32-bit — same checksum the event codec uses.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Why an encoded propensity table failed to decode. Persistence maps
/// every variant onto `PersistError::Corrupt` — a damaged table must
/// never load as skewed weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropensityCodecError {
    /// The buffer is shorter than the header + payload it declares.
    Truncated,
    /// The magic prefix is wrong — not a propensity table at all.
    BadMagic,
    /// The rank count exceeds [`MAX_RANKS`].
    Oversized { ranks: u32 },
    /// The trailing FNV-1a checksum did not match.
    Checksum,
    /// A decoded value is non-finite or out of range.
    Invalid { detail: String },
}

impl std::fmt::Display for PropensityCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropensityCodecError::Truncated => write!(f, "truncated propensity table"),
            PropensityCodecError::BadMagic => write!(f, "bad propensity table magic"),
            PropensityCodecError::Oversized { ranks } => {
                write!(f, "propensity table claims {ranks} ranks")
            }
            PropensityCodecError::Checksum => write!(f, "propensity table checksum mismatch"),
            PropensityCodecError::Invalid { detail } => {
                write!(f, "invalid propensity table: {detail}")
            }
        }
    }
}

impl std::error::Error for PropensityCodecError {}

/// Per-rank relative propensities plus the IPW clipping policy.
///
/// `relative(r)` is the examination probability at rank `r` normalized
/// to rank 0 (`relative(0) == 1`); ranks past the fitted range clamp to
/// the last entry, and an empty table behaves as all-ones. The inverse
/// weight `weight(r) = min(1 / relative(r), weight_cap)` is what the
/// adjuster multiplies clicks by — the clip bounds the variance a
/// single deep-rank click can inject (standard clipped-IPS practice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropensityTable {
    relative: Vec<f64>,
    weight_cap: f64,
}

/// Default clip on inverse-propensity weights.
pub const DEFAULT_WEIGHT_CAP: f64 = 10.0;

impl Default for PropensityTable {
    fn default() -> Self {
        Self::uniform(0)
    }
}

impl PropensityTable {
    /// An all-ones table over `ranks` ranks: IPW degenerates to the
    /// naive adjuster (the parity baseline).
    pub fn uniform(ranks: usize) -> Self {
        Self {
            relative: vec![1.0; ranks],
            weight_cap: DEFAULT_WEIGHT_CAP,
        }
    }

    /// Build from fitted examination probabilities, normalizing to the
    /// first rank. Non-finite or non-positive entries are rejected.
    pub fn from_examination(
        examination: &[f64],
        weight_cap: f64,
    ) -> Result<Self, PropensityCodecError> {
        if !(weight_cap.is_finite() && weight_cap >= 1.0) {
            return Err(PropensityCodecError::Invalid {
                detail: format!("weight cap {weight_cap} not in [1, inf)"),
            });
        }
        let Some(&head) = examination.first() else {
            return Ok(Self {
                relative: Vec::new(),
                weight_cap,
            });
        };
        if examination.iter().any(|&e| !e.is_finite() || e <= 0.0) {
            return Err(PropensityCodecError::Invalid {
                detail: "examination probabilities must be finite and positive".to_string(),
            });
        }
        Ok(Self {
            relative: examination.iter().map(|&e| e / head).collect(),
            weight_cap,
        })
    }

    /// Relative propensity at `rank` (1.0 for an empty table; ranks
    /// past the end clamp to the last fitted entry).
    pub fn relative(&self, rank: usize) -> f64 {
        match self.relative.get(rank) {
            Some(&p) => p,
            None => self.relative.last().copied().unwrap_or(1.0),
        }
    }

    /// The clipped inverse-propensity weight applied to clicks observed
    /// at `rank`.
    pub fn weight(&self, rank: usize) -> f64 {
        (1.0 / self.relative(rank)).min(self.weight_cap)
    }

    /// Number of fitted ranks.
    pub fn ranks(&self) -> usize {
        self.relative.len()
    }

    /// The configured clip on inverse weights.
    pub fn weight_cap(&self) -> f64 {
        self.weight_cap
    }

    /// Encode as a self-validating binary blob:
    ///
    /// ```text
    /// [magic u32 LE][ranks u32 LE][weight_cap f64 LE]
    /// [relative f64 LE × ranks][fnv1a32 of all preceding bytes u32 LE]
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20 + 8 * self.relative.len());
        buf.extend_from_slice(&PROPENSITY_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(self.relative.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.weight_cap.to_le_bytes());
        for &p in &self.relative {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        buf.extend_from_slice(&fnv1a32(&buf).to_le_bytes());
        buf
    }

    /// Decode and fully validate an encoded table. Every defect —
    /// truncation, wrong magic, oversized count, checksum mismatch,
    /// out-of-range values, trailing bytes — is a typed error; a
    /// damaged file can never yield silently skewed weights.
    pub fn decode(bytes: &[u8]) -> Result<Self, PropensityCodecError> {
        if bytes.len() < 20 {
            return Err(PropensityCodecError::Truncated);
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if magic != PROPENSITY_MAGIC {
            return Err(PropensityCodecError::BadMagic);
        }
        let ranks = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if ranks > MAX_RANKS {
            return Err(PropensityCodecError::Oversized { ranks });
        }
        let body_len = 16usize + 8 * ranks as usize;
        if bytes.len() != body_len + 4 {
            return Err(PropensityCodecError::Truncated);
        }
        let want = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
        if fnv1a32(&bytes[..body_len]) != want {
            return Err(PropensityCodecError::Checksum);
        }
        let weight_cap = f64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        if !(weight_cap.is_finite() && weight_cap >= 1.0) {
            return Err(PropensityCodecError::Invalid {
                detail: format!("weight cap {weight_cap} not in [1, inf)"),
            });
        }
        let mut relative = Vec::with_capacity(ranks as usize);
        for i in 0..ranks as usize {
            let off = 16 + 8 * i;
            let p = f64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
            if !(p.is_finite() && p > 0.0 && p <= 1e6) {
                return Err(PropensityCodecError::Invalid {
                    detail: format!("relative propensity {p} at rank {i} out of range"),
                });
            }
            relative.push(p);
        }
        Ok(Self {
            relative,
            weight_cap,
        })
    }
}

/// One aggregated observation cell for the estimator: `surface` is a
/// dense index (caller-assigned), `rank` the display rank, and
/// `views`/`clicks` the impression and click counts accumulated at that
/// (surface, rank) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmCell {
    pub surface: usize,
    pub rank: usize,
    pub views: u64,
    pub clicks: u64,
}

/// Tuning for [`PropensityEstimator`].
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// EM iterations. The tabular model converges fast; 50 is plenty.
    pub iterations: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self { iterations: 50 }
    }
}

/// The fitted parameters plus the per-iteration log-likelihood trace.
#[derive(Debug, Clone)]
pub struct EmFit {
    /// `examination[r]` — the estimated probability that rank `r` is
    /// examined (identified up to a multiplicative constant; use
    /// [`PropensityTable::from_examination`] for the normalized form).
    pub examination: Vec<f64>,
    /// `attractiveness[s]` — the estimated click probability of surface
    /// `s` given examination.
    pub attractiveness: Vec<f64>,
    /// Marginal log-likelihood after each iteration (non-decreasing).
    pub log_likelihood: Vec<f64>,
}

impl EmFit {
    /// The normalized propensity table for this fit.
    pub fn table(&self, weight_cap: f64) -> Result<PropensityTable, PropensityCodecError> {
        PropensityTable::from_examination(&self.examination, weight_cap)
    }
}

/// RegressionEM-style propensity estimator (tabular special case: the
/// "regression" over rank features is a one-hot lookup).
#[derive(Debug, Clone, Default)]
pub struct PropensityEstimator {
    config: EmConfig,
}

impl PropensityEstimator {
    pub fn new(config: EmConfig) -> Self {
        Self { config }
    }

    /// Fit examination/attractiveness parameters to the observation
    /// cells. Ranks and surfaces with no impressions keep their 0.5
    /// prior. Deterministic: no randomness anywhere in the procedure.
    pub fn fit(&self, cells: &[EmCell]) -> EmFit {
        let ranks = cells.iter().map(|c| c.rank + 1).max().unwrap_or(0);
        let surfaces = cells.iter().map(|c| c.surface + 1).max().unwrap_or(0);
        let mut theta = vec![0.5f64; ranks];
        let mut gamma = vec![0.5f64; surfaces];
        let mut log_likelihood = Vec::with_capacity(self.config.iterations);

        for _ in 0..self.config.iterations {
            // Accumulate expected examination/attraction counts.
            let mut theta_num = vec![0.0f64; ranks];
            let mut theta_den = vec![0.0f64; ranks];
            let mut gamma_num = vec![0.0f64; surfaces];
            let mut gamma_den = vec![0.0f64; surfaces];
            for c in cells {
                let t = theta[c.rank];
                let g = gamma[c.surface];
                let clicks = c.clicks.min(c.views) as f64;
                let non_clicks = (c.views - c.clicks.min(c.views)) as f64;
                let no_click = (1.0 - t * g).max(EM_EPSILON);
                let p_exam_given_no_click = t * (1.0 - g) / no_click;
                let p_attr_given_no_click = g * (1.0 - t) / no_click;
                theta_num[c.rank] += clicks + non_clicks * p_exam_given_no_click;
                theta_den[c.rank] += c.views as f64;
                gamma_num[c.surface] += clicks + non_clicks * p_attr_given_no_click;
                gamma_den[c.surface] += c.views as f64;
            }
            for r in 0..ranks {
                if theta_den[r] > 0.0 {
                    theta[r] = (theta_num[r] / theta_den[r]).clamp(EM_EPSILON, 1.0 - EM_EPSILON);
                }
            }
            for s in 0..surfaces {
                if gamma_den[s] > 0.0 {
                    gamma[s] = (gamma_num[s] / gamma_den[s]).clamp(EM_EPSILON, 1.0 - EM_EPSILON);
                }
            }
            log_likelihood.push(Self::log_likelihood(cells, &theta, &gamma));
        }

        EmFit {
            examination: theta,
            attractiveness: gamma,
            log_likelihood,
        }
    }

    /// Marginal log-likelihood of the cells under (θ, γ).
    fn log_likelihood(cells: &[EmCell], theta: &[f64], gamma: &[f64]) -> f64 {
        cells
            .iter()
            .map(|c| {
                let p = (theta[c.rank] * gamma[c.surface]).clamp(EM_EPSILON, 1.0 - EM_EPSILON);
                let clicks = c.clicks.min(c.views) as f64;
                let non_clicks = (c.views - c.clicks.min(c.views)) as f64;
                clicks * p.ln() + non_clicks * (1.0 - p).ln()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_two_rank_two_surface_first_iteration() {
        // Hand-computed fixture. Cells (surface, rank, views, clicks):
        //   (0,0,100,40) (0,1,100,20) (1,0,100,20) (1,1,100,10)
        // Init θ = γ = 0.5 everywhere, so for every cell
        //   P(exam | no click) = P(attr | no click)
        //     = 0.5·0.5 / (1 − 0.25) = 1/3.
        // M-step, rank 0: (40 + 60/3 + 20 + 80/3) / 200 = 8/15.
        // M-step, rank 1: (20 + 80/3 + 10 + 90/3) / 200 = 13/30.
        // Symmetric counts make γ identical: γ_0 = 8/15, γ_1 = 13/30.
        let cells = [
            EmCell {
                surface: 0,
                rank: 0,
                views: 100,
                clicks: 40,
            },
            EmCell {
                surface: 0,
                rank: 1,
                views: 100,
                clicks: 20,
            },
            EmCell {
                surface: 1,
                rank: 0,
                views: 100,
                clicks: 20,
            },
            EmCell {
                surface: 1,
                rank: 1,
                views: 100,
                clicks: 10,
            },
        ];
        let fit = PropensityEstimator::new(EmConfig { iterations: 1 }).fit(&cells);
        assert!((fit.examination[0] - 8.0 / 15.0).abs() < 1e-12, "{fit:?}");
        assert!((fit.examination[1] - 13.0 / 30.0).abs() < 1e-12, "{fit:?}");
        assert!((fit.attractiveness[0] - 8.0 / 15.0).abs() < 1e-12);
        assert!((fit.attractiveness[1] - 13.0 / 30.0).abs() < 1e-12);
        // Normalized propensity of rank 1: (13/30) / (8/15) = 13/16.
        let table = fit.table(10.0).expect("valid fit");
        assert!((table.relative(1) - 13.0 / 16.0).abs() < 1e-12);
        assert!((table.relative(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_is_monotonically_non_decreasing() {
        let cells = [
            EmCell {
                surface: 0,
                rank: 0,
                views: 400,
                clicks: 120,
            },
            EmCell {
                surface: 0,
                rank: 1,
                views: 400,
                clicks: 55,
            },
            EmCell {
                surface: 1,
                rank: 0,
                views: 400,
                clicks: 70,
            },
            EmCell {
                surface: 1,
                rank: 1,
                views: 400,
                clicks: 30,
            },
            EmCell {
                surface: 2,
                rank: 2,
                views: 400,
                clicks: 12,
            },
            EmCell {
                surface: 2,
                rank: 0,
                views: 400,
                clicks: 95,
            },
        ];
        let fit = PropensityEstimator::new(EmConfig { iterations: 40 }).fit(&cells);
        assert_eq!(fit.log_likelihood.len(), 40);
        for w in fit.log_likelihood.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
        // And it actually improved over the 0.5 prior.
        assert!(fit.log_likelihood[39] > fit.log_likelihood[0]);
    }

    #[test]
    fn recovers_a_known_examination_curve() {
        // Deterministic expected counts under θ = [1, 1/2, 1/4] with
        // many surfaces spread across ranks: EM should recover the
        // *ratios* of the curve (the scale is unidentifiable).
        let theta = [1.0, 0.5, 0.25];
        let attr = [0.4, 0.3, 0.2, 0.12, 0.08];
        let mut cells = Vec::new();
        for (s, &a) in attr.iter().enumerate() {
            for (r, &t) in theta.iter().enumerate() {
                let views = 10_000u64;
                let clicks = (views as f64 * a * t).round() as u64;
                cells.push(EmCell {
                    surface: s,
                    rank: r,
                    views,
                    clicks,
                });
            }
        }
        let fit = PropensityEstimator::default().fit(&cells);
        let rel1 = fit.examination[1] / fit.examination[0];
        let rel2 = fit.examination[2] / fit.examination[0];
        assert!((rel1 - 0.5).abs() < 0.03, "rel1 {rel1}");
        assert!((rel2 - 0.25).abs() < 0.03, "rel2 {rel2}");
    }

    #[test]
    fn table_roundtrip_and_weights() {
        let table = PropensityTable::from_examination(&[0.8, 0.4, 0.2, 0.02], 10.0).expect("ok");
        assert!((table.relative(0) - 1.0).abs() < 1e-12);
        assert!((table.relative(1) - 0.5).abs() < 1e-12);
        assert!((table.weight(1) - 2.0).abs() < 1e-12);
        // 1/0.025 = 40 clips to the cap.
        assert!((table.weight(3) - 10.0).abs() < 1e-12);
        // Overflow ranks clamp to the last entry.
        assert!((table.relative(99) - 0.025).abs() < 1e-12);
        let decoded = PropensityTable::decode(&table.encode()).expect("roundtrip");
        assert_eq!(decoded, table);

        let empty = PropensityTable::uniform(0);
        assert!((empty.relative(5) - 1.0).abs() < 1e-12);
        assert!((empty.weight(5) - 1.0).abs() < 1e-12);
        assert_eq!(PropensityTable::decode(&empty.encode()), Ok(empty));
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let table = PropensityTable::from_examination(&[1.0, 0.5, 0.33], 8.0).expect("ok");
        let clean = table.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                assert!(
                    PropensityTable::decode(&buf).is_err(),
                    "byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_detected() {
        let clean = PropensityTable::from_examination(&[1.0, 0.5], 4.0)
            .expect("ok")
            .encode();
        for cut in 0..clean.len() {
            assert!(PropensityTable::decode(&clean[..cut]).is_err(), "cut {cut}");
        }
        let mut longer = clean.clone();
        longer.push(0);
        assert!(PropensityTable::decode(&longer).is_err());
        assert_eq!(
            PropensityTable::decode(&[0u8; 24]),
            Err(PropensityCodecError::BadMagic)
        );
    }

    #[test]
    fn invalid_values_rejected() {
        assert!(PropensityTable::from_examination(&[1.0, 0.0], 10.0).is_err());
        assert!(PropensityTable::from_examination(&[1.0, f64::NAN], 10.0).is_err());
        assert!(PropensityTable::from_examination(&[1.0, 0.5], 0.5).is_err());
        // A hand-built buffer with a negative propensity and a correct
        // checksum still fails validation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&PROPENSITY_MAGIC.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2.0f64.to_le_bytes());
        buf.extend_from_slice(&(-0.5f64).to_le_bytes());
        buf.extend_from_slice(&fnv1a32(&buf).to_le_bytes());
        assert!(matches!(
            PropensityTable::decode(&buf),
            Err(PropensityCodecError::Invalid { .. })
        ));
    }

    #[test]
    fn uniform_table_weights_are_exactly_one() {
        let table = PropensityTable::uniform(12);
        for r in 0..20 {
            assert_eq!(table.weight(r), 1.0);
            assert_eq!(table.relative(r), 1.0);
        }
    }

    #[test]
    fn empty_cells_fit_is_empty() {
        let fit = PropensityEstimator::default().fit(&[]);
        assert!(fit.examination.is_empty());
        assert!(fit.attractiveness.is_empty());
        assert!(fit.table(10.0).expect("empty ok").ranks() == 0);
    }
}
