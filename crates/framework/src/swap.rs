//! Lock-free snapshot hot-swap — the serving tier's publish protocol.
//!
//! The offline pipeline periodically produces a fresh [`Snapshot`]; the
//! serving tier must start using it **without pausing traffic**. The
//! protocol:
//!
//! * Readers call [`SwapCell::load`] — one atomic pointer load plus one
//!   refcount increment, no locks, no waiting — and then finish their
//!   entire ranking on the `Arc<Snapshot>` they got back. An in-flight
//!   request never observes a mix of two snapshots.
//! * A publisher calls [`SwapCell::swap`] (or
//!   [`ServiceHandle::publish`]) to install the rebuilt snapshot. The
//!   store is a single atomic pointer write, so there is no window in
//!   which readers can observe a torn or absent snapshot.
//! * Epochs are strictly increasing (see [`crate::snapshot`]), so a
//!   reader comparing epochs across successive loads sees a monotone
//!   sequence.
//!
//! **Reclamation.** A hand-rolled `ArcSwap` needs an answer to the
//! classic race: a reader loads the raw pointer, is preempted, the
//! publisher swaps and drops the last `Arc`, and the reader's deferred
//! refcount increment now touches freed memory. We close it the simple
//! way: the cell retains one strong reference to **every snapshot it
//! has ever published** (the current one plus a retired list), so the
//! pointee outlives the cell and the increment is always on a live
//! allocation. Retired snapshots are freed when the cell drops. This
//! trades memory for wait-freedom on the read path, and the trade is
//! deliberately cheap: publishes happen at rebuild cadence (minutes to
//! hours), so the retired list stays tiny relative to one snapshot's
//! stores; re-publishing an already-retained `Arc` (as the swap bench
//! does continuously) costs one `Arc` clone per publish, not a store
//! copy.

use crate::online::OnlineCtrAdjuster;
use crate::ranker::{RankedConcept, RuntimeRanker};
use crate::snapshot::Snapshot;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// An `ArcSwap`-style cell over [`Arc<Snapshot>`]: wait-free `load`,
/// atomic `swap`, epoch-retirement reclamation (see module docs).
pub struct SwapCell {
    /// Raw pointer to the current snapshot. Always points into an
    /// allocation kept alive by `current`/`retired` below.
    ptr: AtomicPtr<Snapshot>,
    /// The current snapshot's epoch, mirrored out of the snapshot so
    /// epoch-keyed callers (the serve-layer result cache probes it on
    /// every request) read it with one atomic load instead of a full
    /// `load()` refcount round-trip. Monotone: updated with `fetch_max`
    /// under the publisher lock.
    epoch: AtomicU64,
    /// Publisher-side owner of the current snapshot. Readers never
    /// touch this lock.
    current: Mutex<Arc<Snapshot>>,
    /// Strong references to every previously published snapshot —
    /// the grace period is the cell's lifetime.
    retired: Mutex<Vec<Arc<Snapshot>>>,
}

impl SwapCell {
    /// A cell serving `initial`.
    pub fn new(initial: Arc<Snapshot>) -> Self {
        let ptr = AtomicPtr::new(Arc::as_ptr(&initial) as *mut Snapshot);
        let epoch = AtomicU64::new(initial.epoch());
        Self {
            ptr,
            epoch,
            current: Mutex::new(initial),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current snapshot. Wait-free: one `Acquire` pointer load and
    /// one refcount increment; never blocks on a publisher.
    pub fn load(&self) -> Arc<Snapshot> {
        let raw = self.ptr.load(Ordering::Acquire) as *const Snapshot;
        // SAFETY: `raw` was stored from an `Arc` that `current` (and,
        // after any later swap, `retired`) keeps alive for the life of
        // `self`, so the allocation is live and its strong count is at
        // least one for the whole call; the increment hands that
        // guarantee to the returned `Arc`.
        unsafe {
            Arc::increment_strong_count(raw);
            Arc::from_raw(raw)
        }
    }

    /// Install `next` as the current snapshot, returning the snapshot
    /// it replaced. Readers that already loaded the old snapshot finish
    /// on it; new loads observe `next` after this returns (and possibly
    /// during it — the pointer store is the linearization point).
    pub fn swap(&self, next: Arc<Snapshot>) -> Arc<Snapshot> {
        let mut current = self.current.lock();
        let prev = std::mem::replace(&mut *current, next);
        // Order matters: `*current` owns `next` before the pointer
        // becomes visible, and `prev` is retired before its pointer can
        // stop being loadable — so every pointer value ever stored is
        // backed by a strong reference held by this cell.
        self.retired.lock().push(prev.clone());
        self.ptr
            .store(Arc::as_ptr(&current) as *mut Snapshot, Ordering::Release);
        // Epochs are process-wide monotone, but `fetch_max` keeps the
        // mirror safe even against a hostile out-of-order publish.
        self.epoch.fetch_max(current.epoch(), Ordering::Release);
        prev
    }

    /// The current snapshot's epoch — one atomic load, no refcount
    /// traffic. May trail [`SwapCell::load`] by the width of a publish
    /// in flight; never moves backwards.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of retired (previously published) snapshots retained for
    /// reader safety.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }
}

/// The serving tier's front door: a [`SwapCell`] holding the live
/// [`Snapshot`] plus the online CTR state that must *survive* snapshot
/// swaps (§VIII adaptation is feedback about the world, not about one
/// artifact, so a rebuild must not amnesia it).
///
/// ```no_run
/// # use ctxrank_framework::*;
/// # use std::sync::Arc;
/// # fn rebuild() -> Arc<Snapshot> { unimplemented!() }
/// let handle = ServiceHandle::new(rebuild());
/// // Serving threads:
/// let ranked = handle.rank("breaking news text", &["solar flares".into()]);
/// // Publisher thread, later, mid-traffic:
/// handle.publish(rebuild());
/// ```
pub struct ServiceHandle {
    cell: SwapCell,
    /// Online CTR adjustments, owned by the handle (not any snapshot)
    /// so `publish` carries them across artifact generations.
    adjuster: RwLock<OnlineCtrAdjuster>,
}

impl ServiceHandle {
    /// Serve `initial` with a fresh (empty) online adjuster.
    pub fn new(initial: Arc<Snapshot>) -> Self {
        Self::with_adjuster(initial, OnlineCtrAdjuster::default())
    }

    /// Serve `initial`, restoring previously accumulated online CTR
    /// state (e.g. from [`crate::persist::load_service`]).
    pub fn with_adjuster(initial: Arc<Snapshot>, adjuster: OnlineCtrAdjuster) -> Self {
        Self {
            cell: SwapCell::new(initial),
            adjuster: RwLock::new(adjuster),
        }
    }

    /// The snapshot currently being served (wait-free).
    pub fn current(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// The current snapshot's epoch. Wait-free and allocation-free:
    /// reads the cell's mirrored epoch, so per-request probes (the
    /// serve-layer cache keys every lookup by this) cost one atomic
    /// load.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// A [`RuntimeRanker`] view pinned to the current snapshot. All
    /// calls through the returned value use that one snapshot, however
    /// many publishes happen meanwhile.
    pub fn ranker(&self) -> RuntimeRanker {
        RuntimeRanker::from_snapshot(self.cell.load())
    }

    /// Install a rebuilt snapshot mid-traffic; returns its epoch.
    /// In-flight rankings finish on the snapshot they started with, and
    /// the online adjuster (CTR feedback) carries over untouched.
    pub fn publish(&self, next: Arc<Snapshot>) -> u64 {
        let epoch = next.epoch();
        self.cell.swap(next);
        epoch
    }

    /// Feed one CTR feedback batch for `surface` (§VIII).
    pub fn record_feedback(&self, surface: &str, views: u64, clicks: u64) {
        self.adjuster.write().record(surface, views, clicks);
    }

    /// Rank-annotated feedback: clicks observed at `rank` enter the
    /// adjuster re-weighted by the installed propensity table (naive
    /// weighting when none is installed).
    pub fn record_feedback_ranked(&self, surface: &str, rank: usize, views: u64, clicks: u64) {
        self.adjuster
            .write()
            .record_ranked(surface, rank, views, clicks);
    }

    /// Install (or replace) the propensity table applied by
    /// [`Self::record_feedback_ranked`]. Like the rest of the adjuster
    /// state, the table survives snapshot publishes and is persisted by
    /// `persist::save_service`.
    pub fn install_propensities(&self, table: crate::propensity::PropensityTable) {
        self.adjuster.write().set_propensities(table);
    }

    /// Number of ranks covered by the installed propensity table (0
    /// when none is installed) — surfaced in `/metrics`.
    pub fn propensity_ranks(&self) -> usize {
        self.adjuster.read().propensities().map_or(0, |t| t.ranks())
    }

    /// The current additive adjustment for `surface`.
    pub fn adjustment(&self, surface: &str) -> f64 {
        self.adjuster.read().adjustment(surface)
    }

    /// A copy of the accumulated online CTR state (for persistence).
    pub fn adjuster_state(&self) -> OnlineCtrAdjuster {
        self.adjuster.read().clone()
    }

    /// Rank `candidates` for one document on the current snapshot, with
    /// online CTR adjustments applied (§VIII). The whole call uses the
    /// single snapshot loaded at entry.
    pub fn rank(&self, text: &str, candidates: &[String]) -> Vec<RankedConcept> {
        let ranker = self.ranker();
        let adjuster = self.adjuster.read();
        ranker.rank_online(text, candidates, &adjuster)
    }

    /// Rank a batch of documents on *one* snapshot (loaded at entry, so
    /// a publish mid-batch cannot split the batch across versions),
    /// fanned across the worker pool.
    pub fn rank_batch(&self, docs: &[(&str, &[String])]) -> Vec<Vec<RankedConcept>> {
        self.ranker().rank_batch(docs)
    }

    /// Rank a batch with §VIII online CTR adjustments applied, returning
    /// the epoch that served it. The snapshot is pinned and the adjuster
    /// read-locked **once at entry**, so neither a publish nor a
    /// feedback batch landing mid-way can split the batch across
    /// versions — every document in the batch is ranked by exactly the
    /// returned epoch. This is the hook the network serving layer's
    /// micro-batcher builds on (`ctxrank-serve`).
    pub fn rank_batch_online(&self, docs: &[(&str, &[String])]) -> (u64, Vec<Vec<RankedConcept>>) {
        let (snapshot, results) = self.rank_batch_online_pinned(docs);
        (snapshot.epoch(), results)
    }

    /// [`rank_batch_online`](Self::rank_batch_online) returning the
    /// pinned snapshot itself instead of just its epoch. Shard serving
    /// uses this to compute partition ownership (`contains_concept`)
    /// against exactly the snapshot that ranked the batch — checking a
    /// freshly loaded snapshot instead would race a publish landing
    /// between ranking and rendering.
    pub fn rank_batch_online_pinned(
        &self,
        docs: &[(&str, &[String])],
    ) -> (Arc<Snapshot>, Vec<Vec<RankedConcept>>) {
        let ranker = self.ranker();
        let adjuster = self.adjuster.read();
        let results = ctxrank_parallel::par_map(
            ctxrank_parallel::num_threads(),
            docs,
            |(text, candidates)| ranker.rank_online(text, candidates, &adjuster),
        );
        drop(adjuster);
        (ranker.into_snapshot(), results)
    }

    /// Snapshots retained for reader safety (diagnostics; see the
    /// module-level reclamation notes).
    pub fn retired_len(&self) -> usize {
        self.cell.retired_len()
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("epoch", &self.epoch())
            .field("retired", &self.retired_len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::PackedInterestStore;
    use crate::relstore::PackedRelevanceStore;
    use crate::snapshot::SnapshotBuilder;
    use crate::tid::GlobalTidTable;
    use ctxrank_features::{InterestFeatures, RelevantTerms};
    use ctxrank_ltr::{train, RankGroup, SvmConfig};

    /// A snapshot whose single concept's relevance keyword weight is
    /// `weight` — distinguishable through rank results.
    fn snapshot(weight: f64) -> Arc<Snapshot> {
        let interest = PackedInterestStore::build(&[(
            "solar flares".to_string(),
            InterestFeatures {
                freq_exact: 100,
                ..InterestFeatures::default()
            },
        )]);
        let mut tids = GlobalTidTable::new();
        let kw = RelevantTerms {
            terms: vec![(ctxrank_text::stem("sunspot"), weight)],
        };
        let relevance = PackedRelevanceStore::build(vec![("solar flares", &kw)], &mut tids);
        let groups: Vec<RankGroup> = (0..10)
            .map(|g| {
                RankGroup::from_pairs((0..2).map(|i| {
                    let mut f = vec![0.0; 10];
                    f[9] = (g + i) as f64;
                    (f, i as f64 * 0.01)
                }))
            })
            .collect();
        let model = train(&groups, &SvmConfig::default());
        SnapshotBuilder::new()
            .interest(interest)
            .relevance(relevance)
            .tids(tids)
            .model(model)
            .build()
            .expect("snapshot")
    }

    #[test]
    fn load_returns_published_snapshot() {
        let a = snapshot(1.0);
        let cell = SwapCell::new(a.clone());
        assert!(Arc::ptr_eq(&cell.load(), &a));
        assert_eq!(cell.epoch(), a.epoch());
        let b = snapshot(2.0);
        let prev = cell.swap(b.clone());
        assert!(Arc::ptr_eq(&prev, &a));
        assert!(Arc::ptr_eq(&cell.load(), &b));
        assert_eq!(cell.epoch(), b.epoch());
        assert_eq!(cell.retired_len(), 1);
    }

    #[test]
    fn in_flight_view_survives_publish() {
        let handle = ServiceHandle::new(snapshot(1.0));
        let pinned = handle.ranker();
        let before = pinned.rank("sunspot activity", &["solar flares".to_string()]);
        let old_epoch = pinned.epoch();
        handle.publish(snapshot(9.0));
        // The pinned view still ranks on the old snapshot...
        assert_eq!(pinned.epoch(), old_epoch);
        assert_eq!(
            pinned.rank("sunspot activity", &["solar flares".to_string()]),
            before
        );
        // ...while fresh views see the new one.
        assert!(handle.epoch() > old_epoch);
        let after = handle
            .ranker()
            .rank("sunspot activity", &["solar flares".to_string()]);
        assert!(after[0].relevance > before[0].relevance);
    }

    #[test]
    fn adjuster_survives_publish() {
        let handle = ServiceHandle::new(snapshot(1.0));
        // Accumulate a CTR spike for the concept.
        for _ in 0..50 {
            handle.record_feedback("solar flares", 1000, 10);
        }
        for _ in 0..3 {
            handle.record_feedback("solar flares", 1000, 80);
        }
        let boost = handle.adjustment("solar flares");
        assert!(boost > 0.5, "expected a boost, got {boost}");
        handle.publish(snapshot(2.0));
        assert_eq!(
            handle.adjustment("solar flares"),
            boost,
            "publish must not reset online CTR state"
        );
        // And the adjustment is applied when ranking through the handle.
        let plain = handle
            .ranker()
            .rank("sunspot activity", &["solar flares".to_string()]);
        let adjusted = handle.rank("sunspot activity", &["solar flares".to_string()]);
        assert!((adjusted[0].score - (plain[0].score + boost)).abs() < 1e-12);
    }

    #[test]
    fn rank_batch_online_pins_one_epoch_and_applies_adjustments() {
        let handle = ServiceHandle::new(snapshot(1.0));
        for _ in 0..50 {
            handle.record_feedback("solar flares", 1000, 10);
        }
        for _ in 0..3 {
            handle.record_feedback("solar flares", 1000, 80);
        }
        let boost = handle.adjustment("solar flares");
        assert!(boost > 0.5, "expected a boost, got {boost}");

        let cands = vec!["solar flares".to_string()];
        let docs: Vec<(&str, &[String])> = vec![
            ("sunspot activity", cands.as_slice()),
            ("stock market rally", cands.as_slice()),
        ];
        let (epoch, batch) = handle.rank_batch_online(&docs);
        assert_eq!(epoch, handle.epoch());
        assert_eq!(batch.len(), docs.len());
        // Each row equals the per-doc online ranking on the same pinned
        // snapshot.
        let ranker = handle.ranker();
        let adjuster = handle.adjuster_state();
        for ((text, cands), ranked) in docs.iter().zip(&batch) {
            assert_eq!(ranked, &ranker.rank_online(text, cands, &adjuster));
        }
    }

    #[test]
    fn epochs_monotone_across_publishes() {
        let handle = ServiceHandle::new(snapshot(1.0));
        let mut last = handle.epoch();
        for w in 2..6 {
            let e = handle.publish(snapshot(w as f64));
            assert!(e > last);
            assert_eq!(handle.epoch(), e);
            last = e;
        }
        assert_eq!(handle.retired_len(), 4);
    }
}
