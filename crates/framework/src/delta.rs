//! Incremental projection: sealed click-stream segments → delta
//! snapshots → the next served epoch.
//!
//! The paper's pipeline rebuilds the entire model from the full click
//! log on every refresh. This module is the streaming alternative: an
//! append-only log (`ctxrank_querylog::segment`) accumulates
//! [`Event`]s, and a [`SnapshotProjector`] folds each batch of newly
//! sealed segments into a [`DeltaSnapshot`] — the *exact additive
//! change* to the per-surface state — then merges it into the serving
//! artifact as a fresh epoch on the existing `SwapCell`/`ServiceHandle`
//! publish path.
//!
//! ## Projection invariants (the parity argument)
//!
//! The projector's source of truth is **exact integer state**: one
//! [`InterestFeatures`] per surface whose count fields
//! (`freq_exact`, `freq_phrase_contained`) accumulate event
//! contributions as plain `u64` additions. A snapshot is always rebuilt
//! by a *pure function* of that state: surfaces in sorted order, the
//! packed store's quantizers refitted over the full cumulative set —
//! exactly what a from-scratch build over the concatenated log would
//! fit. Because integer addition is associative and the rebuild is
//! pure, **bootstrap-then-N-deltas is bit-exact with one bootstrap over
//! everything**: same packed bytes, same quantizers, same rankings.
//! (Quantizing *increments* instead would break this — lossy state can
//! not be folded exactly.)
//!
//! The relevance store, TID table, and trained model are *frozen* at
//! bootstrap: deltas adjust interestingness counts and CTR state, while
//! keyword mining and retraining remain full-rebuild work (ROADMAP).
//! Click feedback rides the §VIII online adjuster, which the
//! `ServiceHandle` already carries across publishes.
//!
//! ## Epoch semantics
//!
//! [`Snapshot::merge_delta`] demands that the snapshot being merged
//! into is the one the projector last produced (epochs must match), so
//! a delta can never silently skip a generation; the produced snapshot
//! claims the next process-wide epoch through the ordinary
//! [`SnapshotBuilder`] path.

use crate::packed::PackedInterestStore;
use crate::relstore::PackedRelevanceStore;
use crate::snapshot::{Snapshot, SnapshotBuilder, SnapshotError};
use crate::swap::ServiceHandle;
use crate::tid::GlobalTidTable;
use ctxrank_features::InterestFeatures;
use ctxrank_ltr::RankModel;
use ctxrank_querylog::{Event, SegmentError, SegmentStore};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The components a delta publish does *not* change: frozen at
/// bootstrap, cloned into every incremental epoch. Re-mining keywords
/// or retraining the model requires a full rebuild (the bootstrap case
/// of this same projection).
#[derive(Debug, Clone)]
pub struct FrozenParts {
    pub relevance: PackedRelevanceStore,
    pub tids: GlobalTidTable,
    pub model: RankModel,
}

/// Additive per-surface change carried by one delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SurfaceAdd {
    /// Queries exactly equal to the surface (Table I feature 1).
    pub freq_exact: u64,
    /// Queries containing the surface as a contiguous phrase, counted
    /// per occurrence (Table I feature 2).
    pub freq_phrase: u64,
    /// Click-report impressions.
    pub views: u64,
    /// Click-report clicks.
    pub clicks: u64,
    /// True when this surface was first observed in this delta (a click
    /// report on a concept the bootstrap never saw).
    pub new_surface: bool,
}

/// The folded, additive summary of a batch of events: everything a
/// merge needs, decoupled from the segments it came from. Ordered map
/// so iteration (and therefore feedback/publish behavior) is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSnapshot {
    /// Per-surface additions.
    pub adds: BTreeMap<String, SurfaceAdd>,
    /// Events folded into this delta (whether or not they touched a
    /// known surface).
    pub events: u64,
    /// Segment range `[from, next)` this delta covers when folded from
    /// a store; `None` for raw event batches.
    pub segments: Option<(u64, u64)>,
}

impl DeltaSnapshot {
    /// True when no event touched any surface.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty()
    }

    /// Total views/clicks carried (the adjuster feed).
    pub fn click_totals(&self) -> (u64, u64) {
        self.adds
            .values()
            .fold((0, 0), |(v, c), a| (v + a.views, c + a.clicks))
    }
}

/// Why a merge was refused.
#[derive(Debug)]
pub enum DeltaError {
    /// The snapshot being merged into is not the projector's latest:
    /// applying would fork the epoch lineage.
    EpochMismatch { snapshot: u64, projector: u64 },
    /// Rebuilding the snapshot failed.
    Snapshot(SnapshotError),
    /// Reading the segment store failed.
    Segment(SegmentError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::EpochMismatch {
                snapshot,
                projector,
            } => write!(
                f,
                "delta targets epoch {projector} but snapshot is epoch {snapshot}"
            ),
            DeltaError::Snapshot(e) => write!(f, "delta rebuild: {e}"),
            DeltaError::Segment(e) => write!(f, "delta segment read: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::EpochMismatch { .. } => None,
            DeltaError::Snapshot(e) => Some(e),
            DeltaError::Segment(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for DeltaError {
    fn from(e: SnapshotError) -> Self {
        DeltaError::Snapshot(e)
    }
}

impl From<SegmentError> for DeltaError {
    fn from(e: SegmentError) -> Self {
        DeltaError::Segment(e)
    }
}

/// Features a surface starts from when a delta admits it: only the
/// shape-derived fields are known (size in words, length in chars); the
/// query-log and encyclopedia features accumulate from subsequent
/// events.
fn admitted_features(surface: &str) -> InterestFeatures {
    InterestFeatures {
        concept_size: surface.split(' ').filter(|t| !t.is_empty()).count() as u32,
        number_of_chars: surface.chars().count() as u32,
        ..InterestFeatures::default()
    }
}

/// Folds event batches into [`DeltaSnapshot`]s and merges them into
/// successive epochs. Owns the exact cumulative per-surface state plus
/// the frozen (bootstrap-time) components.
pub struct SnapshotProjector {
    frozen: FrozenParts,
    /// Exact cumulative state, sorted by surface: the rebuild input.
    state: BTreeMap<String, InterestFeatures>,
    /// Longest known surface in words — bounds the n-gram scan when
    /// folding query events.
    max_surface_terms: usize,
    /// Epoch of the snapshot this projector last produced.
    epoch: u64,
    /// First segment seq the next [`Self::delta_from`] will fold.
    folded_seq: u64,
    /// Events folded into published state so far (ingest-lag metric).
    events_applied: u64,
}

impl std::fmt::Debug for SnapshotProjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotProjector")
            .field("surfaces", &self.state.len())
            .field("epoch", &self.epoch)
            .field("folded_seq", &self.folded_seq)
            .field("events_applied", &self.events_applied)
            .finish_non_exhaustive()
    }
}

impl SnapshotProjector {
    /// The bootstrap case of the projection: exact base state (from a
    /// full offline build — or empty, for a log-only system) plus the
    /// frozen components, producing the first snapshot. The offline
    /// pipeline's publish stage routes through here, so "full build"
    /// and "delta publish" are the same projection applied to different
    /// prefixes of the log.
    pub fn bootstrap(
        frozen: FrozenParts,
        base: impl IntoIterator<Item = (String, InterestFeatures)>,
    ) -> Result<(Self, Arc<Snapshot>), SnapshotError> {
        let state: BTreeMap<String, InterestFeatures> = base.into_iter().collect();
        let max_surface_terms = state
            .keys()
            .map(|s| s.split(' ').filter(|t| !t.is_empty()).count())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut projector = Self {
            frozen,
            state,
            max_surface_terms,
            epoch: 0,
            folded_seq: 0,
            events_applied: 0,
        };
        let snapshot = projector.rebuild()?;
        Ok((projector, snapshot))
    }

    /// Fold an event batch into its additive summary. Pure with respect
    /// to the projector: nothing is mutated until [`Self::apply`].
    ///
    /// Events are scanned in order, and a surface admitted by a click
    /// event starts matching query events from that point on — so
    /// folding a log in one batch or splitting it at any boundary
    /// yields the same cumulative state (the parity invariant).
    pub fn fold(&self, events: &[Event]) -> DeltaSnapshot {
        let mut delta = DeltaSnapshot {
            events: events.len() as u64,
            ..DeltaSnapshot::default()
        };
        let mut max_terms = self.max_surface_terms;
        for event in events {
            match event {
                // A rank-annotated click projects exactly like a plain
                // click: the snapshot's CTR counts are rank-agnostic
                // (the rank matters to the online adjuster's propensity
                // weighting, not to the additive projection).
                Event::Click {
                    surface,
                    views,
                    clicks,
                    ..
                }
                | Event::RankedClick {
                    surface,
                    views,
                    clicks,
                    ..
                } => {
                    let known = self.state.contains_key(surface)
                        || delta.adds.get(surface).is_some_and(|a| a.new_surface);
                    let add = delta.adds.entry(surface.clone()).or_default();
                    if !known {
                        add.new_surface = true;
                        max_terms =
                            max_terms.max(surface.split(' ').filter(|t| !t.is_empty()).count());
                    }
                    add.views += views;
                    add.clicks += clicks;
                }
                Event::Query { terms, freq } => {
                    if terms.is_empty() || *freq == 0 {
                        continue;
                    }
                    // Exact match: the whole query is the surface.
                    let joined = terms.join(" ");
                    if self.surface_exists(&joined, &delta) {
                        delta.adds.entry(joined).or_default().freq_exact += freq;
                    }
                    // Containment: every n-gram occurrence, n bounded by
                    // the longest surface we could possibly match.
                    for n in 1..=max_terms.min(terms.len()) {
                        for window in terms.windows(n) {
                            let phrase = window.join(" ");
                            if self.surface_exists(&phrase, &delta) {
                                delta.adds.entry(phrase).or_default().freq_phrase += freq;
                            }
                        }
                    }
                }
            }
        }
        delta
    }

    fn surface_exists(&self, s: &str, delta: &DeltaSnapshot) -> bool {
        self.state.contains_key(s) || delta.adds.get(s).is_some_and(|a| a.new_surface)
    }

    /// Fold everything sealed since the last applied delta.
    pub fn delta_from(&self, store: &SegmentStore) -> Result<DeltaSnapshot, SegmentError> {
        let events = store.replay_from(self.folded_seq)?;
        let mut delta = self.fold(&events);
        delta.segments = Some((self.folded_seq, store.next_seq()));
        Ok(delta)
    }

    /// Merge a delta into the cumulative state and rebuild the next
    /// snapshot. Prefer [`Snapshot::merge_delta`], which also checks
    /// the epoch lineage.
    pub fn apply(&mut self, delta: &DeltaSnapshot) -> Result<Arc<Snapshot>, SnapshotError> {
        for (surface, add) in &delta.adds {
            let features = self
                .state
                .entry(surface.clone())
                .or_insert_with(|| admitted_features(surface));
            features.freq_exact += add.freq_exact;
            features.freq_phrase_contained += add.freq_phrase;
            if add.new_surface {
                self.max_surface_terms = self
                    .max_surface_terms
                    .max(surface.split(' ').filter(|t| !t.is_empty()).count());
            }
        }
        if let Some((_, next)) = delta.segments {
            self.folded_seq = self.folded_seq.max(next);
        }
        self.events_applied += delta.events;
        self.rebuild()
    }

    /// Fold + merge + feed the online adjuster + publish through the
    /// handle, in one call: the click-to-served-epoch path. Returns the
    /// published epoch, or the epoch already served when nothing new
    /// was sealed.
    pub fn publish_from(
        &mut self,
        store: &SegmentStore,
        handle: &ServiceHandle,
    ) -> Result<u64, DeltaError> {
        let delta = self.delta_from(store)?;
        if delta.events == 0 {
            return Ok(handle.epoch());
        }
        let next = handle.current().merge_delta(self, &delta)?;
        // §VIII: click counts reach the adjuster *before* the snapshot
        // flips, so the first request on the new epoch already sees the
        // fresher CTR state.
        for (surface, add) in &delta.adds {
            if add.views > 0 {
                handle.record_feedback(surface, add.views, add.clicks);
            }
        }
        Ok(handle.publish(next))
    }

    /// Rebuild the snapshot from cumulative state: the pure function at
    /// the heart of the parity invariant. Sorted surfaces in, packed
    /// store with freshly fitted quantizers out, next epoch claimed.
    fn rebuild(&mut self) -> Result<Arc<Snapshot>, SnapshotError> {
        let concepts: Vec<(String, InterestFeatures)> =
            self.state.iter().map(|(s, f)| (s.clone(), *f)).collect();
        let snapshot = SnapshotBuilder::new()
            .interest(PackedInterestStore::build(&concepts))
            .relevance(self.frozen.relevance.clone())
            .tids(self.frozen.tids.clone())
            .model(self.frozen.model.clone())
            .build()?;
        self.epoch = snapshot.epoch();
        Ok(snapshot)
    }

    /// Epoch of the snapshot this projector last produced.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Events folded into produced snapshots so far. The serving
    /// layer's ingest lag is `store.sealed_events() + store.active_events()
    /// - projector.events_applied()`.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// First segment sequence the next [`Self::delta_from`] will fold.
    pub fn folded_seq(&self) -> u64 {
        self.folded_seq
    }

    /// Surfaces in the cumulative state.
    pub fn surfaces(&self) -> usize {
        self.state.len()
    }
}

impl Snapshot {
    /// Merge `delta` into this snapshot, producing the next epoch.
    ///
    /// `self` must be the snapshot the projector last produced — the
    /// epochs are compared, and a mismatch is refused rather than
    /// silently forking the lineage (e.g. merging into a stale snapshot
    /// after another publisher already advanced the handle).
    pub fn merge_delta(
        &self,
        projector: &mut SnapshotProjector,
        delta: &DeltaSnapshot,
    ) -> Result<Arc<Snapshot>, DeltaError> {
        if self.epoch() != projector.epoch() {
            return Err(DeltaError::EpochMismatch {
                snapshot: self.epoch(),
                projector: projector.epoch(),
            });
        }
        Ok(projector.apply(delta)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_ltr::{train, RankGroup, SvmConfig};
    use ctxrank_querylog::SegmentConfig;

    fn frozen() -> FrozenParts {
        let mut tids = GlobalTidTable::new();
        let kw = ctxrank_features::RelevantTerms {
            terms: vec![(ctxrank_text::stem("sunspot"), 2.0)],
        };
        let relevance = PackedRelevanceStore::build(vec![("solar flares", &kw)], &mut tids);
        let groups: Vec<RankGroup> = (0..10)
            .map(|g| {
                RankGroup::from_pairs((0..2).map(|i| {
                    let mut f = vec![0.0; 10];
                    f[0] = (g + i) as f64;
                    (f, i as f64 * 0.01)
                }))
            })
            .collect();
        FrozenParts {
            relevance,
            tids,
            model: train(&groups, &SvmConfig::default()),
        }
    }

    fn base() -> Vec<(String, InterestFeatures)> {
        vec![
            (
                "solar flares".to_string(),
                InterestFeatures {
                    freq_exact: 100,
                    freq_phrase_contained: 150,
                    concept_size: 2,
                    number_of_chars: 12,
                    ..InterestFeatures::default()
                },
            ),
            (
                "oil".to_string(),
                InterestFeatures {
                    freq_exact: 40,
                    concept_size: 1,
                    number_of_chars: 3,
                    ..InterestFeatures::default()
                },
            ),
        ]
    }

    fn click(story: u64, surface: &str, views: u64, clicks: u64) -> Event {
        Event::Click {
            story,
            surface: surface.into(),
            views,
            clicks,
        }
    }

    fn query(terms: &[&str], freq: u64) -> Event {
        Event::Query {
            terms: terms.iter().map(|s| s.to_string()).collect(),
            freq,
        }
    }

    #[test]
    fn fold_counts_exact_and_contained_queries() {
        let (projector, _) = SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
        let delta = projector.fold(&[
            query(&["solar", "flares"], 5),
            query(&["big", "solar", "flares", "today"], 2),
            query(&["oil"], 7),
            query(&["unrelated", "terms"], 9),
        ]);
        let sf = delta.adds["solar flares"];
        assert_eq!(sf.freq_exact, 5);
        // Both queries contain the phrase; the exact one counts too.
        assert_eq!(sf.freq_phrase, 7);
        let oil = delta.adds["oil"];
        assert_eq!(oil.freq_exact, 7);
        assert_eq!(oil.freq_phrase, 7);
        assert!(!delta.adds.contains_key("unrelated terms"));
        assert_eq!(delta.events, 4);
    }

    #[test]
    fn fold_admits_new_surfaces_from_clicks_only() {
        let (projector, _) = SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
        let delta = projector.fold(&[
            query(&["meteor", "shower"], 3), // unknown at this point
            click(7, "meteor shower", 200, 9),
            query(&["meteor", "shower"], 4), // known from here on
        ]);
        let ms = delta.adds["meteor shower"];
        assert!(ms.new_surface);
        assert_eq!(ms.views, 200);
        assert_eq!(ms.clicks, 9);
        assert_eq!(ms.freq_exact, 4, "only queries after admission count");
        assert_eq!(ms.freq_phrase, 4);
    }

    #[test]
    fn apply_advances_epoch_and_state() {
        let (mut projector, first) =
            SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
        assert_eq!(projector.epoch(), first.epoch());
        let delta = projector.fold(&[query(&["oil"], 60), click(1, "oil", 500, 20)]);
        let next = first.merge_delta(&mut projector, &delta).expect("merge");
        assert!(next.epoch() > first.epoch());
        assert_eq!(projector.epoch(), next.epoch());
        assert_eq!(projector.events_applied(), 2);
        // freq_exact 40 → 100: the packed feature moved.
        let before = first.interest().dense("oil").expect("stored")[0];
        let after = next.interest().dense("oil").expect("stored")[0];
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn merge_into_stale_snapshot_refused() {
        let (mut projector, first) =
            SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
        let delta = projector.fold(&[query(&["oil"], 1)]);
        let _second = first.merge_delta(&mut projector, &delta).expect("merge");
        let err = first
            .merge_delta(&mut projector, &delta)
            .expect_err("stale epoch");
        assert!(matches!(err, DeltaError::EpochMismatch { .. }), "{err}");
        assert!(err.to_string().contains("epoch"));
    }

    #[test]
    fn bootstrap_plus_deltas_is_bit_exact_with_one_bootstrap() {
        let events = vec![
            query(&["solar", "flares"], 5),
            click(1, "solar flares", 1000, 40),
            click(1, "meteor shower", 300, 6),
            query(&["meteor", "shower", "tonight"], 8),
            query(&["oil"], 3),
            click(2, "oil", 700, 11),
        ];
        for split in 0..=events.len() {
            // One projector folds everything in a single delta...
            let (mut whole, snap_w) =
                SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
            let d = whole.fold(&events);
            let all = snap_w.merge_delta(&mut whole, &d).expect("merge");
            // ...the other in two batches split at `split`.
            let (mut parts, snap_p) =
                SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
            let d1 = parts.fold(&events[..split]);
            let mid = snap_p.merge_delta(&mut parts, &d1).expect("merge 1");
            let d2 = parts.fold(&events[split..]);
            let two = mid.merge_delta(&mut parts, &d2).expect("merge 2");

            assert_eq!(
                all.interest().quantizers(),
                two.interest().quantizers(),
                "split {split}: refit quantizers must agree"
            );
            for surface in ["solar flares", "oil", "meteor shower"] {
                assert_eq!(
                    all.interest().dense(surface),
                    two.interest().dense(surface),
                    "split {split}: packed row for {surface}"
                );
            }
            assert_eq!(all.interest().len(), two.interest().len());
        }
    }

    #[test]
    fn publish_from_store_reaches_the_handle() {
        let (mut projector, first) =
            SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
        let handle = ServiceHandle::new(first);
        let mut store = SegmentStore::in_memory(SegmentConfig::default());
        store
            .append(&click(3, "solar flares", 400, 24))
            .expect("append");
        store
            .append(&query(&["solar", "flares"], 9))
            .expect("append");
        store.seal().expect("seal");

        let before = handle.epoch();
        let epoch = projector.publish_from(&store, &handle).expect("publish");
        assert!(epoch > before);
        assert_eq!(handle.epoch(), epoch);
        assert_eq!(projector.events_applied(), 2);
        assert!(
            handle.adjustment("solar flares").abs() > 0.0 || !handle.adjuster_state().is_empty(),
            "click feedback must reach the adjuster"
        );
        // Nothing new sealed → no new epoch.
        let again = projector.publish_from(&store, &handle).expect("noop");
        assert_eq!(again, epoch);
        assert_eq!(handle.epoch(), epoch);

        // More sealed events → another epoch, folding only the new
        // segment.
        store.append(&click(4, "oil", 100, 2)).expect("append");
        store.seal().expect("seal");
        let third = projector.publish_from(&store, &handle).expect("publish 2");
        assert!(third > epoch);
        assert_eq!(projector.events_applied(), 3);
    }
}
