//! The runtime Ranker (§VI, Figure 4).
//!
//! Flow for one incoming document: the **Stemmer** produces the stemmed
//! context once; detected candidate concepts are looked up in the packed
//! interestingness store (hash table, constant time) and the packed
//! relevance store (TIDs matched against the context's TID set); the
//! learned linear model combines the ten features into a final score and
//! the candidates are returned ranked, relevance breaking ties (§V-A.6).
//!
//! [`RuntimeRanker`] is a *stateless view* over an [`Arc<Snapshot>`]:
//! all stores, the model, and the stem memo cache live in the snapshot,
//! so views are free to create, trivially cloneable, and many of them
//! can serve the same artifact concurrently. A view is pinned to the
//! snapshot it was created from — rankings through it are immune to
//! hot-swaps happening on a [`crate::swap::ServiceHandle`].

use crate::packed::PackedInterestStore;
use crate::relstore::PackedRelevanceStore;
use crate::snapshot::{Snapshot, SnapshotBuilder};
use crate::tid::{GlobalTidTable, TermId};
use ctxrank_ltr::RankModel;
use std::collections::HashSet;
use std::sync::Arc;

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedConcept {
    pub surface: String,
    /// Final model score.
    pub score: f64,
    /// The raw relevance score used for tie-breaking.
    pub relevance: f64,
}

/// The assembled production ranker: a thin view over one frozen
/// [`Snapshot`].
#[derive(Clone)]
pub struct RuntimeRanker {
    snapshot: Arc<Snapshot>,
}

impl std::fmt::Debug for RuntimeRanker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeRanker")
            .field("epoch", &self.snapshot.epoch())
            .field("concepts", &self.snapshot.interest().len())
            .finish_non_exhaustive()
    }
}

impl RuntimeRanker {
    /// Assemble a ranker from its frozen stores and a trained model
    /// (one fresh snapshot via [`SnapshotBuilder`]).
    ///
    /// # Panics
    /// Panics when the model is an RBF model — the production framework
    /// runs the linear model (packed features feed a dot product).
    pub fn new(
        interest: PackedInterestStore,
        relevance: PackedRelevanceStore,
        tids: GlobalTidTable,
        model: RankModel,
    ) -> Self {
        assert!(
            !model.is_rbf(),
            "the production ranker requires a linear model"
        );
        let snapshot = SnapshotBuilder::new()
            .interest(interest)
            .relevance(relevance)
            .tids(tids)
            .model(model)
            .build()
            .expect("all components supplied and model checked linear");
        Self { snapshot }
    }

    /// A view over an existing snapshot.
    pub fn from_snapshot(snapshot: Arc<Snapshot>) -> Self {
        Self { snapshot }
    }

    /// The snapshot this view is pinned to.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// Unwrap the view into its pinned snapshot.
    pub fn into_snapshot(self) -> Arc<Snapshot> {
        self.snapshot
    }

    /// The pinned snapshot's epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The packed interestingness store.
    pub fn interest(&self) -> &PackedInterestStore {
        self.snapshot.interest()
    }

    /// The packed relevance-keyword store.
    pub fn relevance(&self) -> &PackedRelevanceStore {
        self.snapshot.relevance()
    }

    /// The Global TID Table.
    pub fn tids(&self) -> &GlobalTidTable {
        self.snapshot.tids()
    }

    /// The trained ranking model.
    pub fn model(&self) -> &RankModel {
        self.snapshot.model()
    }

    /// Run the Stemmer component: the document's stemmed context terms.
    pub fn stem_document(&self, text: &str) -> Vec<String> {
        ctxrank_text::stemmed_terms(text)
    }

    /// The document's context TID set, resolved through the snapshot's
    /// sharded stem cache.
    pub fn context_tids_cached(&self, text: &str) -> HashSet<TermId> {
        self.snapshot.context_tids_cached(text)
    }

    /// Rank `candidates` (concept surfaces detected in `text`) for the
    /// document. Returns candidates sorted by score, relevance breaking
    /// ties; candidates missing from the stores still participate with
    /// zeroed features.
    pub fn rank(&self, text: &str, candidates: &[String]) -> Vec<RankedConcept> {
        let context = self.context_tids_cached(text);
        self.rank_in_context(&context, candidates)
    }

    /// Rank against an already-resolved context TID set.
    fn rank_in_context(
        &self,
        context: &HashSet<TermId>,
        candidates: &[String],
    ) -> Vec<RankedConcept> {
        let snapshot = &*self.snapshot;
        let mut out: Vec<RankedConcept> = candidates
            .iter()
            .map(|surface| {
                let mut features = snapshot
                    .interest()
                    .dense(surface)
                    .unwrap_or_else(|| vec![0.0; ctxrank_features::InterestFeatures::DIM]);
                let rel = snapshot.relevance().score(surface, context);
                features.push(rel.ln_1p());
                RankedConcept {
                    surface: surface.clone(),
                    score: snapshot.model().score(&features),
                    relevance: rel,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.relevance
                        .partial_cmp(&a.relevance)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then_with(|| a.surface.cmp(&b.surface))
        });
        out
    }

    /// Rank a batch of documents, fanning them across worker threads
    /// ([`ctxrank_parallel::num_threads`]; `CTXRANK_THREADS` overrides).
    /// Output `i` is exactly `self.rank(docs[i].0, docs[i].1)` — the
    /// batch shares the stem cache but order never depends on
    /// scheduling, and the whole batch runs on this view's one pinned
    /// snapshot.
    pub fn rank_batch(&self, docs: &[(&str, &[String])]) -> Vec<Vec<RankedConcept>> {
        self.rank_batch_with_threads(docs, ctxrank_parallel::num_threads())
    }

    /// [`RuntimeRanker::rank_batch`] with an explicit worker count.
    pub fn rank_batch_with_threads(
        &self,
        docs: &[(&str, &[String])],
        threads: usize,
    ) -> Vec<Vec<RankedConcept>> {
        ctxrank_parallel::par_map(threads, docs, |(text, candidates)| {
            self.rank(text, candidates)
        })
    }

    /// Take the top `n` after ranking.
    pub fn top_n(&self, text: &str, candidates: &[String], n: usize) -> Vec<RankedConcept> {
        let mut ranked = self.rank(text, candidates);
        ranked.truncate(n);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_features::{InterestFeatures, RelevantTerms};
    use ctxrank_ltr::{train, RankGroup, SvmConfig};

    /// A tiny world: two concepts, one clearly better, a model trained
    /// to prefer higher freq_exact and relevance.
    fn build_ranker() -> RuntimeRanker {
        let hot = (
            "solar flares".to_string(),
            InterestFeatures {
                freq_exact: 1000,
                freq_phrase_contained: 1500,
                unit_score: 0.9,
                searchengine_phrase: 500,
                concept_size: 2,
                number_of_chars: 12,
                subconcepts: 0,
                high_level_type: 4,
                wiki_word_count: 2000,
            },
        );
        let cold = (
            "random stuff".to_string(),
            InterestFeatures {
                freq_exact: 5,
                freq_phrase_contained: 9,
                unit_score: 0.3,
                searchengine_phrase: 3000,
                concept_size: 2,
                number_of_chars: 12,
                subconcepts: 0,
                high_level_type: 0,
                wiki_word_count: 0,
            },
        );
        let interest = PackedInterestStore::build(&[hot.clone(), cold.clone()]);

        let mut tids = GlobalTidTable::new();
        let hot_kw = RelevantTerms {
            terms: vec![
                (ctxrank_text::stem("sunspot"), 9.0),
                (ctxrank_text::stem("telescope"), 6.0),
                (ctxrank_text::stem("radiation"), 5.0),
            ],
        };
        let cold_kw = RelevantTerms {
            terms: vec![(ctxrank_text::stem("garage"), 0.8)],
        };
        let relevance = PackedRelevanceStore::build(
            vec![("solar flares", &hot_kw), ("random stuff", &cold_kw)],
            &mut tids,
        );

        // Train a model on synthetic groups whose labels follow
        // freq_exact + relevance (dims 0 and 9).
        let groups: Vec<RankGroup> = (0..30)
            .map(|i| {
                let base = i as f64 * 0.01;
                RankGroup::from_pairs(vec![
                    (
                        {
                            let mut f = vec![0.0; 10];
                            f[0] = 7.0 + base;
                            f[9] = 2.0;
                            f
                        },
                        0.10,
                    ),
                    (
                        {
                            let mut f = vec![0.0; 10];
                            f[0] = 1.0;
                            f[9] = 0.2 + base * 0.1;
                            f
                        },
                        0.01,
                    ),
                ])
            })
            .collect();
        let model = train(&groups, &SvmConfig::default());

        RuntimeRanker::new(interest, relevance, tids, model)
    }

    #[test]
    fn hot_concept_ranks_first_in_context() {
        let ranker = build_ranker();
        let text = "the telescope captured radiation from a sunspot region";
        let ranked = ranker.rank(
            text,
            &["random stuff".to_string(), "solar flares".to_string()],
        );
        assert_eq!(ranked[0].surface, "solar flares");
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn relevance_reflects_context() {
        let ranker = build_ranker();
        let on = ranker.rank("telescope radiation sunspot", &["solar flares".to_string()]);
        let off = ranker.rank("stock market rally", &["solar flares".to_string()]);
        assert!(on[0].relevance > off[0].relevance);
    }

    #[test]
    fn unknown_candidate_scores_with_zero_features() {
        let ranker = build_ranker();
        let ranked = ranker.rank("anything", &["never seen".to_string()]);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].relevance, 0.0);
    }

    #[test]
    fn top_n_truncates() {
        let ranker = build_ranker();
        let ranked = ranker.top_n(
            "telescope sunspot",
            &[
                "solar flares".to_string(),
                "random stuff".to_string(),
                "never seen".to_string(),
            ],
            2,
        );
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn empty_candidates() {
        let ranker = build_ranker();
        assert!(ranker.rank("text", &[]).is_empty());
    }

    #[test]
    fn cached_context_matches_uncached() {
        let ranker = build_ranker();
        let text = "The telescope observed radiation; telescope readings repeat, repeat.";
        let expected = ranker
            .tids()
            .context_tids(ranker.stem_document(text).iter().map(String::as_str));
        // Cold cache, then warm cache: both must equal the uncached path.
        assert_eq!(ranker.context_tids_cached(text), expected);
        assert_eq!(ranker.context_tids_cached(text), expected);
    }

    #[test]
    fn rank_batch_matches_per_doc_rank() {
        let ranker = build_ranker();
        let cands = vec!["solar flares".to_string(), "random stuff".to_string()];
        let texts = [
            "the telescope captured radiation from a sunspot region",
            "stock market rally",
            "garage sale near the telescope shop",
        ];
        let docs: Vec<(&str, &[String])> = texts.iter().map(|t| (*t, cands.as_slice())).collect();
        for threads in [1, 4] {
            let batch = ranker.rank_batch_with_threads(&docs, threads);
            assert_eq!(batch.len(), docs.len());
            for ((text, cands), ranked) in docs.iter().zip(&batch) {
                assert_eq!(ranked, &ranker.rank(text, cands), "threads={threads}");
            }
        }
    }

    #[test]
    fn stemmer_component_runs() {
        let ranker = build_ranker();
        let stems = ranker.stem_document("The telescopes were observing.");
        assert_eq!(
            stems,
            vec![
                ctxrank_text::stem("telescopes"),
                ctxrank_text::stem("observing")
            ]
        );
    }

    #[test]
    fn cloned_views_share_the_snapshot() {
        let ranker = build_ranker();
        let view = ranker.clone();
        assert!(Arc::ptr_eq(ranker.snapshot(), view.snapshot()));
        assert_eq!(ranker.epoch(), view.epoch());
    }
}
