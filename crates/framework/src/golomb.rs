//! Golomb–Rice coding of sorted TID lists.
//!
//! §VI: "this cost can be even further reduced through ... integer
//! compression techniques, such as Golomb Coding \[26\]." We implement the
//! Rice special case (the Golomb parameter restricted to powers of two),
//! which is what production inverted-index systems use: delta-encode the
//! sorted ids, write each delta as a unary quotient plus a fixed-width
//! remainder.

/// A growable bit buffer.
#[derive(Debug, Clone, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    fn push_bit(&mut self, bit: bool) {
        let byte = self.bit_len / 8;
        if byte == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte] |= 1 << (7 - self.bit_len % 8);
        }
        self.bit_len += 1;
    }

    fn push_bits(&mut self, value: u64, width: u32) {
        for i in (0..width).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }
}

/// A bit reader over an encoded buffer.
#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit_len: usize,
}

impl<'a> BitReader<'a> {
    fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_len {
            return None;
        }
        let bit = self.bytes[self.pos / 8] & (1 << (7 - self.pos % 8)) != 0;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, width: u32) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

/// Encoded Golomb/Rice stream: the bytes plus the exact bit length and
/// the element count needed for decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GolombEncoded {
    pub bytes: Vec<u8>,
    pub bit_len: usize,
    pub count: usize,
    /// Rice parameter: remainder width in bits.
    pub k: u32,
}

impl GolombEncoded {
    /// Compressed size in whole bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// The Rice parameter minimizing expected code length for the observed
/// mean delta: `k ≈ log2(mean)`.
pub fn optimal_rice_parameter(sorted_ids: &[u32]) -> u32 {
    if sorted_ids.is_empty() {
        return 0;
    }
    let span = *sorted_ids.last().expect("nonempty") as u64 + 1;
    let mean = (span as f64 / sorted_ids.len() as f64).max(1.0);
    mean.log2().floor().max(0.0) as u32
}

/// Delta–Rice encode a strictly increasing id list.
///
/// # Panics
/// Panics if the list is not strictly increasing.
pub fn golomb_encode(sorted_ids: &[u32], k: u32) -> GolombEncoded {
    let mut w = BitWriter::default();
    let mut prev: i64 = -1;
    for &id in sorted_ids {
        assert!(
            (id as i64) > prev,
            "golomb_encode needs strictly increasing input"
        );
        // Gap is >= 1; encode gap - 1 so dense lists stay cheap.
        let gap = (id as i64 - prev - 1) as u64;
        prev = id as i64;
        let q = gap >> k;
        for _ in 0..q {
            w.push_bit(true);
        }
        w.push_bit(false);
        w.push_bits(gap & ((1u64 << k) - 1), k);
    }
    GolombEncoded {
        bytes: w.bytes,
        bit_len: w.bit_len,
        count: sorted_ids.len(),
        k,
    }
}

/// Decode a stream produced by [`golomb_encode`].
pub fn golomb_decode(enc: &GolombEncoded) -> Vec<u32> {
    let mut r = BitReader {
        bytes: &enc.bytes,
        pos: 0,
        bit_len: enc.bit_len,
    };
    let mut out = Vec::with_capacity(enc.count);
    let mut prev: i64 = -1;
    for _ in 0..enc.count {
        let mut q: u64 = 0;
        while r.read_bit().expect("truncated unary part") {
            q += 1;
        }
        let rem = r.read_bits(enc.k).expect("truncated remainder");
        let gap = (q << enc.k) | rem;
        let id = (prev + 1 + gap as i64) as u32;
        prev = id as i64;
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let ids = vec![3, 7, 8, 20, 90, 91, 4000];
        for k in 0..8 {
            let enc = golomb_encode(&ids, k);
            assert_eq!(golomb_decode(&enc), ids, "k={k}");
        }
    }

    #[test]
    fn roundtrip_dense_and_sparse() {
        let dense: Vec<u32> = (0..500).collect();
        let sparse: Vec<u32> = (0..100).map(|i| i * 997).collect();
        for ids in [dense, sparse] {
            let k = optimal_rice_parameter(&ids);
            let enc = golomb_encode(&ids, k);
            assert_eq!(golomb_decode(&enc), ids);
        }
    }

    #[test]
    fn compresses_clustered_ids() {
        // 100 ids clustered in a small range: 400 raw bytes, far fewer
        // compressed.
        let ids: Vec<u32> = (0..100u32).map(|i| 50_000 + i * 3).collect();
        let k = optimal_rice_parameter(&ids);
        let enc = golomb_encode(&ids, k);
        assert!(
            enc.byte_len() < ids.len() * 4,
            "compressed {} bytes vs raw {}",
            enc.byte_len(),
            ids.len() * 4
        );
    }

    #[test]
    fn empty_list() {
        let enc = golomb_encode(&[], 3);
        assert_eq!(enc.count, 0);
        assert!(golomb_decode(&enc).is_empty());
    }

    #[test]
    fn single_element() {
        let enc = golomb_encode(&[42], 2);
        assert_eq!(golomb_decode(&enc), vec![42]);
    }

    #[test]
    fn zero_k_is_pure_unary() {
        let ids = vec![0, 1, 2];
        let enc = golomb_encode(&ids, 0);
        assert_eq!(golomb_decode(&enc), ids);
        // Gaps of 0 encode as a single 0-bit each.
        assert_eq!(enc.bit_len, 3);
    }

    #[test]
    fn large_tids_roundtrip() {
        let ids = vec![4_194_300, 4_194_301, 4_194_303];
        let k = optimal_rice_parameter(&ids);
        let enc = golomb_encode(&ids, k);
        assert_eq!(golomb_decode(&enc), ids);
    }

    #[test]
    #[should_panic]
    fn non_increasing_rejected() {
        let _ = golomb_encode(&[5, 5], 2);
    }

    #[test]
    fn optimal_parameter_scales_with_sparsity() {
        let dense: Vec<u32> = (0..1000).collect();
        let sparse: Vec<u32> = (0..10).map(|i| i * 100_000).collect();
        assert!(optimal_rice_parameter(&sparse) > optimal_rice_parameter(&dense));
    }
}
