//! The end-to-end annotation pipeline.
//!
//! §II: "A sequence of pre-processing steps handles HTML parsing,
//! tokenization, sentence, and paragraph boundary detection. Next,
//! specialized detectors discover entities of various pre-defined types
//! ... as well as abstract concepts derived from search engine query
//! logs. Finally, a sequence of post-processing steps handles collision
//! detection between overlapping entities, disambiguation, filtering, and
//! output annotation."
//!
//! [`Pipeline::process`] runs that flow and returns the plain text with
//! its [`Annotation`]s, each carrying the baseline concept-vector score
//! (§II-B) that the ranking experiments compare against.

use crate::conceptdet::ConceptDetector;
use crate::dictionary::EntityDictionary;
use crate::patterns::{detect_patterns, PatternType};
use crate::vector::{ConceptVectorBuilder, ConceptVectorConfig};
use ctxrank_querylog::UnitDictionary;
use ctxrank_text::Span;
use std::collections::HashMap;

/// What kind of thing an annotation is.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectionKind {
    /// Email / URL / phone. Always annotated, never ranked (§II-A).
    Pattern(PatternType),
    /// A dictionary named entity with taxonomy metadata.
    Entity {
        type_code: u8,
        subtype: String,
        geo: Option<(f64, f64)>,
    },
    /// A query-log concept.
    Concept,
}

impl DetectionKind {
    /// Is this a pattern-based entity?
    pub fn is_pattern(&self) -> bool {
        matches!(self, DetectionKind::Pattern(_))
    }
}

/// One annotated span in the processed document.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Byte span into [`ProcessedDoc::text`].
    pub span: Span,
    /// Normalized surface form (lower-case, space-joined terms).
    pub surface: String,
    pub kind: DetectionKind,
    /// Baseline concept-vector score (§II-B); 0 for pattern entities.
    pub score: f64,
    /// Fractional position of the span start in the document, `[0, 1)` —
    /// used by the click model's position bias.
    pub position_frac: f64,
}

/// Output of the pipeline: plain text plus its annotations in document
/// order.
#[derive(Debug, Clone)]
pub struct ProcessedDoc {
    pub text: String,
    pub annotations: Vec<Annotation>,
}

impl ProcessedDoc {
    /// Annotations that are subject to ranking (entities and concepts,
    /// not patterns).
    pub fn rankable(&self) -> impl Iterator<Item = &Annotation> {
        self.annotations.iter().filter(|a| !a.kind.is_pattern())
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Concept-vector thresholds.
    pub vector: ConceptVectorConfig,
    /// Minimum unit score for concept detection.
    pub concept_min_score: f64,
    /// Context window (tokens) for dictionary disambiguation.
    pub disambiguation_window: usize,
    /// Drop rankable annotations whose surface is shorter than this many
    /// characters (filtering step).
    pub min_surface_chars: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            vector: ConceptVectorConfig::default(),
            concept_min_score: 0.05,
            disambiguation_window: 10,
            min_surface_chars: 2,
        }
    }
}

impl PipelineConfig {
    /// Default configuration with the §II-B multi-term bonus toggled —
    /// the one knob experiment builds vary.
    pub fn with_multiterm_bonus(bonus: bool) -> Self {
        let mut config = Self::default();
        config.vector.multiterm_bonus = bonus;
        config
    }
}

/// The assembled platform.
pub struct Pipeline<'a> {
    dictionary: &'a EntityDictionary,
    units: &'a UnitDictionary,
    /// `Sync` so one pipeline can annotate stories from worker threads.
    idf: Box<dyn Fn(&str) -> f64 + Sync + 'a>,
    config: PipelineConfig,
}

impl<'a> std::fmt::Debug for Pipeline<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> Pipeline<'a> {
    /// Assemble a pipeline from its knowledge sources.
    pub fn new(
        dictionary: &'a EntityDictionary,
        units: &'a UnitDictionary,
        idf: impl Fn(&str) -> f64 + Sync + 'a,
        config: PipelineConfig,
    ) -> Self {
        Self {
            dictionary,
            units,
            idf: Box::new(idf),
            config,
        }
    }

    /// Run the full pipeline over a (possibly HTML) document.
    pub fn process(&self, raw: &str) -> ProcessedDoc {
        // Pre-processing: HTML → plain text → offset-preserving tokens →
        // sentence ids (multi-token matches must not straddle a sentence
        // boundary; that is what §II's boundary detection is for).
        let text = ctxrank_text::strip_html(raw);
        let tokens = ctxrank_text::tokenize(&text);
        let norm: Vec<String> = tokens
            .iter()
            .map(|t| ctxrank_text::normalize_term(t.text))
            .collect();
        let sentence_spans = ctxrank_text::sentences(&text);
        // Token starts are non-decreasing and sentence spans are sorted,
        // so one merge pass assigns every token its sentence. Tokens
        // outside any sentence get a unique id (never "same sentence").
        let mut si = 0;
        let sentence_of: Vec<usize> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| {
                while si < sentence_spans.len() && sentence_spans[si].end <= t.start {
                    si += 1;
                }
                match sentence_spans.get(si) {
                    Some(s) if s.contains(t.start) => si,
                    _ => usize::MAX - i,
                }
            })
            .collect();
        let same_sentence = |start: usize, len: usize| -> bool {
            len <= 1
                || sentence_of[start..start + len]
                    .windows(2)
                    .all(|w| w[0] == w[1])
        };
        let doc_len = text.len().max(1) as f64;

        // Detection.
        let mut candidates: Vec<Annotation> = Vec::new();
        for m in detect_patterns(&text) {
            candidates.push(Annotation {
                surface: m.of(&text).to_string(),
                span: m.span,
                kind: DetectionKind::Pattern(m.kind),
                score: 0.0,
                position_frac: m.span.start as f64 / doc_len,
            });
        }
        for m in self
            .dictionary
            .detect(&norm, self.config.disambiguation_window)
        {
            if !same_sentence(m.token_start, m.token_len) {
                continue;
            }
            let span = token_span(&tokens, m.token_start, m.token_len);
            let entry = self.dictionary.entry(&m);
            candidates.push(Annotation {
                surface: m.surface,
                span,
                kind: DetectionKind::Entity {
                    type_code: entry.type_code,
                    subtype: entry.subtype.clone(),
                    geo: entry.geo,
                },
                score: 0.0,
                position_frac: span.start as f64 / doc_len,
            });
        }
        let mut detector = ConceptDetector::new(self.units);
        detector.min_score = self.config.concept_min_score;
        // Id-space detection: the unit dictionary already stores each
        // unit's joined surface, so no per-match join is needed and
        // matches dropped by the sentence filter cost nothing.
        for m in detector.detect_ids(&norm) {
            if !same_sentence(m.token_start, m.token_len) {
                continue;
            }
            let span = token_span(&tokens, m.token_start, m.token_len);
            candidates.push(Annotation {
                surface: self.units.surface(m.unit).to_string(),
                span,
                kind: DetectionKind::Concept,
                score: 0.0,
                position_frac: span.start as f64 / doc_len,
            });
        }

        // Collision resolution: patterns first, then longer spans, then
        // entities over concepts.
        candidates.sort_by_key(|a| {
            (
                a.span.start,
                !a.kind.is_pattern(),
                std::cmp::Reverse(a.span.len()),
                matches!(a.kind, DetectionKind::Concept),
            )
        });
        let mut kept: Vec<Annotation> = Vec::new();
        for c in candidates {
            if kept.iter().all(|k| !k.span.overlaps(&c.span)) {
                kept.push(c);
            }
        }

        // Filtering.
        kept.retain(|a| {
            a.kind.is_pattern()
                || (a.surface.len() >= self.config.min_surface_chars
                    && !a.surface.split(' ').all(ctxrank_text::is_stopword))
        });

        // Scoring: attach the §II-B concept-vector score to rankable
        // annotations (deduplicated by surface — the vector is per
        // document, not per occurrence).
        let builder = ConceptVectorBuilder::new(self.units, &self.idf, self.config.vector.clone());
        let vector = builder.build_from_tokens(&norm);
        let scores: HashMap<&str, f64> = vector
            .iter()
            .map(|c| (c.surface.as_str(), c.score))
            .collect();
        for a in &mut kept {
            if !a.kind.is_pattern() {
                a.score = scores.get(a.surface.as_str()).copied().unwrap_or(0.0);
            }
        }

        kept.sort_by_key(|a| a.span.start);
        ProcessedDoc {
            text,
            annotations: kept,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

/// Byte span covering tokens `[start, start + len)`.
fn token_span(tokens: &[ctxrank_text::Token<'_>], start: usize, len: usize) -> Span {
    Span {
        start: tokens[start].start,
        end: tokens[start + len - 1].end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::DictionaryEntry;
    use ctxrank_querylog::{extract_units, QueryLog, UnitConfig};

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn knowledge() -> (EntityDictionary, UnitDictionary) {
        let mut dict = EntityDictionary::new();
        dict.insert(DictionaryEntry {
            terms: t("cuba"),
            type_code: 2,
            subtype: "country".into(),
            geo: Some((21.5, -77.8)),
            context_terms: vec![],
        });
        dict.insert(DictionaryEntry {
            terms: t("obama"),
            type_code: 1,
            subtype: "politician".into(),
            geo: None,
            context_terms: vec![],
        });
        let mut log = QueryLog::new();
        log.add("political prisoners", 60);
        log.add("human rights", 80);
        log.add("human rights watch", 25);
        for i in 0..40 {
            log.add(&format!("padding query{i}"), 10);
        }
        let units = extract_units(&log, &UnitConfig::default());
        (dict, units)
    }

    fn idf(_: &str) -> f64 {
        2.5
    }

    const SNIPPET: &str = "Obama said talks with Cuba require progress on releasing \
        political prisoners and improving human rights.";

    #[test]
    fn detects_entities_and_concepts() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process(SNIPPET);
        let surfaces: Vec<&str> = doc.annotations.iter().map(|a| a.surface.as_str()).collect();
        assert!(surfaces.contains(&"obama"), "{surfaces:?}");
        assert!(surfaces.contains(&"cuba"), "{surfaces:?}");
        assert!(surfaces.contains(&"human rights"), "{surfaces:?}");
    }

    #[test]
    fn spans_point_into_text() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process(SNIPPET);
        for a in &doc.annotations {
            let spanned = a.span.of(&doc.text).to_lowercase();
            assert_eq!(spanned, a.surface, "span/surface mismatch");
        }
    }

    #[test]
    fn html_is_stripped_first() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process("<p><b>Obama</b> visits <i>Cuba</i></p>");
        assert!(!doc.text.contains('<'));
        assert!(doc.annotations.iter().any(|a| a.surface == "obama"));
    }

    #[test]
    fn patterns_always_annotated() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process("Email press@whitehouse.gov or call 555-123-4567.");
        let patterns: Vec<_> = doc
            .annotations
            .iter()
            .filter(|a| a.kind.is_pattern())
            .collect();
        assert_eq!(patterns.len(), 2);
        for a in patterns {
            assert_eq!(a.score, 0.0);
        }
    }

    #[test]
    fn no_overlapping_annotations() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process(SNIPPET);
        for pair in doc.annotations.windows(2) {
            assert!(
                pair[0].span.end <= pair[1].span.start,
                "overlap: {:?} {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn rankable_excludes_patterns() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process("Obama (contact: x@y.org) on human rights");
        assert!(doc.rankable().all(|a| !a.kind.is_pattern()));
        assert!(doc.rankable().count() >= 2);
    }

    #[test]
    fn scores_attached_to_rankables() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process(SNIPPET);
        let hr = doc
            .annotations
            .iter()
            .find(|a| a.surface == "human rights")
            .expect("human rights detected");
        assert!(hr.score > 0.0, "concept should carry a vector score");
    }

    #[test]
    fn position_fraction_monotone() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process(SNIPPET);
        for pair in doc.annotations.windows(2) {
            assert!(pair[0].position_frac <= pair[1].position_frac);
        }
        for a in &doc.annotations {
            assert!((0.0..1.0).contains(&a.position_frac));
        }
    }

    #[test]
    fn entity_metadata_preserved() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process("Cuba announced reforms.");
        let cuba = doc
            .annotations
            .iter()
            .find(|a| a.surface == "cuba")
            .expect("cuba");
        match &cuba.kind {
            DetectionKind::Entity {
                type_code,
                subtype,
                geo,
            } => {
                assert_eq!(*type_code, 2);
                assert_eq!(subtype, "country");
                assert_eq!(*geo, Some((21.5, -77.8)));
            }
            other => panic!("expected entity, got {other:?}"),
        }
    }

    #[test]
    fn empty_document() {
        let (dict, units) = knowledge();
        let p = Pipeline::new(&dict, &units, idf, PipelineConfig::default());
        let doc = p.process("");
        assert!(doc.annotations.is_empty());
        assert!(doc.text.is_empty());
    }
}
