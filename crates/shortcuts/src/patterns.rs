//! Pattern-based entity detectors: emails, URLs, phone numbers.
//!
//! §II-A: "Pattern based entities are primarily detected by regular
//! expressions. To provide a level of consistent behavior to the end
//! user, pattern based entities are not subject to any relevance
//! calculations \[and\] are always annotated." We implement the matchers as
//! small hand-written scanners (no regex dependency) with conventional
//! semantics: RFC-ish emails, `http(s)://` or `www.` URLs, and North
//! American style phone numbers.

use ctxrank_text::Span;

/// The pattern-based entity types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternType {
    Email,
    Url,
    Phone,
}

/// One pattern match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternMatch {
    pub kind: PatternType,
    pub span: Span,
}

impl PatternMatch {
    /// The matched text.
    pub fn of<'a>(&self, text: &'a str) -> &'a str {
        self.span.of(text)
    }
}

/// Detect all pattern entities in `text`, sorted by start offset.
/// Overlaps between pattern matches are resolved longest-first (an email
/// wins over the URL-ish domain inside it).
pub fn detect_patterns(text: &str) -> Vec<PatternMatch> {
    let mut found = Vec::new();
    find_emails(text, &mut found);
    find_urls(text, &mut found);
    find_phones(text, &mut found);
    // Longest-first collision resolution, then re-sort by position.
    found.sort_by_key(|m| (m.span.start, std::cmp::Reverse(m.span.len())));
    let mut out: Vec<PatternMatch> = Vec::new();
    for m in found {
        if out.iter().all(|kept| !kept.span.overlaps(&m.span)) {
            out.push(m);
        }
    }
    out.sort_by_key(|m| m.span.start);
    out
}

fn is_email_local(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '%' | '+' | '-')
}

fn is_domain_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '-')
}

/// Scan for `local@domain.tld`.
fn find_emails(text: &str, out: &mut Vec<PatternMatch>) {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'@' {
            continue;
        }
        // Extend left over local-part chars.
        let mut start = i;
        while start > 0 && is_email_local(bytes[start - 1] as char) {
            start -= 1;
        }
        if start == i {
            continue;
        }
        // Extend right over the domain.
        let mut end = i + 1;
        while end < bytes.len() && is_domain_char(bytes[end] as char) {
            end += 1;
        }
        // Trim trailing dots/hyphens.
        while end > i + 1 && matches!(bytes[end - 1], b'.' | b'-') {
            end -= 1;
        }
        let domain = &text[i + 1..end];
        // Domain needs at least one internal dot and a 2+ letter TLD.
        if let Some(dot) = domain.rfind('.') {
            let tld = &domain[dot + 1..];
            if dot > 0 && tld.len() >= 2 && tld.chars().all(|c| c.is_ascii_alphabetic()) {
                out.push(PatternMatch {
                    kind: PatternType::Email,
                    span: Span { start, end },
                });
            }
        }
    }
}

fn is_url_char(c: char) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            '.' | '/' | '-' | '_' | '~' | '%' | '?' | '=' | '&' | '#' | ':' | '+'
        )
}

/// Scan for `http://`, `https://` and `www.` URLs.
fn find_urls(text: &str, out: &mut Vec<PatternMatch>) {
    for prefix in ["http://", "https://", "www."] {
        let mut from = 0;
        while let Some(rel) = text[from..].find(prefix) {
            let start = from + rel;
            // "www." must start at a word boundary.
            let at_boundary = start == 0
                || !text[..start]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '.');
            let mut end = start + prefix.len();
            let bytes = text.as_bytes();
            while end < bytes.len() && is_url_char(bytes[end] as char) {
                end += 1;
            }
            // Trim trailing punctuation that likely belongs to the prose.
            while end > start + prefix.len()
                && matches!(bytes[end - 1], b'.' | b'?' | b':' | b'&' | b'#')
            {
                end -= 1;
            }
            if at_boundary && end > start + prefix.len() {
                out.push(PatternMatch {
                    kind: PatternType::Url,
                    span: Span { start, end },
                });
            }
            from = end.max(start + 1);
        }
    }
}

/// Scan for phone numbers: `NNN-NNN-NNNN`, `(NNN) NNN-NNNN`,
/// `+N NNN NNN NNNN` style runs of 10–12 digits with separators.
fn find_phones(text: &str, out: &mut Vec<PatternMatch>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !(bytes[i].is_ascii_digit() || bytes[i] == b'(' || bytes[i] == b'+') {
            i += 1;
            continue;
        }
        // Phone candidates must not be glued to a preceding digit/letter.
        if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'-') {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        let mut digits = 0;
        let mut separators = 0;
        while j < bytes.len() {
            match bytes[j] {
                b'0'..=b'9' => digits += 1,
                b'-' | b'.' | b' ' | b'(' | b')' | b'+' => {
                    // A separator must lead to a digit within two chars
                    // (")" may be followed by one more separator, as in
                    // "(555) 123-4567").
                    let next_ok = match bytes.get(j + 1) {
                        Some(&n) if n.is_ascii_digit() || n == b')' => true,
                        Some(b'-' | b'.' | b' ' | b'(') => {
                            bytes.get(j + 2).is_some_and(|&m| m.is_ascii_digit())
                        }
                        _ => false,
                    };
                    if !next_ok {
                        break;
                    }
                    separators += 1;
                }
                _ => break,
            }
            j += 1;
            if digits > 12 {
                break;
            }
        }
        if (10..=12).contains(&digits) && separators >= 2 && digits + separators == j - start {
            out.push(PatternMatch {
                kind: PatternType::Phone,
                span: Span { start, end: j },
            });
            i = j;
        } else {
            i += 1;
            // Skip the rest of a long digit run so we don't re-test
            // every suffix.
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(PatternType, String)> {
        detect_patterns(text)
            .into_iter()
            .map(|m| (m.kind, m.of(text).to_string()))
            .collect()
    }

    #[test]
    fn detects_email() {
        let found = kinds("contact uirmak@yahoo-inc.com for details");
        assert_eq!(
            found,
            vec![(PatternType::Email, "uirmak@yahoo-inc.com".into())]
        );
    }

    #[test]
    fn email_trailing_period_excluded() {
        let found = kinds("write to a.b@example.org.");
        assert_eq!(found[0].1, "a.b@example.org");
    }

    #[test]
    fn rejects_bare_at() {
        assert!(kinds("meet @ noon").is_empty());
        assert!(kinds("a@b").is_empty());
    }

    #[test]
    fn detects_http_and_www_urls() {
        let found = kinds("see http://news.yahoo.com/story?id=1 or www.example.com today");
        assert_eq!(found.len(), 2);
        assert_eq!(
            found[0],
            (PatternType::Url, "http://news.yahoo.com/story?id=1".into())
        );
        assert_eq!(found[1], (PatternType::Url, "www.example.com".into()));
    }

    #[test]
    fn url_sentence_period_trimmed() {
        let found = kinds("Visit https://svmlight.joachims.org.");
        assert_eq!(found[0].1, "https://svmlight.joachims.org");
    }

    #[test]
    fn detects_phone_formats() {
        for text in [
            "call 555-123-4567 now",
            "call (555) 123-4567 now",
            "call +1 555 123 4567 now",
            "call 555.123.4567 now",
        ] {
            let found = kinds(text);
            assert_eq!(found.len(), 1, "in {text:?}: {found:?}");
            assert_eq!(found[0].0, PatternType::Phone);
        }
    }

    #[test]
    fn rejects_short_and_long_digit_runs() {
        assert!(kinds("room 1234").is_empty());
        assert!(kinds("in 2008 and 2009").is_empty());
        assert!(kinds("id 12345678901234567890").is_empty());
        // Plain numbers without separators are not phones.
        assert!(kinds("5551234567").is_empty());
    }

    #[test]
    fn email_wins_over_inner_url() {
        // "bob@www.example.com" — the email subsumes the www. match.
        let found = kinds("bob@www.example.com");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, PatternType::Email);
    }

    #[test]
    fn results_sorted_by_position() {
        let found = detect_patterns("x www.a.com y b@c.org z 555-123-4567");
        let starts: Vec<usize> = found.iter().map(|m| m.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn empty_text() {
        assert!(detect_patterns("").is_empty());
    }
}
