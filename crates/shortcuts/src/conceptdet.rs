//! Query-log concept detection.
//!
//! §II-A: "Concepts are detected using data from search engine query
//! logs, thus allowing the system to detect things of interest that go
//! beyond editorially reviewed terms." The detector scans a normalized
//! token stream for phrases present in a [`UnitDictionary`] whose score
//! clears a threshold, longest match first.

use ctxrank_querylog::UnitDictionary;

/// A concept detection in a token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptMatch {
    /// Token index where the concept starts.
    pub token_start: usize,
    /// Number of tokens covered.
    pub token_len: usize,
    /// The concept surface (space-joined terms).
    pub surface: String,
    /// The unit score of the matched concept.
    pub unit_score: f64,
}

/// An allocation-free concept detection: the matched unit is referenced
/// by its dictionary index instead of a joined surface string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConceptIdMatch {
    /// Token index where the concept starts.
    pub token_start: usize,
    /// Number of tokens covered.
    pub token_len: usize,
    /// Index of the matched unit (see [`UnitDictionary::unit`]).
    pub unit: u32,
    /// The unit score of the matched concept.
    pub unit_score: f64,
}

/// Detector over the unit dictionary.
#[derive(Debug)]
pub struct ConceptDetector<'a> {
    units: &'a UnitDictionary,
    /// Minimum unit score a phrase needs to be detected.
    pub min_score: f64,
    /// Maximum phrase length considered.
    pub max_terms: usize,
    /// Detect single-term concepts too? The production system supports a
    /// large single-term concept set; turning this off restricts
    /// detection to multi-term units.
    pub allow_single: bool,
}

impl<'a> ConceptDetector<'a> {
    /// Create a detector with the platform defaults.
    pub fn new(units: &'a UnitDictionary) -> Self {
        Self {
            units,
            min_score: 0.05,
            max_terms: 4,
            allow_single: true,
        }
    }

    /// Scan `tokens` (already normalized) for concepts. Longest match
    /// wins at each position; matches never overlap; stop-words never
    /// start a concept.
    ///
    /// The scan projects the tokens into the dictionary's id space once,
    /// then probes all window lengths at each position with a single
    /// incremental trie descent — no per-window string joins or hashes.
    /// A token unknown to the dictionary cuts every phrase through it.
    pub fn detect(&self, tokens: &[String]) -> Vec<ConceptMatch> {
        self.detect_ids(tokens)
            .into_iter()
            .map(|m| ConceptMatch {
                token_start: m.token_start,
                token_len: m.token_len,
                surface: tokens[m.token_start..m.token_start + m.token_len].join(" "),
                unit_score: m.unit_score,
            })
            .collect()
    }

    /// [`Self::detect`] without surface materialization: matches carry
    /// the unit's dictionary index, so scoring loops can accumulate into
    /// dense per-unit arrays with zero allocation per match.
    pub fn detect_ids(&self, tokens: &[String]) -> Vec<ConceptIdMatch> {
        let ids = self.units.interner().map_tokens(tokens);
        let stop: Vec<bool> = tokens
            .iter()
            .map(|t| ctxrank_text::is_stopword(t))
            .collect();
        let shortest = if self.allow_single { 1 } else { 2 };
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            if stop[i] {
                i += 1;
                continue;
            }
            let longest = self.max_terms.min(tokens.len() - i);
            // Walk the trie forward, remembering the longest qualifying
            // match; a low-scoring longer unit never shadows a shorter
            // qualifying one. A concept must not end with a stop-word.
            let mut matched: Option<(usize, u32, f64)> = None;
            let mut node = self.units.root();
            for len in 1..=longest {
                let Some(t) = ids[i + len - 1] else { break };
                let Some(next) = self.units.step(node, t) else {
                    break;
                };
                node = next;
                if len < shortest || stop[i + len - 1] {
                    continue;
                }
                if let Some(idx) = self.units.unit_index_at(node) {
                    let score = self.units.unit(idx).score;
                    if score >= self.min_score {
                        matched = Some((len, idx, score));
                    }
                }
            }
            match matched {
                Some((len, unit, unit_score)) => {
                    out.push(ConceptIdMatch {
                        token_start: i,
                        token_len: len,
                        unit,
                        unit_score,
                    });
                    i += len;
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_querylog::{extract_units, QueryLog, UnitConfig};

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn units() -> UnitDictionary {
        let mut log = QueryLog::new();
        log.add("global warming", 80);
        log.add("global warming effects", 30);
        log.add("auto insurance", 60);
        log.add("cheap auto insurance", 25);
        for i in 0..40 {
            log.add(&format!("noise filler {i}"), 10);
        }
        extract_units(&log, &UnitConfig::default())
    }

    #[test]
    fn detects_multiterm_concept() {
        let u = units();
        let det = ConceptDetector::new(&u);
        let found = det.detect(&t("scientists say global warming accelerates"));
        assert!(
            found.iter().any(|m| m.surface == "global warming"),
            "{found:?}"
        );
    }

    #[test]
    fn longest_match_preferred() {
        let u = units();
        let det = ConceptDetector::new(&u);
        let found = det.detect(&t("find cheap auto insurance online"));
        let best = found
            .iter()
            .find(|m| m.surface.contains("auto insurance"))
            .expect("insurance concept");
        // "cheap auto insurance" should win over "auto insurance" if it
        // was extracted as a 3-term unit; either way it covers >= 2 terms.
        assert!(best.token_len >= 2);
    }

    #[test]
    fn no_overlap() {
        let u = units();
        let det = ConceptDetector::new(&u);
        let found = det.detect(&t("global warming global warming"));
        for pair in found.windows(2) {
            assert!(pair[0].token_start + pair[0].token_len <= pair[1].token_start);
        }
    }

    #[test]
    fn stopwords_never_start_concepts() {
        let u = units();
        let det = ConceptDetector::new(&u);
        let found = det.detect(&t("the and of global warming"));
        for m in &found {
            assert!(!ctxrank_text::is_stopword(
                m.surface.split(' ').next().expect("term")
            ));
        }
    }

    #[test]
    fn min_score_filters() {
        let u = units();
        let mut det = ConceptDetector::new(&u);
        det.min_score = 2.0; // impossible
        assert!(det.detect(&t("global warming effects")).is_empty());
    }

    #[test]
    fn single_term_toggle() {
        let u = units();
        let mut det = ConceptDetector::new(&u);
        det.allow_single = false;
        let found = det.detect(&t("insurance quotes today"));
        assert!(found.iter().all(|m| m.token_len >= 2));
    }

    #[test]
    fn empty_tokens() {
        let u = units();
        let det = ConceptDetector::new(&u);
        assert!(det.detect(&[]).is_empty());
    }
}
