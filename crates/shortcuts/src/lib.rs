//! The Contextual Shortcuts entity-detection platform (§II).
//!
//! "The Contextual Shortcuts entity detection platform ... is designed to
//! detect interesting named entities and concepts (the key concepts) in
//! unstructured text, and annotate them with intelligent hyperlinks."
//! This crate is that platform:
//!
//! * [`patterns`] — pattern-based detectors for emails, URLs and phone
//!   numbers ("primarily detected by regular expressions"; ours are
//!   hand-rolled scanners with the same semantics). Pattern entities are
//!   always annotated and skip relevance ranking (§II-A).
//! * [`dictionary`] — editorially-reviewed named-entity dictionaries with
//!   the type taxonomy and geo metadata, matched longest-first, plus
//!   disambiguation of ambiguous surfaces.
//! * [`conceptdet`] — the query-log concept detector over a unit
//!   dictionary.
//! * [`vector`] — concept-vector generation (§II-B): the tf·idf term
//!   vector merged with the unit vector, including the punish/threshold
//!   rules and the multi-term specificity bonus. The resulting score is
//!   the *baseline* ranking the paper compares against.
//! * [`pipeline`] — the end-to-end flow: pre-processing (HTML, tokens,
//!   sentences), all detectors, collision resolution between overlapping
//!   spans, filtering, and annotated output.

pub mod conceptdet;
pub mod dictionary;
pub mod patterns;
pub mod pipeline;
pub mod vector;

pub use conceptdet::{ConceptDetector, ConceptIdMatch, ConceptMatch};
pub use dictionary::{DictionaryEntry, EntityDictionary};
pub use patterns::{detect_patterns, PatternType};
pub use pipeline::{Annotation, DetectionKind, Pipeline, PipelineConfig};
pub use vector::{ConceptVectorBuilder, ConceptVectorConfig, ScoredConcept};
