//! Concept-vector generation (§II-B) — the baseline ranking.
//!
//! Given a document:
//!
//! 1. build a **term vector** of tf·idf scores over a term dictionary
//!    (stop-words removed), normalize weights into `[0, 1]`, punish
//!    weights under a threshold, drop the lowest;
//! 2. build a **unit vector** of all query-log units found in the
//!    document, normalized/punished/pruned the same way;
//! 3. **merge**: a term only in the term vector is added with a punished
//!    weight (it "did not appear as a popular query"); a unit only in the
//!    unit vector keeps its unit weight; a term in both gets the sum;
//! 4. for every **multi-term concept**, add the unit- and term-vector
//!    scores of each constituent term — "this way more specific concepts
//!    eventually bubble up in the overall rank". The maximum possible
//!    final weight is `2 × number of terms`.
//!
//! The resulting score is what the production Contextual Shortcuts used
//! to rank annotations, and is the baseline every experiment in §V
//! compares against (weighted error rate 30.22%).

use crate::conceptdet::ConceptDetector;
use ctxrank_index::TermVector;
use ctxrank_querylog::UnitDictionary;
use std::collections::HashMap;

/// Thresholds for the §II-B merge.
#[derive(Debug, Clone)]
pub struct ConceptVectorConfig {
    /// Term-vector weights below this are punished...
    pub term_punish_threshold: f64,
    /// ...by multiplying with this factor.
    pub term_punish_factor: f64,
    /// Term-vector weights below this are removed.
    pub term_drop_below: f64,
    /// Unit-vector weights below this are punished...
    pub unit_punish_threshold: f64,
    /// ...by multiplying with this factor.
    pub unit_punish_factor: f64,
    /// Unit-vector weights below this are removed.
    pub unit_drop_below: f64,
    /// Factor applied to term weights that have no unit support (merge
    /// case 1: "we add it to the concept vector, but punish its term
    /// vector weight").
    pub unmatched_term_factor: f64,
    /// Minimum unit score for the detector that finds units in the text.
    pub detector_min_score: f64,
    /// Apply the §II-B step-4 multi-term specificity bonus. On by
    /// default; the `ablation_merge` experiment turns it off.
    pub multiterm_bonus: bool,
}

impl Default for ConceptVectorConfig {
    fn default() -> Self {
        Self {
            term_punish_threshold: 0.25,
            term_punish_factor: 0.5,
            term_drop_below: 0.05,
            unit_punish_threshold: 0.15,
            unit_punish_factor: 0.5,
            unit_drop_below: 0.02,
            unmatched_term_factor: 0.5,
            detector_min_score: 0.02,
            multiterm_bonus: true,
        }
    }
}

/// One concept with its merged §II-B score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredConcept {
    /// Space-joined surface form.
    pub surface: String,
    /// Final merged weight (up to `2 × terms`).
    pub score: f64,
}

/// Builds concept vectors for documents.
pub struct ConceptVectorBuilder<'a> {
    units: &'a UnitDictionary,
    idf: Box<dyn Fn(&str) -> f64 + 'a>,
    config: ConceptVectorConfig,
}

impl<'a> std::fmt::Debug for ConceptVectorBuilder<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConceptVectorBuilder")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> ConceptVectorBuilder<'a> {
    /// Create a builder over a unit dictionary and an idf source (usually
    /// [`ctxrank_index::Index::idf`]).
    pub fn new(
        units: &'a UnitDictionary,
        idf: impl Fn(&str) -> f64 + 'a,
        config: ConceptVectorConfig,
    ) -> Self {
        Self {
            units,
            idf: Box::new(idf),
            config,
        }
    }

    /// Generate the concept vector for a document given as raw text.
    /// Returns concepts sorted by descending score.
    pub fn build(&self, text: &str) -> Vec<ScoredConcept> {
        let tokens: Vec<String> = ctxrank_text::tokenize_terms(text);
        self.build_from_tokens(&tokens)
    }

    /// Generate the concept vector from pre-normalized tokens.
    pub fn build_from_tokens(&self, tokens: &[String]) -> Vec<ScoredConcept> {
        // 1. Term vector: tf·idf over non-stop-words, normalized,
        //    punished, pruned.
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for t in tokens {
            if !ctxrank_text::is_stopword(t) {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let mut term_vec = TermVector::new();
        for (t, &c) in &counts {
            term_vec.set(*t, ctxrank_index::tf_idf_weight(c, (self.idf)(t)));
        }
        term_vec.normalize_max();
        term_vec.punish_and_prune(
            self.config.term_punish_threshold,
            self.config.term_punish_factor,
            self.config.term_drop_below,
        );

        // 2. Unit vector: units found in the document, with their scores,
        //    normalized/punished/pruned. Kept dense over unit indices —
        //    no surface string is built or hashed per match.
        let mut detector = ConceptDetector::new(self.units);
        detector.min_score = self.config.detector_min_score;
        let mut unit_w: Vec<f64> = vec![0.0; self.units.len()];
        let mut matched: Vec<u32> = Vec::new();
        for m in detector.detect_ids(tokens) {
            let w = &mut unit_w[m.unit as usize];
            if *w == 0.0 {
                matched.push(m.unit);
            }
            *w = w.max(m.unit_score);
        }
        matched.sort_unstable();
        let max = matched
            .iter()
            .fold(0.0f64, |a, &u| a.max(unit_w[u as usize]));
        if max > 0.0 {
            for &u in &matched {
                unit_w[u as usize] /= max;
            }
        }
        matched.retain(|&u| {
            let w = &mut unit_w[u as usize];
            if *w < self.config.unit_punish_threshold {
                *w *= self.config.unit_punish_factor;
            }
            if *w < self.config.unit_drop_below {
                *w = 0.0;
                false
            } else {
                true
            }
        });
        // Weight of the single-term unit whose surface is `term`, zero
        // when none survives (the dense analogue of probing the old
        // string-keyed unit vector with a one-word surface).
        let single_unit_w = |term: &str| -> f64 {
            self.units
                .interner()
                .get(term)
                .and_then(|id| self.units.single_unit(id))
                .map_or(0.0, |u| unit_w[u as usize])
        };

        // 3. Merge into the concept vector.
        let mut merged: HashMap<&str, f64> = HashMap::new();
        for (term, w) in term_vec.iter() {
            let unit_weight = single_unit_w(term);
            if unit_weight > 0.0 {
                // Case 3: in both — sum the weights.
                merged.insert(term, w + unit_weight);
            } else {
                // Case 1: term only — punish.
                merged.insert(term, w * self.config.unmatched_term_factor);
            }
        }
        for &u in &matched {
            // Case 2: unit only — add with its unit weight.
            merged
                .entry(self.units.surface(u))
                .or_insert(unit_w[u as usize]);
        }

        // 4. Multi-term bonus: add each constituent term's unit- and
        //    term-vector scores.
        let mut out: Vec<ScoredConcept> = merged
            .iter()
            .map(|(surface, &base)| {
                let mut score = base;
                if self.config.multiterm_bonus && surface.contains(' ') {
                    for p in surface.split(' ') {
                        score += term_vec.get(p) + single_unit_w(p);
                    }
                }
                ScoredConcept {
                    surface: surface.to_string(),
                    score,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.surface.cmp(&b.surface))
        });
        out
    }

    /// The configured thresholds.
    pub fn config(&self) -> &ConceptVectorConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_querylog::{extract_units, QueryLog, UnitConfig};

    fn units() -> UnitDictionary {
        let mut log = QueryLog::new();
        log.add("global warming", 90);
        log.add("global warming report", 40);
        log.add("polar bears", 70);
        log.add("polar bears habitat", 20);
        for i in 0..40 {
            log.add(&format!("filler queryterm{i}"), 12);
        }
        extract_units(&log, &UnitConfig::default())
    }

    /// idf source: every term moderately distinctive, "common" cheap.
    fn idf(term: &str) -> f64 {
        if term == "common" {
            0.2
        } else {
            3.0
        }
    }

    #[test]
    fn multiterm_concepts_bubble_up() {
        let u = units();
        let b = ConceptVectorBuilder::new(&u, idf, ConceptVectorConfig::default());
        let text = "global warming threatens polar bears habitat said the report \
                    common common common";
        let v = b.build(text);
        assert!(!v.is_empty());
        // The top concept should be one of the multi-term units, not a
        // bare single term.
        assert!(
            v[0].surface.contains(' '),
            "expected multi-term on top, got {:?}",
            v[0]
        );
    }

    #[test]
    fn score_bounded_by_two_per_term() {
        let u = units();
        let b = ConceptVectorBuilder::new(&u, idf, ConceptVectorConfig::default());
        let v = b.build("global warming global warming polar bears");
        for c in &v {
            let n = c.surface.split(' ').count() as f64;
            assert!(
                c.score <= 2.0 * n + 1e-9,
                "{} score {} exceeds 2x{}",
                c.surface,
                c.score,
                n
            );
        }
    }

    #[test]
    fn stopwords_never_scored() {
        let u = units();
        let b = ConceptVectorBuilder::new(&u, idf, ConceptVectorConfig::default());
        let v = b.build("the global warming and the polar bears");
        for c in &v {
            assert!(!ctxrank_text::is_stopword(&c.surface));
        }
    }

    #[test]
    fn term_only_entries_punished() {
        let u = units();
        let cfg = ConceptVectorConfig::default();
        let b = ConceptVectorBuilder::new(&u, idf, cfg.clone());
        // "zebra" is not a unit; it can appear only via the term vector.
        let v = b.build("zebra zebra zebra zebra global warming");
        let zebra = v.iter().find(|c| c.surface == "zebra");
        if let Some(z) = zebra {
            // Punished: max possible normalized weight is 1.0, so the
            // merged score is at most the unmatched factor.
            assert!(z.score <= cfg.unmatched_term_factor + 1e-9);
        }
    }

    #[test]
    fn sorted_descending() {
        let u = units();
        let b = ConceptVectorBuilder::new(&u, idf, ConceptVectorConfig::default());
        let v = b.build("global warming report polar bears habitat filler queryterm1");
        for w in v.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn empty_document() {
        let u = units();
        let b = ConceptVectorBuilder::new(&u, idf, ConceptVectorConfig::default());
        assert!(b.build("").is_empty());
        assert!(b.build("the of and").is_empty());
    }

    #[test]
    fn deterministic_given_same_input() {
        let u = units();
        let b = ConceptVectorBuilder::new(&u, idf, ConceptVectorConfig::default());
        let text = "global warming polar bears report habitat";
        assert_eq!(b.build(text), b.build(text));
    }
}
