//! Editorially-reviewed named-entity dictionaries.
//!
//! §II-A: "Named entities are detected with the help of editorially
//! reviewed dictionaries. The dictionaries contain categorized terms and
//! phrases according to a pre-defined taxonomy ... It is possible that a
//! named entity can be a member of multiple types, such as the term
//! jaguar, in which case the entity is disambiguated. The named location
//! detector also uses data-packs that are pre-loaded into memory ...
//! the meta-data contained geo-location information."
//!
//! The dictionary maps normalized surface phrases to typed entries and is
//! matched against documents longest-phrase-first. Ambiguous surfaces
//! (several entries for one phrase) are disambiguated by scoring each
//! entry's *context terms* against the surrounding sentence.

use ctxrank_text::{Interner, PhraseTrie, TermId};

/// One dictionary entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DictionaryEntry {
    /// Normalized phrase terms.
    pub terms: Vec<String>,
    /// Major-type code (stable small integer; 0 = untyped concept).
    pub type_code: u8,
    /// Sub-type label ("actor", "city", ...).
    pub subtype: String,
    /// Geo metadata for locations (latitude, longitude).
    pub geo: Option<(f64, f64)>,
    /// Distinctive context terms used for disambiguation; may be empty.
    pub context_terms: Vec<String>,
}

impl DictionaryEntry {
    /// The entry's surface form.
    pub fn surface(&self) -> String {
        self.terms.join(" ")
    }
}

/// A frozen entity dictionary.
///
/// Surfaces are keyed by interned term-id sequences through a
/// [`PhraseTrie`], so matching probes all phrase lengths at a token
/// position in one incremental descent instead of joining and hashing a
/// string per (position, length) pair.
#[derive(Debug, Default)]
pub struct EntityDictionary {
    /// Candidate entries per surface (ambiguous surfaces have > 1),
    /// indexed by the trie's stored value.
    surfaces: Vec<Vec<DictionaryEntry>>,
    /// Terms used by at least one surface.
    interner: Interner,
    /// Surface id sequence -> index into `surfaces`.
    trie: PhraseTrie<u32>,
    /// Longest phrase length in the dictionary (bounds the match scan).
    max_len: usize,
}

/// A dictionary match in a token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DictMatch {
    /// Token index where the phrase starts.
    pub token_start: usize,
    /// Number of tokens covered.
    pub token_len: usize,
    /// Index of the chosen entry within the surface's candidate list.
    pub entry_index: usize,
    /// The surface key.
    pub surface: String,
}

impl EntityDictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an entry. Multiple entries may share a surface (ambiguity).
    pub fn insert(&mut self, entry: DictionaryEntry) {
        assert!(!entry.terms.is_empty(), "dictionary entry needs terms");
        self.max_len = self.max_len.max(entry.terms.len());
        let ids: Vec<TermId> = entry
            .terms
            .iter()
            .map(|t| self.interner.intern(t))
            .collect();
        match self.trie.get(&ids) {
            Some(&idx) => self.surfaces[idx as usize].push(entry),
            None => {
                let idx = self.surfaces.len() as u32;
                self.trie.insert(&ids, idx);
                self.surfaces.push(vec![entry]);
            }
        }
    }

    /// Number of distinct surfaces.
    pub fn num_surfaces(&self) -> usize {
        self.surfaces.len()
    }

    /// All candidate entries for a surface.
    pub fn candidates(&self, surface: &str) -> &[DictionaryEntry] {
        let terms: Vec<String> = surface.split(' ').map(str::to_string).collect();
        self.interner
            .ids_of(&terms)
            .and_then(|ids| self.trie.get(&ids))
            .map_or(&[], |&idx| self.surfaces[idx as usize].as_slice())
    }

    /// Resolve a match back to its entry.
    pub fn entry(&self, m: &DictMatch) -> &DictionaryEntry {
        &self.candidates(&m.surface)[m.entry_index]
    }

    /// Scan a normalized token stream for dictionary phrases.
    ///
    /// Longest-match-wins at each position; after a match the scan
    /// resumes *after* the matched phrase (no overlapping dictionary
    /// matches). Ambiguous surfaces are disambiguated by counting each
    /// candidate's `context_terms` in a window of `context_window` tokens
    /// around the match; ties go to the first-inserted entry.
    ///
    /// The tokens are projected into the dictionary's id space once, then
    /// every position is probed with one incremental trie descent.
    pub fn detect(&self, tokens: &[String], context_window: usize) -> Vec<DictMatch> {
        let ids = self.interner.map_tokens(tokens);
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let longest = self.max_len.min(tokens.len() - i);
            let mut matched: Option<(usize, u32)> = None;
            let mut node = PhraseTrie::<u32>::ROOT;
            for len in 1..=longest {
                let Some(t) = ids[i + len - 1] else { break };
                let Some(next) = self.trie.step(node, t) else {
                    break;
                };
                node = next;
                if let Some(&idx) = self.trie.value(node) {
                    matched = Some((len, idx));
                }
            }
            match matched {
                Some((len, idx)) => {
                    let cands = &self.surfaces[idx as usize];
                    let entry_index = if cands.len() == 1 {
                        0
                    } else {
                        disambiguate(cands, tokens, i, len, context_window)
                    };
                    out.push(DictMatch {
                        token_start: i,
                        token_len: len,
                        entry_index,
                        surface: tokens[i..i + len].join(" "),
                    });
                    i += len;
                }
                None => i += 1,
            }
        }
        out
    }
}

/// Pick the candidate whose context terms best match the surrounding
/// window.
fn disambiguate(
    cands: &[DictionaryEntry],
    tokens: &[String],
    at: usize,
    len: usize,
    window: usize,
) -> usize {
    let from = at.saturating_sub(window);
    let to = (at + len + window).min(tokens.len());
    let mut best = 0;
    let mut best_score = -1i64;
    for (idx, cand) in cands.iter().enumerate() {
        let score = tokens[from..to]
            .iter()
            .filter(|t| cand.context_terms.iter().any(|c| c == *t))
            .count() as i64;
        if score > best_score {
            best_score = score;
            best = idx;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn entry(surface: &str, type_code: u8, subtype: &str) -> DictionaryEntry {
        DictionaryEntry {
            terms: t(surface),
            type_code,
            subtype: subtype.to_string(),
            geo: None,
            context_terms: Vec::new(),
        }
    }

    #[test]
    fn single_term_detection() {
        let mut d = EntityDictionary::new();
        d.insert(entry("cuba", 2, "country"));
        let m = d.detect(&t("talks with cuba stalled"), 5);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "cuba");
        assert_eq!(m[0].token_start, 2);
    }

    #[test]
    fn longest_match_wins() {
        let mut d = EntityDictionary::new();
        d.insert(entry("york", 2, "city"));
        d.insert(entry("new york", 2, "city"));
        let m = d.detect(&t("i love new york pizza"), 5);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "new york");
        assert_eq!(m[0].token_len, 2);
    }

    #[test]
    fn no_overlapping_matches() {
        let mut d = EntityDictionary::new();
        d.insert(entry("a b", 1, "x"));
        d.insert(entry("b c", 1, "x"));
        let m = d.detect(&t("a b c"), 5);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "a b");
    }

    #[test]
    fn consecutive_matches() {
        let mut d = EntityDictionary::new();
        d.insert(entry("obama", 1, "politician"));
        d.insert(entry("clinton", 1, "politician"));
        let m = d.detect(&t("obama clinton debate"), 5);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ambiguity_resolved_by_context() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            terms: t("jaguar"),
            type_code: 5,
            subtype: "mammal".into(),
            geo: None,
            context_terms: t("jungle cat prey habitat"),
        });
        d.insert(DictionaryEntry {
            terms: t("jaguar"),
            type_code: 6,
            subtype: "car".into(),
            geo: None,
            context_terms: t("engine sedan luxury dealership"),
        });
        let animal_ctx = t("the jaguar stalked prey in the jungle habitat");
        let car_ctx = t("the jaguar sedan has a new engine");
        let m1 = d.detect(&animal_ctx, 8);
        let m2 = d.detect(&car_ctx, 8);
        assert_eq!(d.entry(&m1[0]).subtype, "mammal");
        assert_eq!(d.entry(&m2[0]).subtype, "car");
    }

    #[test]
    fn three_way_ambiguity_picks_best_context() {
        let mut d = EntityDictionary::new();
        for (subtype, ctx) in [
            ("city", "texas county courthouse"),
            ("capital", "france seine louvre eiffel"),
            ("person", "actress film hollywood"),
        ] {
            d.insert(DictionaryEntry {
                terms: t("paris"),
                type_code: 2,
                subtype: subtype.into(),
                geo: None,
                context_terms: t(ctx),
            });
        }
        let m = d.detect(&t("paris on the seine near the louvre"), 8);
        assert_eq!(d.entry(&m[0]).subtype, "capital");
        let m = d.detect(&t("the hollywood actress paris starred in a film"), 8);
        assert_eq!(d.entry(&m[0]).subtype, "person");
        // No context at all: tie at zero, first-inserted wins.
        let m = d.detect(&t("paris"), 8);
        assert_eq!(d.entry(&m[0]).subtype, "city");
    }

    #[test]
    fn ambiguous_multiterm_surface_disambiguated() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            terms: t("mercury records"),
            type_code: 3,
            subtype: "label".into(),
            geo: None,
            context_terms: t("album artist music"),
        });
        d.insert(DictionaryEntry {
            terms: t("mercury records"),
            type_code: 4,
            subtype: "dataset".into(),
            geo: None,
            context_terms: t("probe orbit telemetry"),
        });
        let m = d.detect(&t("the probe sent mercury records and telemetry home"), 6);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].token_len, 2);
        assert_eq!(d.entry(&m[0]).subtype, "dataset");
    }

    #[test]
    fn context_outside_window_ignored() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            terms: t("jaguar"),
            type_code: 5,
            subtype: "mammal".into(),
            geo: None,
            context_terms: t("jungle"),
        });
        d.insert(DictionaryEntry {
            terms: t("jaguar"),
            type_code: 6,
            subtype: "car".into(),
            geo: None,
            context_terms: t("sedan"),
        });
        // "sedan" is adjacent, "jungle" is 4 tokens away: with window 1
        // only the car evidence counts.
        let tokens = t("jungle w x y jaguar sedan");
        let m = d.detect(&tokens, 1);
        assert_eq!(d.entry(&m[0]).subtype, "car");
        // A wide window sees both (1 vs 1): tie goes to first-inserted.
        let m = d.detect(&tokens, 10);
        assert_eq!(d.entry(&m[0]).subtype, "mammal");
    }

    #[test]
    fn candidates_listed_in_insertion_order() {
        let mut d = EntityDictionary::new();
        d.insert(entry("jaguar", 5, "mammal"));
        d.insert(entry("jaguar", 6, "car"));
        let cands = d.candidates("jaguar");
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].subtype, "mammal");
        assert_eq!(cands[1].subtype, "car");
        assert!(d.candidates("absent surface").is_empty());
    }

    #[test]
    fn ambiguity_tie_goes_to_first() {
        let mut d = EntityDictionary::new();
        d.insert(entry("springfield", 2, "city"));
        d.insert(DictionaryEntry {
            geo: Some((39.8, -89.6)),
            ..entry("springfield", 2, "capital")
        });
        let m = d.detect(&t("springfield wins"), 5);
        assert_eq!(d.entry(&m[0]).subtype, "city");
    }

    #[test]
    fn geo_metadata_preserved() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            geo: Some((37.4, -122.0)),
            ..entry("sunnyvale", 2, "city")
        });
        let m = d.detect(&t("offices in sunnyvale california"), 5);
        assert_eq!(d.entry(&m[0]).geo, Some((37.4, -122.0)));
    }

    #[test]
    fn empty_inputs() {
        let d = EntityDictionary::new();
        assert!(d.detect(&t("anything at all"), 5).is_empty());
        let mut d2 = EntityDictionary::new();
        d2.insert(entry("x", 1, "s"));
        assert!(d2.detect(&[], 5).is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_entry_rejected() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            terms: vec![],
            type_code: 0,
            subtype: String::new(),
            geo: None,
            context_terms: vec![],
        });
    }
}
