//! Editorially-reviewed named-entity dictionaries.
//!
//! §II-A: "Named entities are detected with the help of editorially
//! reviewed dictionaries. The dictionaries contain categorized terms and
//! phrases according to a pre-defined taxonomy ... It is possible that a
//! named entity can be a member of multiple types, such as the term
//! jaguar, in which case the entity is disambiguated. The named location
//! detector also uses data-packs that are pre-loaded into memory ...
//! the meta-data contained geo-location information."
//!
//! The dictionary maps normalized surface phrases to typed entries and is
//! matched against documents longest-phrase-first. Ambiguous surfaces
//! (several entries for one phrase) are disambiguated by scoring each
//! entry's *context terms* against the surrounding sentence.

use std::collections::HashMap;

/// One dictionary entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DictionaryEntry {
    /// Normalized phrase terms.
    pub terms: Vec<String>,
    /// Major-type code (stable small integer; 0 = untyped concept).
    pub type_code: u8,
    /// Sub-type label ("actor", "city", ...).
    pub subtype: String,
    /// Geo metadata for locations (latitude, longitude).
    pub geo: Option<(f64, f64)>,
    /// Distinctive context terms used for disambiguation; may be empty.
    pub context_terms: Vec<String>,
}

impl DictionaryEntry {
    /// The entry's surface form.
    pub fn surface(&self) -> String {
        self.terms.join(" ")
    }
}

/// A frozen entity dictionary.
#[derive(Debug, Default)]
pub struct EntityDictionary {
    /// surface key -> candidate entries (ambiguous surfaces have > 1).
    entries: HashMap<String, Vec<DictionaryEntry>>,
    /// Longest phrase length in the dictionary (bounds the match scan).
    max_len: usize,
}

/// A dictionary match in a token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DictMatch {
    /// Token index where the phrase starts.
    pub token_start: usize,
    /// Number of tokens covered.
    pub token_len: usize,
    /// Index of the chosen entry within the surface's candidate list.
    pub entry_index: usize,
    /// The surface key.
    pub surface: String,
}

impl EntityDictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an entry. Multiple entries may share a surface (ambiguity).
    pub fn insert(&mut self, entry: DictionaryEntry) {
        assert!(!entry.terms.is_empty(), "dictionary entry needs terms");
        self.max_len = self.max_len.max(entry.terms.len());
        self.entries.entry(entry.surface()).or_default().push(entry);
    }

    /// Number of distinct surfaces.
    pub fn num_surfaces(&self) -> usize {
        self.entries.len()
    }

    /// All candidate entries for a surface.
    pub fn candidates(&self, surface: &str) -> &[DictionaryEntry] {
        self.entries.get(surface).map_or(&[], Vec::as_slice)
    }

    /// Resolve a match back to its entry.
    pub fn entry(&self, m: &DictMatch) -> &DictionaryEntry {
        &self.entries[&m.surface][m.entry_index]
    }

    /// Scan a normalized token stream for dictionary phrases.
    ///
    /// Longest-match-wins at each position; after a match the scan
    /// resumes *after* the matched phrase (no overlapping dictionary
    /// matches). Ambiguous surfaces are disambiguated by counting each
    /// candidate's `context_terms` in a window of `context_window` tokens
    /// around the match; ties go to the first-inserted entry.
    pub fn detect(&self, tokens: &[String], context_window: usize) -> Vec<DictMatch> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = None;
            let longest = self.max_len.min(tokens.len() - i);
            for len in (1..=longest).rev() {
                let surface = tokens[i..i + len].join(" ");
                if let Some(cands) = self.entries.get(&surface) {
                    let entry_index = if cands.len() == 1 {
                        0
                    } else {
                        disambiguate(cands, tokens, i, len, context_window)
                    };
                    matched = Some(DictMatch {
                        token_start: i,
                        token_len: len,
                        entry_index,
                        surface,
                    });
                    break;
                }
            }
            match matched {
                Some(m) => {
                    i += m.token_len;
                    out.push(m);
                }
                None => i += 1,
            }
        }
        out
    }
}

/// Pick the candidate whose context terms best match the surrounding
/// window.
fn disambiguate(
    cands: &[DictionaryEntry],
    tokens: &[String],
    at: usize,
    len: usize,
    window: usize,
) -> usize {
    let from = at.saturating_sub(window);
    let to = (at + len + window).min(tokens.len());
    let mut best = 0;
    let mut best_score = -1i64;
    for (idx, cand) in cands.iter().enumerate() {
        let score = tokens[from..to]
            .iter()
            .filter(|t| cand.context_terms.iter().any(|c| c == *t))
            .count() as i64;
        if score > best_score {
            best_score = score;
            best = idx;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn entry(surface: &str, type_code: u8, subtype: &str) -> DictionaryEntry {
        DictionaryEntry {
            terms: t(surface),
            type_code,
            subtype: subtype.to_string(),
            geo: None,
            context_terms: Vec::new(),
        }
    }

    #[test]
    fn single_term_detection() {
        let mut d = EntityDictionary::new();
        d.insert(entry("cuba", 2, "country"));
        let m = d.detect(&t("talks with cuba stalled"), 5);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "cuba");
        assert_eq!(m[0].token_start, 2);
    }

    #[test]
    fn longest_match_wins() {
        let mut d = EntityDictionary::new();
        d.insert(entry("york", 2, "city"));
        d.insert(entry("new york", 2, "city"));
        let m = d.detect(&t("i love new york pizza"), 5);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "new york");
        assert_eq!(m[0].token_len, 2);
    }

    #[test]
    fn no_overlapping_matches() {
        let mut d = EntityDictionary::new();
        d.insert(entry("a b", 1, "x"));
        d.insert(entry("b c", 1, "x"));
        let m = d.detect(&t("a b c"), 5);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "a b");
    }

    #[test]
    fn consecutive_matches() {
        let mut d = EntityDictionary::new();
        d.insert(entry("obama", 1, "politician"));
        d.insert(entry("clinton", 1, "politician"));
        let m = d.detect(&t("obama clinton debate"), 5);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ambiguity_resolved_by_context() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            terms: t("jaguar"),
            type_code: 5,
            subtype: "mammal".into(),
            geo: None,
            context_terms: t("jungle cat prey habitat"),
        });
        d.insert(DictionaryEntry {
            terms: t("jaguar"),
            type_code: 6,
            subtype: "car".into(),
            geo: None,
            context_terms: t("engine sedan luxury dealership"),
        });
        let animal_ctx = t("the jaguar stalked prey in the jungle habitat");
        let car_ctx = t("the jaguar sedan has a new engine");
        let m1 = d.detect(&animal_ctx, 8);
        let m2 = d.detect(&car_ctx, 8);
        assert_eq!(d.entry(&m1[0]).subtype, "mammal");
        assert_eq!(d.entry(&m2[0]).subtype, "car");
    }

    #[test]
    fn ambiguity_tie_goes_to_first() {
        let mut d = EntityDictionary::new();
        d.insert(entry("springfield", 2, "city"));
        d.insert(DictionaryEntry {
            geo: Some((39.8, -89.6)),
            ..entry("springfield", 2, "capital")
        });
        let m = d.detect(&t("springfield wins"), 5);
        assert_eq!(d.entry(&m[0]).subtype, "city");
    }

    #[test]
    fn geo_metadata_preserved() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            geo: Some((37.4, -122.0)),
            ..entry("sunnyvale", 2, "city")
        });
        let m = d.detect(&t("offices in sunnyvale california"), 5);
        assert_eq!(d.entry(&m[0]).geo, Some((37.4, -122.0)));
    }

    #[test]
    fn empty_inputs() {
        let d = EntityDictionary::new();
        assert!(d.detect(&t("anything at all"), 5).is_empty());
        let mut d2 = EntityDictionary::new();
        d2.insert(entry("x", 1, "s"));
        assert!(d2.detect(&[], 5).is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_entry_rejected() {
        let mut d = EntityDictionary::new();
        d.insert(DictionaryEntry {
            terms: vec![],
            type_code: 0,
            subtype: String::new(),
            geo: None,
            context_terms: vec![],
        });
    }
}
