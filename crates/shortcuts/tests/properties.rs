//! Property-based tests for the detection platform.

use ctxrank_querylog::{extract_units, QueryLog, UnitConfig};
use ctxrank_shortcuts::{
    detect_patterns, DictionaryEntry, EntityDictionary, Pipeline, PipelineConfig,
};
use proptest::prelude::*;

fn knowledge() -> (EntityDictionary, ctxrank_querylog::UnitDictionary) {
    let mut dict = EntityDictionary::new();
    for (surface, code) in [("alpha city", 2u8), ("beta", 1), ("gamma delta", 3)] {
        dict.insert(DictionaryEntry {
            terms: surface.split(' ').map(str::to_string).collect(),
            type_code: code,
            subtype: "x".into(),
            geo: None,
            context_terms: Vec::new(),
        });
    }
    let mut log = QueryLog::new();
    log.add("omega prime", 50);
    log.add("omega prime news", 20);
    for i in 0..30 {
        log.add(&format!("pad query{i}"), 10);
    }
    (dict, extract_units(&log, &UnitConfig::default()))
}

proptest! {
    /// Pattern detection never panics and produces valid, ordered,
    /// non-overlapping spans for arbitrary input.
    #[test]
    fn patterns_total_and_valid(text in "\\PC{0,300}") {
        let found = detect_patterns(&text);
        for m in &found {
            prop_assert!(m.span.start < m.span.end);
            prop_assert!(m.span.end <= text.len());
            prop_assert!(text.is_char_boundary(m.span.start));
            prop_assert!(text.is_char_boundary(m.span.end));
        }
        for w in found.windows(2) {
            prop_assert!(w[0].span.end <= w[1].span.start);
        }
    }

    /// Detected emails always contain '@' and a dot-bearing domain.
    #[test]
    fn email_matches_wellformed(text in "\\PC{0,200}") {
        for m in detect_patterns(&text) {
            if m.kind == ctxrank_shortcuts::PatternType::Email {
                let s = m.of(&text);
                prop_assert!(s.contains('@'));
                let domain = s.split('@').next_back().expect("has domain");
                prop_assert!(domain.contains('.'));
            }
        }
    }

    /// The full pipeline is total over arbitrary (possibly HTML) input
    /// and upholds its annotation invariants.
    #[test]
    fn pipeline_invariants(text in "\\PC{0,500}") {
        let (dict, units) = knowledge();
        let pipeline = Pipeline::new(&dict, &units, |_| 2.0, PipelineConfig::default());
        let doc = pipeline.process(&text);
        for pair in doc.annotations.windows(2) {
            prop_assert!(pair[0].span.end <= pair[1].span.start, "overlap");
        }
        for a in &doc.annotations {
            prop_assert!(a.span.end <= doc.text.len());
            prop_assert!(a.score.is_finite());
            prop_assert!((0.0..1.0 + 1e-9).contains(&a.position_frac));
            if !a.kind.is_pattern() {
                prop_assert_eq!(
                    a.span.of(&doc.text).to_lowercase(),
                    a.surface.clone()
                );
            }
        }
    }

    /// Sentences that contain a dictionary surface (as clean tokens) get
    /// it detected regardless of the surrounding filler.
    #[test]
    fn dictionary_surface_always_found(
        prefix in "[a-z]{1,8}( [a-z]{1,8}){0,5}",
        suffix in "[a-z]{1,8}( [a-z]{1,8}){0,5}",
    ) {
        let (dict, units) = knowledge();
        let pipeline = Pipeline::new(&dict, &units, |_| 2.0, PipelineConfig::default());
        let text = format!("{prefix} beta {suffix}");
        let doc = pipeline.process(&text);
        prop_assert!(
            doc.annotations.iter().any(|a| a.surface == "beta"
                || a.surface.contains("beta")),
            "beta not detected in {:?}",
            text
        );
    }

    /// Concept-vector scores respect the §II-B bound of 2 x term count.
    #[test]
    fn concept_vector_bounded(words in prop::collection::vec("[a-z]{2,8}", 1..60)) {
        let (_, units) = knowledge();
        let builder = ctxrank_shortcuts::ConceptVectorBuilder::new(
            &units,
            |_| 2.0,
            ctxrank_shortcuts::ConceptVectorConfig::default(),
        );
        for c in builder.build(&words.join(" ")) {
            let n = c.surface.split(' ').count() as f64;
            prop_assert!(c.score <= 2.0 * n + 1e-9);
            prop_assert!(c.score.is_finite());
        }
    }
}
