//! Parity of the trie-walking concept detector against a legacy
//! String-keyed reference implementation.
//!
//! The detector used to probe every candidate window by joining its
//! tokens into a fresh `String` and hashing it against a
//! `HashMap<String, Unit>`. The interned rewrite walks a `PhraseTrie`
//! over term ids instead. These properties prove the two strategies are
//! result-identical on arbitrary token streams — same spans, same
//! surfaces, bit-identical scores — and that detection is independent of
//! the worker-pool thread count.

use ctxrank_querylog::{extract_units, QueryLog, UnitConfig, UnitDictionary};
use ctxrank_shortcuts::{ConceptDetector, ConceptMatch};
use proptest::prelude::*;
use std::collections::HashMap;

/// A unit dictionary with overlapping prefixes, 1–3 term units, an
/// in-unit stop-word and shared terms across units.
fn units() -> UnitDictionary {
    let mut log = QueryLog::new();
    log.add("global warming", 80);
    log.add("global warming effects", 30);
    log.add("global economy", 40);
    log.add("bank of america", 35);
    log.add("america economy", 25);
    log.add("warming", 60);
    for i in 0..40 {
        log.add(&format!("pad filler{i}"), 10);
    }
    extract_units(&log, &UnitConfig::default())
}

/// Tokens that exercise every branch: unit terms, prefixes that dead-end,
/// stop-words, and words no unit contains.
fn vocab() -> Vec<&'static str> {
    vec![
        "global",
        "warming",
        "effects",
        "economy",
        "bank",
        "of",
        "america",
        "the",
        "and",
        "unknownword",
        "zzz",
        "pad",
        "filler1",
    ]
}

/// Strategy for a token stream, as indices into [`vocab`].
fn token_indices() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..vocab().len(), 0..30)
}

fn to_tokens(indices: &[usize]) -> Vec<String> {
    let words = vocab();
    indices.iter().map(|&i| words[i].to_string()).collect()
}

/// The legacy detector: longest-window-first probing of a
/// `HashMap<String, f64>` keyed by space-joined surfaces.
fn detect_reference(
    dict: &UnitDictionary,
    tokens: &[String],
    min_score: f64,
    max_terms: usize,
    allow_single: bool,
) -> Vec<ConceptMatch> {
    let by_surface: HashMap<String, f64> =
        dict.iter().map(|u| (u.terms.join(" "), u.score)).collect();
    let shortest = if allow_single { 1 } else { 2 };
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ctxrank_text::is_stopword(&tokens[i]) {
            i += 1;
            continue;
        }
        let longest = max_terms.min(tokens.len() - i);
        let mut matched: Option<(usize, String, f64)> = None;
        for len in (shortest..=longest).rev() {
            if ctxrank_text::is_stopword(&tokens[i + len - 1]) {
                continue;
            }
            let surface = tokens[i..i + len].join(" ");
            if let Some(&score) = by_surface.get(&surface) {
                if score >= min_score {
                    matched = Some((len, surface, score));
                    break;
                }
            }
        }
        match matched {
            Some((len, surface, unit_score)) => {
                out.push(ConceptMatch {
                    token_start: i,
                    token_len: len,
                    surface,
                    unit_score,
                });
                i += len;
            }
            None => i += 1,
        }
    }
    out
}

proptest! {
    /// Trie detection equals the String-keyed reference on arbitrary
    /// token streams, across score thresholds and the single-term toggle.
    #[test]
    fn trie_detect_matches_string_reference(
        indices in token_indices(),
        score_pick in 0..5usize,
        allow_single in any::<bool>(),
    ) {
        let tokens = to_tokens(&indices);
        let min_score = [0.0, 0.02, 0.05, 0.3, 0.9][score_pick];
        let u = units();
        let mut det = ConceptDetector::new(&u);
        det.min_score = min_score;
        det.allow_single = allow_single;
        let got = det.detect(&tokens);
        let want = detect_reference(&u, &tokens, min_score, det.max_terms, allow_single);
        prop_assert_eq!(got.len(), want.len(), "match counts differ");
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.token_start, w.token_start);
            prop_assert_eq!(g.token_len, w.token_len);
            prop_assert_eq!(&g.surface, &w.surface);
            // Scores travel different paths (trie payload vs HashMap
            // value) but originate from the same unit: bit-identical.
            prop_assert_eq!(g.unit_score.to_bits(), w.unit_score.to_bits());
        }
    }

    /// `detect_ids` is `detect` minus the surface join: the unit index it
    /// reports resolves to exactly the joined token window.
    #[test]
    fn detect_ids_surfaces_resolve(indices in token_indices()) {
        let tokens = to_tokens(&indices);
        let u = units();
        let det = ConceptDetector::new(&u);
        let ids = det.detect_ids(&tokens);
        let full = det.detect(&tokens);
        prop_assert_eq!(ids.len(), full.len());
        for (m, f) in ids.iter().zip(&full) {
            prop_assert_eq!(u.surface(m.unit), f.surface.as_str());
            prop_assert_eq!(
                u.surface(m.unit),
                tokens[m.token_start..m.token_start + m.token_len].join(" ")
            );
            prop_assert_eq!(m.unit_score.to_bits(), f.unit_score.to_bits());
        }
    }

    /// Detection through the worker pool agrees with the serial loop at
    /// every thread count — results depend only on the input order.
    #[test]
    fn detect_independent_of_thread_count(
        doc_indices in prop::collection::vec(token_indices(), 1..8),
    ) {
        let docs: Vec<Vec<String>> = doc_indices.iter().map(|d| to_tokens(d)).collect();
        let u = units();
        let det = ConceptDetector::new(&u);
        let serial: Vec<Vec<ConceptMatch>> =
            docs.iter().map(|d| det.detect(d)).collect();
        for threads in [1usize, 2, 3, 8] {
            let parallel = ctxrank_parallel::par_map(threads, &docs, |d| det.detect(d));
            prop_assert_eq!(&serial, &parallel, "threads={}", threads);
        }
    }
}
