//! `ctxrank-faultsim` — deterministic, seed-driven fault injection for
//! the fragile layers of the serving stack.
//!
//! A production ranking service dies in boring ways: a torn write
//! during a snapshot save, a bit flip on a disk read, a client that
//! sends one byte per second, a connection reset mid-request. None of
//! those appear in happy-path integration tests, so this crate makes
//! them *reproducible*:
//!
//! * [`FaultPlan`] — a seeded xorshift schedule that decides, per I/O
//!   operation, whether to inject a fault and which kind. Same seed,
//!   same faults, every run; `CTXRANK_FAULT_SEED` replays a failure.
//! * [`SimRead`]/[`SimWrite`] — adapters over any `std::io::Read`/
//!   `Write` injecting short reads, mid-file EOF, bit flips, torn
//!   writes and outright I/O errors.
//! * [`FaultyFs`] — a [`ctxrank_framework::persist::PersistFs`] built
//!   from those adapters, so every `save_*`/`load_*` path in
//!   `persist.rs` can run under fault injection unchanged.
//! * [`net`] — chaos loopback clients (slowloris, partial request,
//!   oversized payload, abrupt close) and a byte-forwarding
//!   [`net::ChaosProxy`] listener shim that injects resets and stalls
//!   between a real client and a real server.
//!
//! The contract under test, everywhere: **typed errors, never panics;
//! bounded time, never hangs; the previous good artifact survives.**
//! See `tests/fault_injection.rs` at the workspace root and DESIGN.md
//! §11 for the fault model and the seed-replay workflow.

pub mod io;
pub mod net;
pub mod plan;

pub use io::{FaultyFs, SimRead, SimWrite};
pub use net::{ChaosProxy, NetOutcome};
pub use plan::{seed_from_env, FaultKind, FaultPlan};
