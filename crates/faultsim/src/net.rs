//! Chaos clients and a fault-injecting listener shim for the HTTP
//! serving layer.
//!
//! Each helper models one way a real network peer misbehaves:
//!
//! * [`send_slowloris`] — drip-feeds a valid request one byte at a
//!   time. A server without a per-request deadline holds a worker
//!   hostage forever; a hardened one answers 408 or closes.
//! * [`send_partial_request`] — sends a prefix of a request and then
//!   closes. The server must treat it as a bad request or clean close,
//!   never a hang.
//! * [`send_oversized`] — advertises (and starts sending) a body far
//!   over the server's limit; expects an early 413.
//! * [`send_then_vanish`] — writes a few bytes and drops the socket
//!   (an abrupt peer disappearance / reset as seen by the server).
//!
//! All helpers put a read timeout on their own socket, so the *test*
//! can never hang either; each returns a [`NetOutcome`] the harness
//! asserts on. [`ChaosProxy`] is the listener-side shim: it forwards
//! bytes between a client and an upstream server, killing or stalling
//! connections per the shared [`FaultPlan`].

use crate::plan::FaultPlan;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the server did with a hostile connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetOutcome {
    /// A complete HTTP status line came back.
    Status(u16),
    /// The server closed the connection without a (complete) response.
    Closed,
    /// Our own read timeout expired — the server hung on us. Harnesses
    /// treat this as the failure it is.
    HungUp,
}

fn read_status(stream: &mut TcpStream, timeout: Duration) -> NetOutcome {
    let _ = stream.set_read_timeout(Some(timeout));
    let mut buf = [0u8; 512];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                return parse_status(&head).map_or(NetOutcome::Closed, NetOutcome::Status);
            }
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if let Some(status) = parse_status(&head) {
                    return NetOutcome::Status(status);
                }
                if head.len() > 16 * 1024 {
                    return NetOutcome::Closed;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return NetOutcome::HungUp;
            }
            Err(_) => {
                return parse_status(&head).map_or(NetOutcome::Closed, NetOutcome::Status);
            }
        }
    }
}

/// Extract the status code once a full status line has arrived.
fn parse_status(head: &[u8]) -> Option<u16> {
    let line_end = head.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&head[..line_end]).ok()?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Drip-feed `wire` one byte every `byte_delay`, then (if the server is
/// still listening) read the response. `patience` bounds how long we
/// wait for the server's verdict.
pub fn send_slowloris(
    addr: SocketAddr,
    wire: &[u8],
    byte_delay: Duration,
    patience: Duration,
) -> std::io::Result<NetOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    for &b in wire {
        if stream.write_all(&[b]).is_err() {
            // Server gave up on us mid-drip — that is a pass.
            return Ok(read_status(&mut stream, patience));
        }
        std::thread::sleep(byte_delay);
    }
    Ok(read_status(&mut stream, patience))
}

/// Send only `prefix` of a request, half-close the write side, and see
/// what the server does.
pub fn send_partial_request(
    addr: SocketAddr,
    prefix: &[u8],
    patience: Duration,
) -> std::io::Result<NetOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let _ = stream.write_all(prefix);
    let _ = stream.shutdown(Shutdown::Write);
    Ok(read_status(&mut stream, patience))
}

/// Advertise a `claimed_len` body (and start sending junk) — a
/// hardened server rejects from the `Content-Length` header alone.
pub fn send_oversized(
    addr: SocketAddr,
    claimed_len: usize,
    patience: Duration,
) -> std::io::Result<NetOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let head = format!("POST /rank HTTP/1.1\r\nhost: x\r\ncontent-length: {claimed_len}\r\n\r\n");
    let _ = stream.write_all(head.as_bytes());
    // Push some body bytes in case the server reads before judging.
    let junk = [b'x'; 1024];
    for _ in 0..8 {
        if stream.write_all(&junk).is_err() {
            break;
        }
    }
    Ok(read_status(&mut stream, patience))
}

/// Send an arbitrary byte blob as-is and wait for the server's verdict
/// — the workhorse of fuzzers that generate whole malformed requests.
pub fn send_raw(addr: SocketAddr, bytes: &[u8], patience: Duration) -> std::io::Result<NetOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    if stream.write_all(bytes).is_err() {
        return Ok(read_status(&mut stream, patience));
    }
    let _ = stream.shutdown(Shutdown::Write);
    Ok(read_status(&mut stream, patience))
}

/// Write `bytes` and vanish: drop the socket with the request unsent.
/// From the server's side this is a peer reset / disappearance
/// mid-request; it must not leak the worker or the connection slot.
pub fn send_then_vanish(addr: SocketAddr, bytes: &[u8]) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let _ = stream.write_all(bytes);
    // Dropping without reading the response: if the server already
    // wrote bytes, the close turns into an RST on most stacks.
    drop(stream);
    Ok(())
}

/// A byte-forwarding TCP proxy that injects faults between a client
/// and an upstream server: per forwarded chunk it may kill the
/// connection (reset as observed by both sides) or stall briefly.
///
/// The plan's *write* schedule drives injection so a proxy can share a
/// plan with disk-fault adapters without consuming their read stream.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    dropped: Arc<AtomicU64>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listen on an ephemeral loopback port, forwarding to `upstream`.
    pub fn start(upstream: SocketAddr, plan: Arc<FaultPlan>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let dropped = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let dropped = Arc::clone(&dropped);
            std::thread::Builder::new()
                .name("faultsim-proxy".into())
                .spawn(move || run_proxy(&listener, upstream, &plan, &stop, &dropped))
                .expect("spawn proxy thread")
        };
        Ok(Self {
            addr,
            stop,
            dropped,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections the proxy has killed so far.
    pub fn dropped_connections(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the acceptor. In-flight pump threads
    /// finish on their own (their sockets have read timeouts).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn run_proxy(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &Arc<FaultPlan>,
    stop: &Arc<AtomicBool>,
    dropped: &Arc<AtomicU64>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(client) = conn else { continue };
        let Ok(server) = TcpStream::connect(upstream) else {
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        let kill = Arc::new(AtomicBool::new(false));
        for (mut from, mut to) in [(client_r, server), (server_r, client)] {
            let plan = Arc::clone(plan);
            let kill = Arc::clone(&kill);
            let dropped = Arc::clone(dropped);
            let _ = std::thread::Builder::new()
                .name("faultsim-pump".into())
                .spawn(move || {
                    let _ = from.set_read_timeout(Some(Duration::from_secs(5)));
                    let mut buf = [0u8; 4096];
                    loop {
                        if kill.load(Ordering::Acquire) {
                            break;
                        }
                        let n = match from.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => n,
                        };
                        if plan.decide_write().is_some() {
                            // Kill both directions: the abrupt
                            // mid-stream death a flaky LB produces.
                            kill.store(true, Ordering::Release);
                            dropped.fetch_add(1, Ordering::Relaxed);
                            let _ = to.shutdown(Shutdown::Both);
                            let _ = from.shutdown(Shutdown::Both);
                            break;
                        }
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_status_wants_a_full_line() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK"), None);
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\nmore"), Some(200));
        assert_eq!(parse_status(b"HTTP/1.1 503 Bad\n"), Some(503));
        assert_eq!(parse_status(b"garbage\r\n"), None);
    }

    /// The proxy with an empty plan is a transparent byte pipe.
    #[test]
    fn transparent_proxy_round_trips() {
        // A one-shot echo "server".
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let upstream = listener.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).expect("read");
            s.write_all(&buf[..n]).expect("write");
        });

        let proxy = ChaosProxy::start(upstream, Arc::new(FaultPlan::empty())).expect("start proxy");
        let mut conn = TcpStream::connect(proxy.local_addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"ping").expect("send");
        let mut back = [0u8; 4];
        conn.read_exact(&mut back).expect("echo");
        assert_eq!(&back, b"ping");
        echo.join().expect("echo thread");
        assert_eq!(proxy.dropped_connections(), 0);
        proxy.shutdown();
    }
}
