//! Fault-injecting wrappers over `std::io` and the persist layer.
//!
//! [`SimRead`]/[`SimWrite`] wrap any reader/writer and consult the
//! shared [`FaultPlan`] on every call. [`FaultyFs`] plugs them into
//! [`ctxrank_framework::persist::PersistFs`], so the *production*
//! save/load code runs unmodified — the faults happen exactly where a
//! failing disk would produce them, underneath the format logic.

use crate::plan::{FaultKind, FaultPlan};
use ctxrank_framework::persist::PersistFs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

fn injected_error(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// A reader that injects short reads, early EOF, bit flips and I/O
/// errors per the plan.
pub struct SimRead<R> {
    inner: R,
    plan: Arc<FaultPlan>,
    /// Once EOF has been injected the stream stays ended — a truncated
    /// file does not grow back mid-read.
    ended: bool,
}

impl<R: Read> SimRead<R> {
    pub fn new(inner: R, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            ended: false,
        }
    }
}

impl<R: Read> Read for SimRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.ended || buf.is_empty() {
            return Ok(0);
        }
        match self.plan.decide_read() {
            None => self.inner.read(buf),
            Some(FaultKind::ShortRead) => {
                // Serve at most half the asked-for bytes (≥ 1): legal
                // under the Read contract, so callers that loop keep
                // working and callers that assume one-shot reads break
                // loudly.
                let cap = (buf.len() / 2).max(1);
                self.inner.read(&mut buf[..cap])
            }
            Some(FaultKind::Eof) => {
                self.ended = true;
                Ok(0)
            }
            Some(FaultKind::BitFlip) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let at = self.plan.next_below(n);
                    buf[at] ^= 1 << self.plan.next_below(8);
                }
                Ok(n)
            }
            Some(FaultKind::IoError) => Err(injected_error("read")),
            // Write kinds never come out of decide_read.
            Some(FaultKind::TornWrite) => self.inner.read(buf),
        }
    }
}

/// A writer that injects torn writes and I/O errors per the plan.
pub struct SimWrite<W> {
    inner: W,
    plan: Arc<FaultPlan>,
    /// A torn stream stays broken: after the first injected failure
    /// every further write fails, like a dead disk.
    broken: bool,
}

impl<W: Write> SimWrite<W> {
    pub fn new(inner: W, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            broken: false,
        }
    }
}

impl<W: Write> Write for SimWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Err(injected_error("write after tear"));
        }
        match self.plan.decide_write() {
            None => self.inner.write(buf),
            Some(FaultKind::TornWrite) => {
                // Persist a strict prefix, then die: exactly what a
                // crash between two write(2) calls leaves on disk.
                let keep = self.plan.next_below(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    let _ = self.inner.flush();
                }
                self.broken = true;
                Err(injected_error("torn write"))
            }
            Some(_) => {
                self.broken = true;
                Err(injected_error("write"))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(injected_error("flush after tear"));
        }
        self.inner.flush()
    }
}

/// A [`PersistFs`] whose readers and writers run under the plan.
///
/// Renames and directory creation pass through (they model the
/// metadata path, which the persist layer already orders so that the
/// manifest rename is the commit point); every *byte* read or written
/// is faultable.
pub struct FaultyFs {
    plan: Arc<FaultPlan>,
}

impl FaultyFs {
    pub fn new(plan: Arc<FaultPlan>) -> Self {
        Self { plan }
    }

    /// The shared schedule (for asserting injection counts in tests).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl PersistFs for FaultyFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read>> {
        let file = std::fs::File::open(path)?;
        Ok(Box::new(SimRead::new(file, Arc::clone(&self.plan))))
    }

    fn create_write(&self, path: &Path) -> io::Result<Box<dyn Write>> {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(SimWrite::new(file, Arc::clone(&self.plan))))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, rate: u32) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(seed, rate))
    }

    #[test]
    fn empty_plan_is_the_identity() {
        let data = b"the quick brown fox".to_vec();
        let mut reader = SimRead::new(&data[..], Arc::new(FaultPlan::empty()));
        let mut out = Vec::new();
        reader.read_to_end(&mut out).expect("clean read");
        assert_eq!(out, data);

        let mut sink = Vec::new();
        {
            let mut writer = SimWrite::new(&mut sink, Arc::new(FaultPlan::empty()));
            writer.write_all(&data).expect("clean write");
            writer.flush().expect("clean flush");
        }
        assert_eq!(sink, data);
    }

    #[test]
    fn eof_injection_truncates() {
        let data = vec![7u8; 4096];
        let p = Arc::new(FaultPlan::with_kinds(5, 1000, &[FaultKind::Eof], &[]));
        let mut reader = SimRead::new(&data[..], p);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).expect("eof is not an error");
        assert!(out.len() < data.len(), "nothing truncated");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let data = [0u8; 64];
        let p = Arc::new(FaultPlan::with_kinds(9, 1000, &[FaultKind::BitFlip], &[]));
        let mut reader = SimRead::new(&data[..], p);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).expect("read");
        assert_eq!(out.len(), data.len());
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert!(flipped >= 1, "no bit flipped");
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix_then_fails() {
        let data = vec![3u8; 1024];
        let mut sink = Vec::new();
        let err = {
            let p = Arc::new(FaultPlan::with_kinds(2, 1000, &[], &[FaultKind::TornWrite]));
            let mut writer = SimWrite::new(&mut sink, p);
            writer.write_all(&data)
        };
        assert!(err.is_err(), "torn write must surface");
        assert!(sink.len() < data.len(), "prefix must be strict");
        assert!(sink.iter().all(|&b| b == 3), "prefix bytes intact");
    }

    #[test]
    fn short_reads_still_complete_via_read_to_end() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let p = Arc::new(FaultPlan::with_kinds(4, 500, &[FaultKind::ShortRead], &[]));
        let mut reader = SimRead::new(&data[..], p);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).expect("read");
        assert_eq!(out, data, "short reads must not lose or corrupt bytes");
    }

    #[test]
    fn io_error_injection_surfaces() {
        let data = vec![0u8; 1 << 16];
        let p = plan(1, 300);
        let mut any_err = false;
        for _ in 0..20 {
            let mut reader = SimRead::new(&data[..], Arc::clone(&p));
            let mut out = Vec::new();
            if reader.read_to_end(&mut out).is_err() {
                any_err = true;
            }
        }
        assert!(any_err, "30% over 20 files never errored");
    }
}
