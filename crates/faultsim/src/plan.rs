//! The seeded fault schedule.
//!
//! Determinism is the whole point: a chaos test that fails once and
//! never again teaches nothing. Every decision [`FaultPlan`] makes —
//! inject or not, which fault, which byte to flip, how much of a write
//! to tear — comes from one xorshift64* stream derived from the seed,
//! so a failing run is replayed exactly by re-running with the seed it
//! printed (`CTXRANK_FAULT_SEED=<seed>`).

use std::sync::atomic::{AtomicU64, Ordering};

/// What to inject into one I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A read returns fewer bytes than asked (legal per the `Read`
    /// contract, but exercises resume logic).
    ShortRead,
    /// A read reports end-of-file early: the classic truncated file.
    Eof,
    /// One bit of the bytes read is flipped: silent media corruption.
    BitFlip,
    /// A write persists only a prefix, then fails: the torn write a
    /// crash mid-`write(2)` leaves behind.
    TornWrite,
    /// The operation fails outright with an `io::Error`.
    IoError,
}

impl FaultKind {
    /// Every kind that applies to reads.
    pub const READS: &'static [FaultKind] = &[
        FaultKind::ShortRead,
        FaultKind::Eof,
        FaultKind::BitFlip,
        FaultKind::IoError,
    ];
    /// Every kind that applies to writes.
    pub const WRITES: &'static [FaultKind] = &[FaultKind::TornWrite, FaultKind::IoError];
}

/// A deterministic, thread-safe fault schedule.
///
/// The xorshift state lives in an `AtomicU64`, so one plan can be
/// shared (via `Arc`) across every adapter in a test; the interleaving
/// of *which operation draws which number* can vary across threads,
/// but the stream itself — and therefore a single-threaded replay — is
/// fixed by the seed.
#[derive(Debug)]
pub struct FaultPlan {
    state: AtomicU64,
    /// Injection probability in parts per 1000 (100 = 10%).
    rate_permille: u32,
    read_kinds: Vec<FaultKind>,
    write_kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan injecting all fault kinds at `rate_permille`/1000 per
    /// operation.
    pub fn new(seed: u64, rate_permille: u32) -> Self {
        Self::with_kinds(seed, rate_permille, FaultKind::READS, FaultKind::WRITES)
    }

    /// A plan restricted to the given read/write fault kinds.
    pub fn with_kinds(
        seed: u64,
        rate_permille: u32,
        read_kinds: &[FaultKind],
        write_kinds: &[FaultKind],
    ) -> Self {
        Self {
            // Seed 0 is the xorshift fixed point; displace it.
            state: AtomicU64::new(seed ^ 0x9E37_79B9_7F4A_7C15),
            rate_permille: rate_permille.min(1000),
            read_kinds: read_kinds.to_vec(),
            write_kinds: write_kinds.to_vec(),
        }
    }

    /// A plan that never injects anything — the identity schedule. Code
    /// threaded through faultsim with an empty plan must behave exactly
    /// like code that never heard of faultsim.
    pub fn empty() -> Self {
        Self::with_kinds(0, 0, &[], &[])
    }

    /// Next raw number from the shared xorshift64* stream.
    pub fn next_u64(&self) -> u64 {
        // fetch_update with the xorshift64* permutation; the final
        // multiply is applied to the *returned* value only, keeping the
        // state a plain xorshift orbit (never zero for nonzero seed).
        let prev = self
            .state
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Some(x)
            })
            .expect("fetch_update closure always returns Some");
        prev.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..bound` (bound 0 yields 0).
    pub fn next_below(&self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Decide whether the next read operation gets a fault.
    pub fn decide_read(&self) -> Option<FaultKind> {
        self.decide(&self.read_kinds)
    }

    /// Decide whether the next write operation gets a fault.
    pub fn decide_write(&self) -> Option<FaultKind> {
        self.decide(&self.write_kinds)
    }

    fn decide(&self, kinds: &[FaultKind]) -> Option<FaultKind> {
        if kinds.is_empty() || self.rate_permille == 0 {
            return None;
        }
        if self.next_u64() % 1000 >= u64::from(self.rate_permille) {
            return None;
        }
        Some(kinds[self.next_below(kinds.len())])
    }

    /// The configured injection rate, in parts per 1000.
    pub fn rate_permille(&self) -> u32 {
        self.rate_permille
    }
}

/// Resolve the run's seed: `CTXRANK_FAULT_SEED` when set (decimal or
/// `0x`-hex), otherwise `fallback`. Harnesses print the resolved seed
/// so any failure is replayable.
pub fn seed_from_env(fallback: u64) -> u64 {
    match std::env::var("CTXRANK_FAULT_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse(),
            };
            parsed.unwrap_or(fallback)
        }
        Err(_) => fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42, 100);
        let b = FaultPlan::new(42, 100);
        for _ in 0..1000 {
            assert_eq!(a.decide_read(), b.decide_read());
            assert_eq!(a.decide_write(), b.decide_write());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1, 500);
        let b = FaultPlan::new(2, 500);
        let same = (0..200)
            .filter(|_| a.decide_read() == b.decide_read())
            .count();
        assert!(same < 200, "identical schedules from different seeds");
    }

    #[test]
    fn rate_is_roughly_honored() {
        let plan = FaultPlan::new(7, 100); // 10%
        let injected = (0..10_000).filter(|_| plan.decide_read().is_some()).count();
        // 10% ± generous slack; xorshift is uniform enough for this.
        assert!(
            (600..=1400).contains(&injected),
            "injected {injected}/10000"
        );
    }

    #[test]
    fn empty_plan_never_injects() {
        let plan = FaultPlan::empty();
        for _ in 0..1000 {
            assert_eq!(plan.decide_read(), None);
            assert_eq!(plan.decide_write(), None);
        }
    }

    #[test]
    fn kind_restriction_respected() {
        let plan = FaultPlan::with_kinds(3, 1000, &[FaultKind::Eof], &[FaultKind::TornWrite]);
        for _ in 0..100 {
            assert_eq!(plan.decide_read(), Some(FaultKind::Eof));
            assert_eq!(plan.decide_write(), Some(FaultKind::TornWrite));
        }
    }

    #[test]
    fn seed_env_parses_decimal_and_hex() {
        // Not using set_var: just exercise the parser via the fallback
        // path plus direct calls.
        assert_eq!(seed_from_env(99), 99);
    }

    #[test]
    fn next_below_bounds() {
        let plan = FaultPlan::new(11, 0);
        for _ in 0..100 {
            assert!(plan.next_below(7) < 7);
        }
        assert_eq!(plan.next_below(0), 0);
    }
}
