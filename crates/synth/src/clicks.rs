//! The click model.
//!
//! Implements the paper's core causal assumption (§I-B): "the more
//! relevant an entity is to the topic of the document and the more
//! interesting it is to the general user base, the more clicks it will
//! ultimately get." Each annotated entity's click-through rate is a noisy
//! function of its latent interestingness and its ground-truth relevance
//! to the story, modulated by position bias; clicks are then drawn
//! binomially from the story's view count. Views per entity equal the
//! story's views, exactly as the tracking system reports (§III).
//!
//! The module also implements the paper's data-cleaning rules (§V-A.1):
//! drop a story if it has fewer than 30 sampled views, only one concept,
//! or no concept with more than three sampled clicks.

use crate::concepts::{ConceptId, ConceptUniverse};

/// Click-model parameters.
#[derive(Debug, Clone)]
pub struct ClickConfig {
    /// Log-normal location of story view counts.
    pub view_mu: f64,
    /// Log-normal scale of story view counts.
    pub view_sigma: f64,
    /// CTR of a maximally interesting, fully relevant, top-of-page
    /// entity.
    pub max_ctr: f64,
    /// Exponent on interestingness (concavity of the response).
    pub interest_power: f64,
    /// Relevance response floor: CTR factor is
    /// `floor + (1 - floor) * relevance` — even an irrelevant entity gets
    /// the occasional curiosity click.
    pub relevance_floor: f64,
    /// Multiplicative log-normal noise scale on CTR.
    pub noise_sigma: f64,
    /// Strength of position bias: the factor decays linearly from 1.0 at
    /// the top of the story to `1 - position_bias` at the bottom.
    pub position_bias: f64,
}

impl Default for ClickConfig {
    fn default() -> Self {
        Self {
            // Calibrated against §V-A: the paper's dataset averages only
            // ~2.6 sampled clicks per concept, so the CTR labels are very
            // noisy — small view counts and strong multiplicative noise
            // reproduce that regime (see EXPERIMENTS.md).
            view_mu: 4.6, // median ~100 views
            view_sigma: 1.0,
            max_ctr: 0.08,
            interest_power: 0.8,
            relevance_floor: 0.33,
            noise_sigma: 0.5,
            position_bias: 0.3,
        }
    }
}

/// One annotated entity's click outcome within a story.
#[derive(Debug, Clone, PartialEq)]
pub struct ClickRecord {
    pub concept: ConceptId,
    /// Fractional position of the annotation in the story (0 = top).
    pub position_frac: f64,
    /// Sampled clicks.
    pub clicks: u64,
    /// The true (pre-sampling) click probability — kept for diagnostics;
    /// learners must not touch it.
    pub true_ctr: f64,
}

/// A story's click report: the per-entity view count is the story view
/// count (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct StoryClicks {
    pub story: usize,
    pub views: u64,
    pub records: Vec<ClickRecord>,
}

impl StoryClicks {
    /// Observed CTR of record `i`.
    pub fn ctr(&self, i: usize) -> f64 {
        if self.views == 0 {
            0.0
        } else {
            self.records[i].clicks as f64 / self.views as f64
        }
    }

    /// The paper's §V-A.1 noise filter: at least 30 sampled views, more
    /// than one concept, and some concept with more than three clicks.
    pub fn passes_paper_filter(&self) -> bool {
        self.views >= 30 && self.records.len() > 1 && self.records.iter().any(|r| r.clicks > 3)
    }

    /// Total clicks across all records.
    pub fn total_clicks(&self) -> u64 {
        self.records.iter().map(|r| r.clicks).sum()
    }
}

/// Simulate clicks for one story.
///
/// `annotated` lists the entities that were actually annotated (the
/// production system decides this), each with its ground-truth relevance
/// to the story and its fractional position. Determinism: the same
/// `seed`/`story_id` pair always yields the same outcome.
pub fn simulate_story(
    seed: u64,
    story_id: usize,
    universe: &ConceptUniverse,
    annotated: &[(ConceptId, f64, f64)], // (concept, relevance, position_frac)
    config: &ClickConfig,
) -> StoryClicks {
    // The paper's linear position decay, expressed as a bias model; the
    // biased simulator consumes the RNG in the same order, so this
    // delegation is bit-for-bit identical to the original inline loop.
    let bias = crate::bias::LinearBias {
        strength: config.position_bias,
    };
    crate::bias::simulate_story_biased(seed, story_id, universe, annotated, config, &bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{ConceptId, UniverseConfig};
    use crate::lexicon::Lexicon;

    fn universe() -> ConceptUniverse {
        let lex = Lexicon::generate(2, 300, 4, 60);
        ConceptUniverse::generate(
            2,
            &lex,
            &UniverseConfig {
                num_specific: 100,
                num_junk: 10,
                ..UniverseConfig::default()
            },
        )
    }

    fn hot_and_cold(uni: &ConceptUniverse) -> (ConceptId, ConceptId) {
        let mut sorted: Vec<_> = uni.all().iter().filter(|c| !c.is_junk()).collect();
        sorted.sort_by(|a, b| {
            b.interestingness
                .partial_cmp(&a.interestingness)
                .expect("finite")
        });
        (sorted[0].id, sorted.last().expect("nonempty").id)
    }

    #[test]
    fn interesting_relevant_concepts_click_more() {
        let uni = universe();
        let (hot, cold) = hot_and_cold(&uni);
        let cfg = ClickConfig::default();
        let mut hot_clicks = 0u64;
        let mut cold_clicks = 0u64;
        let mut views = 0u64;
        for story in 0..300 {
            let sc = simulate_story(1, story, &uni, &[(hot, 1.0, 0.1), (cold, 1.0, 0.1)], &cfg);
            hot_clicks += sc.records[0].clicks;
            cold_clicks += sc.records[1].clicks;
            views += sc.views;
        }
        assert!(views > 0);
        assert!(
            hot_clicks > cold_clicks * 2,
            "hot {hot_clicks} vs cold {cold_clicks}"
        );
    }

    #[test]
    fn relevance_multiplies_ctr() {
        let uni = universe();
        let (hot, _) = hot_and_cold(&uni);
        let cfg = ClickConfig::default();
        let mut relevant = 0u64;
        let mut irrelevant = 0u64;
        for story in 0..300 {
            let sc = simulate_story(2, story, &uni, &[(hot, 1.0, 0.2), (hot, 0.05, 0.2)], &cfg);
            relevant += sc.records[0].clicks;
            irrelevant += sc.records[1].clicks;
        }
        assert!(
            relevant > irrelevant * 2,
            "relevant {relevant} vs irrelevant {irrelevant}"
        );
    }

    #[test]
    fn position_bias_reduces_clicks() {
        let uni = universe();
        let (hot, _) = hot_and_cold(&uni);
        let cfg = ClickConfig::default();
        let mut top = 0u64;
        let mut bottom = 0u64;
        for story in 0..400 {
            let sc = simulate_story(3, story, &uni, &[(hot, 1.0, 0.0), (hot, 1.0, 1.0)], &cfg);
            top += sc.records[0].clicks;
            bottom += sc.records[1].clicks;
        }
        assert!(top > bottom, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn deterministic_per_seed_and_story() {
        let uni = universe();
        let (hot, cold) = hot_and_cold(&uni);
        let cfg = ClickConfig::default();
        let a = simulate_story(5, 17, &uni, &[(hot, 1.0, 0.3), (cold, 0.5, 0.6)], &cfg);
        let b = simulate_story(5, 17, &uni, &[(hot, 1.0, 0.3), (cold, 0.5, 0.6)], &cfg);
        assert_eq!(a.views, b.views);
        assert_eq!(a.records, b.records);
        let c = simulate_story(5, 18, &uni, &[(hot, 1.0, 0.3), (cold, 0.5, 0.6)], &cfg);
        assert!(a.views != c.views || a.records != c.records);
    }

    #[test]
    fn paper_filter_rules() {
        let base = StoryClicks {
            story: 0,
            views: 100,
            records: vec![
                ClickRecord {
                    concept: ConceptId(0),
                    position_frac: 0.0,
                    clicks: 5,
                    true_ctr: 0.05,
                },
                ClickRecord {
                    concept: ConceptId(1),
                    position_frac: 0.5,
                    clicks: 0,
                    true_ctr: 0.01,
                },
            ],
        };
        assert!(base.passes_paper_filter());

        let few_views = StoryClicks {
            views: 29,
            ..base.clone()
        };
        assert!(!few_views.passes_paper_filter());

        let one_concept = StoryClicks {
            records: base.records[..1].to_vec(),
            ..base.clone()
        };
        assert!(!one_concept.passes_paper_filter());

        let no_clicks = StoryClicks {
            records: base
                .records
                .iter()
                .map(|r| ClickRecord {
                    clicks: 3,
                    ..r.clone()
                })
                .collect(),
            ..base.clone()
        };
        assert!(!no_clicks.passes_paper_filter());
    }

    #[test]
    fn ctr_accessor() {
        let sc = StoryClicks {
            story: 0,
            views: 200,
            records: vec![ClickRecord {
                concept: ConceptId(0),
                position_frac: 0.0,
                clicks: 10,
                true_ctr: 0.05,
            }],
        };
        assert!((sc.ctr(0) - 0.05).abs() < 1e-12);
        assert_eq!(sc.total_clicks(), 10);
    }
}
