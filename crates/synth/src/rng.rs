//! Small sampling helpers on top of `rand`.
//!
//! The generators need a handful of non-uniform distributions (Zipf-like
//! popularity, log-normal view counts, Gaussian noise). To keep the
//! dependency footprint to the approved crate list we implement them here
//! directly rather than pulling in `rand_distr`.

use rand::Rng;

/// A standard-normal sample via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * normal(rng)
}

/// A log-normal sample: `exp(mu + sigma * N(0,1))`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// A heavy-tailed sample in `(0, 1]`: `u^shape` for `shape >= 1` pushes
/// mass toward zero, leaving a thin tail of large values — the Zipf-like
/// popularity profile of real query logs and click-through rates.
pub fn heavy_tail01<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    u.powf(shape)
}

/// An integer Zipf rank sampler over `[0, n)` with exponent `s`:
/// `P(k) ∝ 1/(k+1)^s`. Uses a precomputed cumulative table.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draw a rank in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never true: the constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A self-contained Zipf-distributed query stream: a [`ZipfSampler`]
/// bundled with its own seeded RNG, so load generators can draw a
/// reproducible head-heavy query mix without threading an external RNG
/// through every call site (the open-loop bench in `ctxrank-bench`
/// drives one per connection lane).
#[derive(Debug, Clone)]
pub struct ZipfQueryMix {
    sampler: ZipfSampler,
    rng: rand::rngs::StdRng,
}

impl ZipfQueryMix {
    /// A mix over `n` distinct queries with exponent `s`, deterministic
    /// in `seed`.
    ///
    /// # Panics
    /// Panics when `n == 0` (via [`ZipfSampler::new`]).
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        use rand::SeedableRng;
        Self {
            sampler: ZipfSampler::new(n, s),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The next query index in `[0, n)`.
    pub fn next_index(&mut self) -> usize {
        self.sampler.sample(&mut self.rng)
    }

    /// Number of distinct queries in the mix.
    pub fn len(&self) -> usize {
        self.sampler.len()
    }

    /// Never true: the constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        self.sampler.is_empty()
    }
}

/// Choose one element of `items` uniformly. Panics on an empty slice.
pub fn choose<'a, T, R: Rng + ?Sized>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

/// Bernoulli draw.
pub fn flip<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.random::<f64>() < p
}

/// Binomial sample via normal approximation for large `n`, exact
/// Bernoulli summation for small `n`. Good enough for click counts.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let np = n as f64 * p;
    if n > 200 && np > 10.0 && (n as f64) * (1.0 - p) > 10.0 {
        let sd = (np * (1.0 - p)).sqrt();
        let x = normal_with(rng, np, sd).round();
        return x.clamp(0.0, n as f64) as u64;
    }
    (0..n).filter(|_| flip(rng, p)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_roughly_standard() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn heavy_tail_bounded() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = heavy_tail01(&mut r, 3.0);
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn heavy_tail_is_skewed() {
        let mut r = rng();
        let n = 10_000;
        let mean = (0..n).map(|_| heavy_tail01(&mut r, 4.0)).sum::<f64>() / n as f64;
        // E[u^4] = 1/5.
        assert!((mean - 0.2).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut r = rng();
        let z = ZipfSampler::new(100, 1.1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_covers_range() {
        let mut r = rng();
        let z = ZipfSampler::new(5, 0.8);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 5);
        }
    }

    #[test]
    fn binomial_matches_expectation() {
        let mut r = rng();
        // Large-n path.
        let x = binomial(&mut r, 100_000, 0.3);
        assert!((x as f64 - 30_000.0).abs() < 1_000.0);
        // Small-n path.
        let total: u64 = (0..2000).map(|_| binomial(&mut r, 10, 0.5)).sum();
        assert!((total as f64 / 2000.0 - 5.0).abs() < 0.2);
    }

    #[test]
    fn binomial_edges() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
    }

    #[test]
    fn log_normal_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 3.0, 1.0) > 0.0);
        }
    }
}
