//! Synthetic web corpus.
//!
//! Stands in for "all the web documents that are indexed by Yahoo! Search"
//! (§II-B) — the source of term–document frequencies (idf), phrase-query
//! result counts (feature `searchengine_phrase`), result snippets and the
//! Prisma feedback pool.
//!
//! Each document belongs to one topic and mixes three vocabularies:
//! the topic's distinctive pool, the general pool, and inline mentions of
//! concepts that live in that topic. Junk phrases are sprinkled across
//! *all* topics at a low rate — they appear often (they are general) but
//! never with a coherent surrounding vocabulary, which is exactly the
//! structure Table II exploits.

use crate::concepts::{ConceptId, ConceptUniverse};
use crate::lexicon::{center_distance, Lexicon};
use crate::rng;
use crate::rng::ZipfSampler;
use ctxrank_index::{Index, IndexBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of web documents.
    pub num_docs: usize,
    /// Document length range in tokens.
    pub min_tokens: usize,
    pub max_tokens: usize,
    /// Probability that a token position is a topic word (vs general).
    pub p_topic_word: f64,
    /// Concept mentions per document (on-topic), expected.
    pub mentions_per_doc: f64,
    /// Probability a document carries one junk-phrase mention.
    pub p_junk_mention: f64,
    /// Zipf exponent for general-word sampling.
    pub general_zipf: f64,
    /// Spread of the sub-topic word sampling around a document's center.
    pub center_spread: f64,
    /// Kernel width of mention-to-document center proximity; smaller
    /// means documents stay closer to the concepts they mention.
    pub proximity_sigma: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_docs: 10000,
            min_tokens: 60,
            max_tokens: 180,
            p_topic_word: 0.5,
            mentions_per_doc: 4.0,
            p_junk_mention: 0.25,
            general_zipf: 1.05,
            center_spread: 0.07,
            proximity_sigma: 0.07,
        }
    }
}

/// Generate the corpus and freeze it into a searchable [`Index`].
pub fn generate_corpus(
    seed: u64,
    lexicon: &Lexicon,
    universe: &ConceptUniverse,
    config: &CorpusConfig,
) -> Index {
    let mut r = StdRng::seed_from_u64(seed ^ 0xc0fb5);
    let zipf = ZipfSampler::new(lexicon.general().len(), config.general_zipf);
    let num_topics = lexicon.num_topics();

    // Group concepts by topic with their popularity weights: the web
    // writes far more about interesting concepts, and continuously so —
    // this is what makes snippet keyword mass a popularity signal
    // (Table II and the §V-A.5 result that snippets are the best
    // relevance resource). Mentions are additionally weighted by
    // sub-topic proximity to the document's center, which grounds graded
    // relevance in the text itself.
    let mut by_topic: Vec<Vec<(ConceptId, f64, f64)>> = vec![Vec::new(); num_topics];
    for c in universe.all() {
        if let Some(t) = c.topic {
            let weight = (0.01 + c.interestingness).powf(1.5);
            by_topic[t].push((c.id, weight, c.center));
        }
    }
    let junk_ids: Vec<ConceptId> = universe.junk().map(|c| c.id).collect();

    let mut builder = IndexBuilder::new();
    for d in 0..config.num_docs {
        let topic = d % num_topics;
        let center: f64 = r.random();
        let len = r.random_range(config.min_tokens..=config.max_tokens);
        let mut words: Vec<String> = Vec::with_capacity(len + 8);
        while words.len() < len {
            if rng::flip(&mut r, config.p_topic_word) {
                words.push(
                    lexicon
                        .sample_topic_near(&mut r, topic, center, config.center_spread)
                        .to_string(),
                );
            } else {
                words.push(lexicon.sample_general(&mut r, &zipf).to_string());
            }
        }
        // Insert on-topic concept mentions at random positions, weighted
        // by popularity x sub-topic proximity.
        if !by_topic[topic].is_empty() {
            let mentions = sample_count(&mut r, config.mentions_per_doc);
            for _ in 0..mentions {
                let cid =
                    sample_proximate(&mut r, &by_topic[topic], center, config.proximity_sigma);
                insert_phrase(&mut r, &mut words, &universe.get(cid).terms);
            }
        }
        // Occasionally a junk phrase, regardless of topic.
        if !junk_ids.is_empty() && rng::flip(&mut r, config.p_junk_mention) {
            let cid = *rng::choose(&mut r, &junk_ids);
            insert_phrase(&mut r, &mut words, &universe.get(cid).terms);
        }
        builder.add_document(&words.join(" "));
    }
    builder.build()
}

/// Draw a concept from `pool` with probability proportional to its
/// popularity among concepts whose sub-topic center lies within `sigma`
/// (soft gate with a steep fourth-power kernel). The gate is what keeps
/// every concept's corpus context *localized*: a document about one
/// sub-topic never mentions a popular concept from another — "Texas"
/// pages contain Texas words no matter how famous Texas is.
fn sample_proximate(
    r: &mut StdRng,
    pool: &[(ConceptId, f64, f64)],
    center: f64,
    sigma: f64,
) -> ConceptId {
    let weights: Vec<f64> = pool
        .iter()
        .map(|&(_, w, c)| {
            let d = center_distance(center, c);
            w * (-(d / sigma).powi(4)).exp() + 1e-12
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u: f64 = r.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return pool[i].0;
        }
    }
    pool.last().expect("nonempty pool").0
}

/// Poisson-ish small count with the given mean (geometric approximation —
/// adequate for mention counts).
fn sample_count(r: &mut StdRng, mean: f64) -> usize {
    let mut n = 0;
    let p = mean / (1.0 + mean);
    while n < 12 && rng::flip(r, p) {
        n += 1;
    }
    n
}

/// Splice `phrase` into `words` at a random position (kept contiguous so
/// phrase queries can find it).
fn insert_phrase(r: &mut StdRng, words: &mut Vec<String>, phrase: &[String]) {
    let at = r.random_range(0..=words.len());
    for (i, t) in phrase.iter().enumerate() {
        words.insert(at + i, t.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::UniverseConfig;

    fn setup() -> (Lexicon, ConceptUniverse, Index) {
        let lex = Lexicon::generate(4, 400, 4, 60);
        let uni = ConceptUniverse::generate(
            4,
            &lex,
            &UniverseConfig {
                num_specific: 60,
                num_junk: 8,
                ..UniverseConfig::default()
            },
        );
        let idx = generate_corpus(
            4,
            &lex,
            &uni,
            &CorpusConfig {
                num_docs: 400,
                ..CorpusConfig::default()
            },
        );
        (lex, uni, idx)
    }

    #[test]
    fn corpus_size() {
        let (_, _, idx) = setup();
        assert_eq!(idx.num_docs(), 400);
    }

    #[test]
    fn concepts_findable_as_phrases() {
        let (_, uni, idx) = setup();
        let findable = uni
            .all()
            .iter()
            .filter(|c| !c.is_junk())
            .filter(|c| idx.phrase_count(&c.terms) > 0)
            .count();
        let total = uni.all().iter().filter(|c| !c.is_junk()).count();
        assert!(
            findable * 2 > total,
            "most specific concepts should appear in the corpus ({findable}/{total})"
        );
    }

    #[test]
    fn topic_words_have_higher_idf_than_common_generals() {
        let (lex, _, idx) = setup();
        // The most common general words appear in many documents; topic
        // words only in ~1/num_topics of them.
        let common_general = &lex.general()[0];
        let topic_word = &lex.topic(0)[0];
        assert!(
            idx.idf(topic_word) > idx.idf(common_general),
            "topic word should be more distinctive"
        );
    }

    #[test]
    fn junk_phrases_spread_across_topics() {
        let (_, uni, idx) = setup();
        // At least one junk phrase appears somewhere.
        let present = uni
            .junk()
            .filter(|c| idx.phrase_count(&c.terms) > 0)
            .count();
        assert!(present > 0, "junk phrases should occur in the corpus");
    }

    #[test]
    fn deterministic() {
        let (lex, uni, _) = setup();
        let a = generate_corpus(
            11,
            &lex,
            &uni,
            &CorpusConfig {
                num_docs: 50,
                ..CorpusConfig::default()
            },
        );
        let b = generate_corpus(
            11,
            &lex,
            &uni,
            &CorpusConfig {
                num_docs: 50,
                ..CorpusConfig::default()
            },
        );
        assert_eq!(a.num_docs(), b.num_docs());
        assert_eq!(
            a.doc(ctxrank_index::DocId(17)).text,
            b.doc(ctxrank_index::DocId(17)).text
        );
    }

    #[test]
    fn document_lengths_in_range() {
        let (_, _, idx) = setup();
        for i in 0..idx.num_docs() {
            let doc = idx.doc(ctxrank_index::DocId(i as u32));
            // Mentions can push length slightly above max_tokens.
            assert!(doc.len() >= 60, "doc too short: {}", doc.len());
            assert!(doc.len() <= 180 + 60, "doc too long: {}", doc.len());
        }
    }
}
