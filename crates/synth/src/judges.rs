//! Simulated editorial judges.
//!
//! The Table VI study uses "a team of expert judges" rating each
//! highlighted entity on two 3-level scales plus a rare "Can't Tell"
//! (§V-B.1). Our judges read the ground-truth latents through Gaussian
//! noise and threshold them — the standard signal-detection model of a
//! human rater. Because both rankers are judged by the *same* panel, the
//! comparison between them is preserved even though absolute agreement
//! rates are synthetic.

use crate::rng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A 3-level editorial rating (either scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rating {
    /// "Very Interesting or Useful" / "Relevant".
    Very,
    /// "Somewhat Interesting or Useful" / "Somewhat Relevant".
    Somewhat,
    /// "Definitely Not Interesting" / "Not Relevant".
    Not,
    /// "Can't Tell".
    CantTell,
}

/// One entity's judgment: interestingness and relevance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Judgment {
    pub interestingness: Rating,
    pub relevance: Rating,
}

/// Judge-panel parameters.
#[derive(Debug, Clone)]
pub struct JudgeConfig {
    /// Noise added to the latent before thresholding.
    pub noise_sd: f64,
    /// Latent above this reads "Very".
    pub very_threshold: f64,
    /// Latent above this (but below `very_threshold`) reads "Somewhat".
    pub somewhat_threshold: f64,
    /// Probability of "Can't Tell" (the paper calls it rare).
    pub p_cant_tell: f64,
}

impl Default for JudgeConfig {
    fn default() -> Self {
        Self {
            noise_sd: 0.18,
            very_threshold: 0.45,
            somewhat_threshold: 0.15,
            p_cant_tell: 0.0015,
        }
    }
}

/// A deterministic panel of judges.
#[derive(Debug)]
pub struct JudgePanel {
    rng: StdRng,
    config: JudgeConfig,
}

impl JudgePanel {
    /// Create a panel with its own seed.
    pub fn new(seed: u64, config: JudgeConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x10d6e5),
            config,
        }
    }

    /// Rate one latent value on the 3-level scale.
    fn rate(&mut self, latent: f64) -> Rating {
        if rng::flip(&mut self.rng, self.config.p_cant_tell) {
            return Rating::CantTell;
        }
        let perceived = latent + rng::normal_with(&mut self.rng, 0.0, self.config.noise_sd);
        if perceived >= self.config.very_threshold {
            Rating::Very
        } else if perceived >= self.config.somewhat_threshold {
            Rating::Somewhat
        } else {
            Rating::Not
        }
    }

    /// Judge one entity given its ground-truth interestingness and
    /// relevance-to-document.
    pub fn judge(&mut self, interestingness: f64, relevance: f64) -> Judgment {
        Judgment {
            interestingness: self.rate(interestingness),
            relevance: self.rate(relevance),
        }
    }
}

/// Aggregated rating distribution for one scale (fractions sum to ~1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RatingDistribution {
    pub very: f64,
    pub somewhat: f64,
    pub not: f64,
    pub cant_tell: f64,
}

impl RatingDistribution {
    /// Tally a set of ratings into fractions.
    pub fn from_ratings(ratings: &[Rating]) -> Self {
        let n = ratings.len().max(1) as f64;
        let count = |target: Rating| ratings.iter().filter(|&&r| r == target).count() as f64 / n;
        Self {
            very: count(Rating::Very),
            somewhat: count(Rating::Somewhat),
            not: count(Rating::Not),
            cant_tell: count(Rating::CantTell),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_latents_rated_very() {
        let mut panel = JudgePanel::new(1, JudgeConfig::default());
        let ratings: Vec<Rating> = (0..500)
            .map(|_| panel.judge(0.95, 0.95).interestingness)
            .collect();
        let dist = RatingDistribution::from_ratings(&ratings);
        assert!(dist.very > 0.9, "very fraction {}", dist.very);
    }

    #[test]
    fn low_latents_rated_not() {
        let mut panel = JudgePanel::new(2, JudgeConfig::default());
        let ratings: Vec<Rating> = (0..500).map(|_| panel.judge(0.0, 0.0).relevance).collect();
        let dist = RatingDistribution::from_ratings(&ratings);
        assert!(dist.not > 0.7, "not fraction {}", dist.not);
    }

    #[test]
    fn mid_latents_spread() {
        let mut panel = JudgePanel::new(3, JudgeConfig::default());
        let ratings: Vec<Rating> = (0..1000)
            .map(|_| panel.judge(0.3, 0.3).interestingness)
            .collect();
        let dist = RatingDistribution::from_ratings(&ratings);
        assert!(dist.somewhat > 0.4, "somewhat fraction {}", dist.somewhat);
        assert!(dist.very > 0.02 && dist.not > 0.02);
    }

    #[test]
    fn cant_tell_is_rare() {
        let mut panel = JudgePanel::new(4, JudgeConfig::default());
        let ratings: Vec<Rating> = (0..2000)
            .map(|_| panel.judge(0.5, 0.5).interestingness)
            .collect();
        let dist = RatingDistribution::from_ratings(&ratings);
        assert!(dist.cant_tell < 0.02);
    }

    #[test]
    fn distribution_sums_to_one() {
        let ratings = vec![Rating::Very, Rating::Somewhat, Rating::Not, Rating::Very];
        let d = RatingDistribution::from_ratings(&ratings);
        assert!((d.very + d.somewhat + d.not + d.cant_tell - 1.0).abs() < 1e-12);
        assert_eq!(d.very, 0.5);
    }

    #[test]
    fn empty_ratings_all_zero() {
        let d = RatingDistribution::from_ratings(&[]);
        assert_eq!(d, RatingDistribution::default());
    }
}
