//! The fully assembled synthetic world.
//!
//! [`SynthWorld::generate`] runs every generator off one seed and returns
//! the complete substitute for the paper's data estate: lexicon, concept
//! universe, query log, web corpus (as a searchable index), encyclopedia
//! and news stories. The click simulation is *not* run here — clicks
//! depend on which entities the production system annotates, so the
//! evaluation harness calls [`crate::clicks::simulate_story`] itself.

use crate::concepts::{ConceptUniverse, UniverseConfig};
use crate::corpus::{generate_corpus, CorpusConfig};
use crate::encyclopedia::{Encyclopedia, EncyclopediaConfig};
use crate::lexicon::Lexicon;
use crate::news::{generate_news, NewsConfig, NewsStory};
use crate::queries::{generate_query_log, QueryConfig};
use ctxrank_index::Index;
use ctxrank_querylog::QueryLog;

/// Top-level configuration: sizes for every generator.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub seed: u64,
    /// General vocabulary size.
    pub general_words: usize,
    /// Number of topics.
    pub num_topics: usize,
    /// Distinctive words per topic.
    pub topic_words: usize,
    pub universe: UniverseConfig,
    pub queries: QueryConfig,
    pub corpus: CorpusConfig,
    pub encyclopedia: EncyclopediaConfig,
    pub news: NewsConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x1cde2009,
            general_words: 2500,
            num_topics: 40,
            topic_words: 120,
            universe: UniverseConfig::default(),
            queries: QueryConfig::default(),
            corpus: CorpusConfig::default(),
            encyclopedia: EncyclopediaConfig::default(),
            news: NewsConfig::default(),
        }
    }
}

impl WorldConfig {
    /// A scaled-down configuration for fast tests: a few topics, tens of
    /// concepts, hundreds of documents. Generates in well under a second.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            general_words: 500,
            num_topics: 6,
            topic_words: 60,
            universe: UniverseConfig {
                num_specific: 120,
                num_junk: 15,
                num_ambiguous: 4,
                ..UniverseConfig::default()
            },
            queries: QueryConfig {
                total_submissions: 60_000,
                ..QueryConfig::default()
            },
            corpus: CorpusConfig {
                num_docs: 600,
                ..CorpusConfig::default()
            },
            encyclopedia: EncyclopediaConfig::default(),
            news: NewsConfig {
                num_stories: 120,
                ..NewsConfig::default()
            },
        }
    }
}

/// Everything the experiments need, generated deterministically.
pub struct SynthWorld {
    pub config: WorldConfig,
    pub lexicon: Lexicon,
    pub universe: ConceptUniverse,
    pub query_log: QueryLog,
    pub corpus: Index,
    pub encyclopedia: Encyclopedia,
    pub news: Vec<NewsStory>,
}

impl SynthWorld {
    /// Generate the world from `config`.
    pub fn generate(config: WorldConfig) -> Self {
        let lexicon = Lexicon::generate(
            config.seed,
            config.general_words,
            config.num_topics,
            config.topic_words,
        );
        let universe = ConceptUniverse::generate(config.seed, &lexicon, &config.universe);
        let query_log = generate_query_log(config.seed, &lexicon, &universe, &config.queries);
        let corpus = generate_corpus(config.seed, &lexicon, &universe, &config.corpus);
        let encyclopedia = Encyclopedia::generate(config.seed, &universe, &config.encyclopedia);
        let news = generate_news(config.seed, &lexicon, &universe, &config.news);
        Self {
            config,
            lexicon,
            universe,
            query_log,
            corpus,
            encyclopedia,
            news,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_generates_consistently() {
        let w = SynthWorld::generate(WorldConfig::small(77));
        assert_eq!(w.universe.len(), 135);
        assert_eq!(w.corpus.num_docs(), 600);
        assert_eq!(w.news.len(), 120);
        assert!(w.query_log.total_freq() > 50_000);
        assert!(w.encyclopedia.num_articles() > 20);
    }

    #[test]
    fn same_seed_same_world() {
        let a = SynthWorld::generate(WorldConfig::small(5));
        let b = SynthWorld::generate(WorldConfig::small(5));
        assert_eq!(a.news[3].text, b.news[3].text);
        assert_eq!(a.query_log.num_distinct(), b.query_log.num_distinct());
    }

    #[test]
    fn different_seed_different_world() {
        let a = SynthWorld::generate(WorldConfig::small(5));
        let b = SynthWorld::generate(WorldConfig::small(6));
        assert_ne!(a.news[0].text, b.news[0].text);
    }
}
