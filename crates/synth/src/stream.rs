//! Streaming click/query log generation.
//!
//! The batch generators in [`crate::world`] materialize a whole world in
//! memory, which caps the click-log experiments at what fits in RAM. The
//! ingestion path in `ctxrank-querylog` is an *append-only* consumer,
//! though: it only ever sees one event at a time. [`EventStream`] feeds
//! it at arbitrary magnitude — a seeded iterator that synthesizes
//! [`Event`]s lazily, so "replay a log of ten million events" allocates
//! the surface vocabulary once and nothing else.
//!
//! The stream preserves the statistical shape the rest of the crate
//! models: surface popularity is Zipf-distributed, per-surface CTRs are
//! heavy-tailed (most surfaces are dull, a few are hot), story view
//! counts are log-normal, and clicks are drawn binomially from the views
//! — the paper's §I-B causal chain, reduced to the event-log fields the
//! segment store persists.

use crate::lexicon::Lexicon;
use crate::rng::{self, ZipfSampler};
use ctxrank_querylog::Event;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shape of a synthetic event stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Seed; the same seed always yields the same event sequence.
    pub seed: u64,
    /// Total events the stream emits (the magnitude knob — millions are
    /// fine, the stream is lazy).
    pub events: u64,
    /// Distinct surface vocabulary size (the only O(n) allocation).
    pub surfaces: usize,
    /// Zipf exponent on surface popularity.
    pub zipf_exponent: f64,
    /// Probability an event is a `Click` report (the rest are `Query`
    /// frequency records).
    pub click_fraction: f64,
    /// Log-normal location/scale of story view counts (matches
    /// [`crate::clicks::ClickConfig`] defaults).
    pub view_mu: f64,
    /// See `view_mu`.
    pub view_sigma: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            events: 100_000,
            surfaces: 5_000,
            zipf_exponent: 1.05,
            click_fraction: 0.5,
            view_mu: 4.6,
            view_sigma: 1.0,
        }
    }
}

impl StreamConfig {
    /// A stream of `events` events with every other knob at its default.
    pub fn of_magnitude(seed: u64, events: u64) -> Self {
        Self {
            seed,
            events,
            ..Self::default()
        }
    }
}

/// A lazy, seeded iterator of click-log [`Event`]s.
///
/// Memory use is `O(surfaces)` regardless of `events`: the vocabulary
/// and its latent CTRs are precomputed, every event is synthesized on
/// `next()`. The iterator reports an exact length so harnesses can
/// pre-size progress accounting without draining it.
#[derive(Debug, Clone)]
pub struct EventStream {
    surfaces: Vec<String>,
    /// Latent per-surface click-through rate (heavy-tailed).
    ctrs: Vec<f64>,
    popularity: ZipfSampler,
    rng: StdRng,
    click_fraction: f64,
    view_mu: f64,
    view_sigma: f64,
    remaining: u64,
    next_story: u64,
}

impl EventStream {
    /// Build the stream: allocates the vocabulary, nothing per-event.
    ///
    /// # Panics
    /// Panics when `config.surfaces == 0` (via [`ZipfSampler::new`]).
    pub fn new(config: &StreamConfig) -> Self {
        let lex = Lexicon::generate(config.seed ^ 0x57AE11, config.surfaces.max(1), 1, 1);
        let words = lex.general();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC11C_10D7);
        let mut surfaces = Vec::with_capacity(config.surfaces);
        let mut ctrs = Vec::with_capacity(config.surfaces);
        for i in 0..config.surfaces {
            let head = &words[i % words.len()];
            // A third of the vocabulary is multi-term, so phrase queries
            // and multi-word surfaces exercise the same code paths the
            // batch world does.
            let surface = if i % 3 == 0 {
                let tail = &words[(i.wrapping_mul(7) + 1) % words.len()];
                format!("{head} {tail}")
            } else {
                head.clone()
            };
            surfaces.push(surface);
            // Latent interestingness -> CTR, heavy-tailed like the click
            // model's interestingness distribution.
            ctrs.push(0.08 * rng::heavy_tail01(&mut rng, 2.0));
        }
        Self {
            surfaces,
            ctrs,
            popularity: ZipfSampler::new(config.surfaces.max(1), config.zipf_exponent),
            rng,
            click_fraction: config.click_fraction,
            view_mu: config.view_mu,
            view_sigma: config.view_sigma,
            remaining: config.events,
            next_story: 0,
        }
    }

    /// Events not yet emitted.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The surface vocabulary (rank order).
    pub fn surfaces(&self) -> &[String] {
        &self.surfaces
    }
}

impl Iterator for EventStream {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rank = self.popularity.sample(&mut self.rng);
        let surface = self.surfaces[rank].clone();
        if rng::flip(&mut self.rng, self.click_fraction) {
            let views = rng::log_normal(&mut self.rng, self.view_mu, self.view_sigma)
                .round()
                .clamp(1.0, 2_000_000.0) as u64;
            let clicks = rng::binomial(&mut self.rng, views, self.ctrs[rank]);
            let story = self.next_story;
            self.next_story += 1;
            Some(Event::Click {
                story,
                surface,
                views,
                clicks,
            })
        } else {
            let terms: Vec<String> = surface.split(' ').map(str::to_string).collect();
            let freq = rng::log_normal(&mut self.rng, 0.0, 1.5).ceil().max(1.0) as u64;
            Some(Event::Query { terms, freq })
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, usize::try_from(self.remaining).ok())
    }
}

impl ExactSizeIterator for EventStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_querylog::{SegmentConfig, SegmentStore};

    #[test]
    fn deterministic_in_the_seed() {
        let config = StreamConfig {
            events: 2_000,
            ..StreamConfig::default()
        };
        let a: Vec<Event> = EventStream::new(&config).collect();
        let b: Vec<Event> = EventStream::new(&config).collect();
        assert_eq!(a, b);
        let c: Vec<Event> = EventStream::new(&StreamConfig { seed: 2, ..config }).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn emits_exactly_the_configured_magnitude() {
        let config = StreamConfig::of_magnitude(3, 12_345);
        let stream = EventStream::new(&config);
        assert_eq!(stream.len(), 12_345);
        assert_eq!(stream.count(), 12_345);
    }

    #[test]
    fn mixes_clicks_and_queries() {
        let config = StreamConfig {
            events: 4_000,
            click_fraction: 0.5,
            ..StreamConfig::default()
        };
        let clicks = EventStream::new(&config)
            .filter(|e| matches!(e, Event::Click { .. }))
            .count();
        assert!(
            (1_400..=2_600).contains(&clicks),
            "clicks {clicks} of 4000 at p=0.5"
        );
    }

    #[test]
    fn click_events_are_physical() {
        let config = StreamConfig {
            events: 3_000,
            click_fraction: 1.0,
            ..StreamConfig::default()
        };
        let mut stories = Vec::new();
        for e in EventStream::new(&config) {
            let Event::Click {
                story,
                surface,
                views,
                clicks,
            } = e
            else {
                panic!("click_fraction=1.0 emits clicks only");
            };
            assert!(!surface.is_empty());
            assert!(views >= 1);
            assert!(clicks <= views, "clicks {clicks} > views {views}");
            stories.push(story);
        }
        assert!(stories.windows(2).all(|w| w[1] == w[0] + 1), "monotone ids");
    }

    #[test]
    fn popularity_is_skewed() {
        let config = StreamConfig {
            events: 20_000,
            surfaces: 100,
            ..StreamConfig::default()
        };
        let stream = EventStream::new(&config);
        let hot = stream.surfaces()[0].clone();
        let cold = stream.surfaces()[90].clone();
        let mut hot_n = 0usize;
        let mut cold_n = 0usize;
        for e in stream {
            let s = match &e {
                Event::Click { surface, .. } | Event::RankedClick { surface, .. } => {
                    surface.clone()
                }
                Event::Query { terms, .. } => terms.join(" "),
            };
            if s == hot {
                hot_n += 1;
            } else if s == cold {
                cold_n += 1;
            }
        }
        assert!(hot_n > cold_n, "hot {hot_n} vs cold {cold_n}");
    }

    #[test]
    fn streams_into_a_segment_store_without_materializing() {
        let mut store = SegmentStore::in_memory(SegmentConfig {
            segment_bytes: 16 * 1024,
        });
        let config = StreamConfig::of_magnitude(7, 5_000);
        for e in EventStream::new(&config) {
            store.append(&e).expect("in-memory append");
        }
        store.seal().expect("seal tail");
        assert_eq!(store.sealed_events(), 5_000);
        assert!(store.sealed().len() > 1, "magnitude spans segments");
        assert_eq!(store.replay().expect("replay").len(), 5_000);
    }
}
