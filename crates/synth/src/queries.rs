//! Synthetic search-engine query log.
//!
//! Stands in for "the most popular 20 million queries submitted to the
//! engine in the week of November 17th–23rd, 2007" (§V-A.1). The
//! generative story follows the paper's causal assumption: interesting
//! concepts get searched more, so query frequencies carry signal about
//! the latent interestingness that the Table I features try to recover.
//!
//! Query forms per concept draw:
//! * the concept alone (drives `freq_exact`),
//! * the concept plus refinement terms from its topic or the general pool
//!   (drives `freq_phrase_contained` and unit co-occurrence),
//! * for junk concepts, the phrase plus a *random* continuation — giving
//!   them the high unit scores the paper complains about (§IV-B) without
//!   any topical coherence.
//!
//! A share of pure-noise queries over general vocabulary rounds out the
//! log.

use crate::concepts::ConceptUniverse;
use crate::lexicon::Lexicon;
use crate::rng;
use crate::rng::ZipfSampler;
use ctxrank_querylog::QueryLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for query-log generation.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Total query submissions to simulate (sum of frequencies).
    pub total_submissions: u64,
    /// Fraction of submissions that are concept-driven (the rest are
    /// noise over general vocabulary).
    pub concept_fraction: f64,
    /// Given a concept-driven submission: probability it is the exact
    /// concept.
    pub p_exact: f64,
    /// Probability the query adds one refinement term (else two).
    pub p_one_extra: f64,
    /// Zipf exponent for the general-vocabulary noise.
    pub noise_zipf: f64,
    /// How strongly popularity follows interestingness: submissions per
    /// concept ∝ `(0.02 + interestingness)^popularity_power`.
    pub popularity_power: f64,
    /// Log-normal scale of per-concept popularity noise: query fame is a
    /// noisy proxy of click propensity (a concept can be heavily searched
    /// yet rarely clicked in context, and vice versa).
    pub popularity_noise: f64,
    /// Probability that a refinement term is drawn from the concept's
    /// topic vocabulary (the rest are general words — real refinements
    /// mix intents).
    pub p_topical_refinement: f64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            total_submissions: 400_000,
            concept_fraction: 0.75,
            p_exact: 0.45,
            p_one_extra: 0.7,
            noise_zipf: 1.05,
            popularity_power: 2.0,
            popularity_noise: 0.6,
            p_topical_refinement: 0.3,
        }
    }
}

/// Generate the query log.
pub fn generate_query_log(
    seed: u64,
    lexicon: &Lexicon,
    universe: &ConceptUniverse,
    config: &QueryConfig,
) -> QueryLog {
    let mut r = StdRng::seed_from_u64(seed ^ 0x9e81);
    let mut log = QueryLog::new();

    // Split the budget between concepts (by popularity weight) and noise.
    let concept_budget = (config.total_submissions as f64 * config.concept_fraction) as u64;
    let noise_budget = config.total_submissions - concept_budget;

    let weights: Vec<f64> = universe
        .all()
        .iter()
        .map(|c| {
            (0.02 + c.interestingness).powf(config.popularity_power)
                * rng::log_normal(&mut r, 0.0, config.popularity_noise)
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let noise_zipf = ZipfSampler::new(lexicon.general().len(), config.noise_zipf);

    for (c, w) in universe.all().iter().zip(&weights) {
        let submissions = ((w / total_weight) * concept_budget as f64).round() as u64;
        if submissions == 0 {
            continue;
        }
        // Spread the concept's submissions across a handful of distinct
        // query forms, weighted toward the exact form.
        let exact = (submissions as f64 * config.p_exact).round() as u64;
        if exact > 0 {
            log.add_terms(c.terms.clone(), exact);
        }
        let mut remaining = submissions - exact;
        // Derive refinement pools once per concept.
        while remaining > 0 {
            let chunk = (remaining / 3).max(1).min(remaining);
            let n_extra = if rng::flip(&mut r, config.p_one_extra) {
                1
            } else {
                2
            };
            let mut terms = c.terms.clone();
            for _ in 0..n_extra {
                let extra = match c.topic {
                    // Specific concepts are refined with topical terms
                    // (what a real user adds: "katrina levees").
                    Some(t) if rng::flip(&mut r, config.p_topical_refinement) => {
                        // Refinements stay near the concept's sub-topic.
                        lexicon
                            .sample_topic_near(&mut r, t, c.center, 0.07)
                            .to_string()
                    }
                    // Junk concepts are continued with arbitrary general
                    // terms ("my favorite <anything>").
                    _ => lexicon.sample_general(&mut r, &noise_zipf).to_string(),
                };
                if rng::flip(&mut r, 0.5) {
                    terms.push(extra);
                } else {
                    terms.insert(0, extra);
                }
            }
            log.add_terms(terms, chunk);
            remaining -= chunk;
        }
    }

    // Pure noise queries.
    let mut spent = 0u64;
    while spent < noise_budget {
        let n_terms = r.random_range(1..=3);
        let terms: Vec<String> = (0..n_terms)
            .map(|_| lexicon.sample_general(&mut r, &noise_zipf).to_string())
            .collect();
        let freq = rng::log_normal(&mut r, 1.0, 1.0).round().max(1.0) as u64;
        let freq = freq.min(noise_budget - spent);
        log.add_terms(terms, freq);
        spent += freq;
    }

    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::UniverseConfig;

    fn setup() -> (Lexicon, ConceptUniverse, QueryLog) {
        let lex = Lexicon::generate(3, 400, 4, 60);
        let uni = ConceptUniverse::generate(
            3,
            &lex,
            &UniverseConfig {
                num_specific: 60,
                num_junk: 8,
                ..UniverseConfig::default()
            },
        );
        let log = generate_query_log(
            3,
            &lex,
            &uni,
            &QueryConfig {
                total_submissions: 50_000,
                ..QueryConfig::default()
            },
        );
        (lex, uni, log)
    }

    #[test]
    fn total_volume_close_to_budget() {
        let (_, _, log) = setup();
        let total = log.total_freq();
        assert!(
            (45_000..=55_000).contains(&total),
            "total submissions {total}"
        );
    }

    #[test]
    fn popular_concepts_get_more_exact_queries() {
        let (_, uni, log) = setup();
        let mut pairs: Vec<(f64, u64)> = uni
            .all()
            .iter()
            .filter(|c| !c.is_junk())
            .map(|c| (c.interestingness, log.freq_exact(&c.terms)))
            .collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let top_mean: f64 = pairs[..10].iter().map(|p| p.1 as f64).sum::<f64>() / 10.0;
        let bottom_mean: f64 = pairs[pairs.len() - 10..]
            .iter()
            .map(|p| p.1 as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            top_mean > bottom_mean * 2.0,
            "interesting concepts should dominate exact queries: {top_mean} vs {bottom_mean}"
        );
    }

    #[test]
    fn phrase_containment_at_least_exact() {
        let (_, uni, log) = setup();
        for c in uni.all() {
            assert!(log.freq_phrase_contained(&c.terms) >= log.freq_exact(&c.terms));
        }
    }

    #[test]
    fn junk_concepts_present_in_log() {
        let (_, uni, log) = setup();
        let searched = uni
            .junk()
            .filter(|c| log.freq_phrase_contained(&c.terms) > 0)
            .count();
        assert!(
            searched >= uni.junk().count() / 2,
            "junk phrases must appear in the log so they get unit scores"
        );
    }

    #[test]
    fn deterministic() {
        let (lex, uni, _) = setup();
        let a = generate_query_log(7, &lex, &uni, &QueryConfig::default());
        let b = generate_query_log(7, &lex, &uni, &QueryConfig::default());
        assert_eq!(a.total_freq(), b.total_freq());
        assert_eq!(a.num_distinct(), b.num_distinct());
    }
}
