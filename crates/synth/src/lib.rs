//! The synthetic world standing in for Yahoo!'s proprietary data.
//!
//! The paper's pipeline is built on resources we cannot obtain: one week
//! of Yahoo! search query logs, the Yahoo! Search web corpus, Yahoo! News
//! stories with Contextual Shortcuts click tracking, Wikipedia dumps and a
//! team of expert editorial judges. Following the substitution rule laid
//! out in `DESIGN.md` §1, this crate generates deterministic synthetic
//! equivalents that preserve the statistical structure those resources
//! contribute:
//!
//! * a **latent concept universe** ([`concepts`]) where every concept has
//!   a hidden *interestingness* and a home *topic* (or none, for the
//!   general/low-quality phrases of §IV-B),
//! * a **query log** ([`queries`]) whose frequencies are driven by
//!   interestingness — so `freq_exact`, `freq_phrase_contained` and unit
//!   mutual information carry real signal,
//! * a **web corpus** ([`corpus`]) where specific concepts co-occur with
//!   their topic's distinctive vocabulary — so snippet mining clusters for
//!   specific concepts and stays diffuse for junk ones (Table II),
//! * an **encyclopedia** ([`encyclopedia`]) standing in for Wikipedia,
//! * **news stories** ([`news`]) embedding on-topic and off-topic entity
//!   mentions,
//! * a **click model** ([`clicks`]) that turns latent
//!   interestingness × relevance into views/clicks/CTR with position bias
//!   and binomial sampling — the paper's causal assumption (§I-B),
//! * **position-bias models** ([`bias`]) — PBM/UBM examination curves
//!   behind one trait, plus a rank-annotated biased log generator
//!   feeding the counterfactual debiasing pipeline,
//! * simulated **editorial judges** ([`judges`]) for the Table VI study,
//! * a lazy **event-stream generator** ([`stream`]) that synthesizes
//!   click/query logs of arbitrary magnitude one event at a time for the
//!   append-only ingestion path — nothing is materialized.
//!
//! Everything is generated from a single `u64` seed; the same seed always
//! produces the same world.

pub mod bias;
pub mod clicks;
pub mod concepts;
pub mod corpus;
pub mod encyclopedia;
pub mod judges;
pub mod lexicon;
pub mod news;
pub mod queries;
pub mod rng;
pub mod stream;
pub mod world;

pub use bias::{
    generate_ranked_log, simulate_story_biased, LinearBias, NoBias, Pbm, PositionBiasModel,
    RankedLog, RankedLogConfig, RankedStory, Ubm,
};
pub use clicks::{ClickConfig, ClickRecord, StoryClicks};
pub use concepts::{ConceptId, ConceptSpec, ConceptUniverse, HighLevelType, Quality};
pub use corpus::CorpusConfig;
pub use encyclopedia::Encyclopedia;
pub use judges::{JudgeConfig, JudgePanel};
pub use lexicon::Lexicon;
pub use news::{NewsConfig, NewsStory};
pub use queries::QueryConfig;
pub use rng::{ZipfQueryMix, ZipfSampler};
pub use stream::{EventStream, StreamConfig};
pub use world::{SynthWorld, WorldConfig};
