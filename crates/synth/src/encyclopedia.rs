//! Synthetic encyclopedia — the Wikipedia stand-in.
//!
//! Feature 9 of Table I is `wiki_word_count`: "number of words in the
//! Wikipedia article returned for the concept, and 0 is used if no
//! article exists" (§IV-A, citing Hu et al. \[14\] for article length as a
//! quality signal). The synthetic encyclopedia preserves the property
//! that matters: real, interesting concepts tend to have substantial
//! articles; junk phrases have none.

use crate::concepts::{ConceptId, ConceptUniverse};
use crate::rng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Article lengths per concept.
#[derive(Debug, Clone, Default)]
pub struct Encyclopedia {
    word_counts: HashMap<ConceptId, u32>,
}

/// Configuration for encyclopedia generation.
#[derive(Debug, Clone)]
pub struct EncyclopediaConfig {
    /// Base probability a specific concept has an article.
    pub base_article_prob: f64,
    /// Additional probability proportional to interestingness.
    pub interest_article_boost: f64,
    /// Log-normal location for article length.
    pub length_mu: f64,
    /// Log-normal scale for article length.
    pub length_sigma: f64,
}

impl Default for EncyclopediaConfig {
    fn default() -> Self {
        Self {
            base_article_prob: 0.35,
            interest_article_boost: 0.6,
            length_mu: 6.0, // median ~ 400 words
            length_sigma: 0.9,
        }
    }
}

impl Encyclopedia {
    /// Generate articles for `universe`.
    pub fn generate(seed: u64, universe: &ConceptUniverse, config: &EncyclopediaConfig) -> Self {
        let mut r = StdRng::seed_from_u64(seed ^ 0x71c1a);
        let mut word_counts = HashMap::new();
        for c in universe.all() {
            if c.is_junk() {
                // Nobody writes encyclopedia articles about "my favorite".
                continue;
            }
            let p = config.base_article_prob + config.interest_article_boost * c.interestingness;
            if rng::flip(&mut r, p.min(0.98)) {
                // Interesting concepts get longer articles on average.
                let boost = 1.0 + 2.0 * c.interestingness;
                let len = rng::log_normal(&mut r, config.length_mu, config.length_sigma) * boost;
                word_counts.insert(c.id, len.round().clamp(30.0, 200_000.0) as u32);
            }
        }
        Self { word_counts }
    }

    /// `wiki_word_count` for a concept (0 when no article exists).
    pub fn word_count(&self, id: ConceptId) -> u32 {
        self.word_counts.get(&id).copied().unwrap_or(0)
    }

    /// Does the concept have an article?
    pub fn has_article(&self, id: ConceptId) -> bool {
        self.word_counts.contains_key(&id)
    }

    /// Number of articles.
    pub fn num_articles(&self) -> usize {
        self.word_counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::UniverseConfig;
    use crate::lexicon::Lexicon;

    fn setup() -> (ConceptUniverse, Encyclopedia) {
        let lex = Lexicon::generate(6, 300, 4, 60);
        let uni = ConceptUniverse::generate(
            6,
            &lex,
            &UniverseConfig {
                num_specific: 200,
                num_junk: 20,
                ..UniverseConfig::default()
            },
        );
        let enc = Encyclopedia::generate(6, &uni, &EncyclopediaConfig::default());
        (uni, enc)
    }

    #[test]
    fn junk_has_no_articles() {
        let (uni, enc) = setup();
        for c in uni.junk() {
            assert_eq!(enc.word_count(c.id), 0);
            assert!(!enc.has_article(c.id));
        }
    }

    #[test]
    fn some_articles_exist() {
        let (_, enc) = setup();
        assert!(enc.num_articles() > 50);
    }

    #[test]
    fn interesting_concepts_more_likely_covered() {
        let (uni, enc) = setup();
        let hot: Vec<_> = uni
            .all()
            .iter()
            .filter(|c| !c.is_junk() && c.interestingness > 0.5)
            .collect();
        let cold: Vec<_> = uni
            .all()
            .iter()
            .filter(|c| !c.is_junk() && c.interestingness < 0.05)
            .collect();
        if hot.is_empty() || cold.is_empty() {
            return; // degenerate draw; other seeds cover this
        }
        let hot_rate =
            hot.iter().filter(|c| enc.has_article(c.id)).count() as f64 / hot.len() as f64;
        let cold_rate =
            cold.iter().filter(|c| enc.has_article(c.id)).count() as f64 / cold.len() as f64;
        assert!(
            hot_rate >= cold_rate,
            "hot {hot_rate} should be covered at least as often as cold {cold_rate}"
        );
    }

    #[test]
    fn word_counts_reasonable() {
        let (uni, enc) = setup();
        for c in uni.all() {
            let wc = enc.word_count(c.id);
            if wc > 0 {
                assert!((30..=200_000).contains(&wc));
            }
        }
    }

    #[test]
    fn deterministic() {
        let (uni, _) = setup();
        let a = Encyclopedia::generate(99, &uni, &EncyclopediaConfig::default());
        let b = Encyclopedia::generate(99, &uni, &EncyclopediaConfig::default());
        for c in uni.all() {
            assert_eq!(a.word_count(c.id), b.word_count(c.id));
        }
    }
}
