//! The latent concept universe.
//!
//! Every detectable thing in the world — named entities from the
//! editorial dictionaries and abstract concepts from query logs (§II-A) —
//! is generated here with its hidden ground truth: a home *topic* (the
//! context it is relevant in), a latent *interestingness* (how likely a
//! broad user base is to click it, §IV-A), and a *quality* class
//! distinguishing specific concepts from the "very general or low quality
//! concepts (such as 'my favorite', 'the other', ...)" of §IV-B.

use crate::lexicon::Lexicon;
use crate::rng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a concept within one universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConceptId(pub u32);

/// The taxonomy's major types (§II-A: "a handful major types, such as
/// people, organizations, places, events, animals, products").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HighLevelType {
    Person,
    Place,
    Organization,
    Event,
    Animal,
    Product,
}

impl HighLevelType {
    /// All major types.
    pub const ALL: [HighLevelType; 6] = [
        HighLevelType::Person,
        HighLevelType::Place,
        HighLevelType::Organization,
        HighLevelType::Event,
        HighLevelType::Animal,
        HighLevelType::Product,
    ];

    /// Sub-types under each major type ("each of these major types
    /// contains a large number of subtypes, e.g. actor, musician,
    /// scientist").
    pub fn subtypes(self) -> &'static [&'static str] {
        match self {
            HighLevelType::Person => &[
                "actor",
                "musician",
                "scientist",
                "politician",
                "athlete",
                "author",
                "director",
            ],
            HighLevelType::Place => &["city", "country", "landmark", "region", "street"],
            HighLevelType::Organization => &["company", "agency", "team", "university", "party"],
            HighLevelType::Event => &["election", "disaster", "festival", "war", "tournament"],
            HighLevelType::Animal => &["mammal", "bird", "reptile", "fish"],
            HighLevelType::Product => &["phone", "car", "game", "movie", "gadget"],
        }
    }

    /// Stable small integer used by the feature encoder.
    pub fn code(self) -> u8 {
        match self {
            HighLevelType::Person => 1,
            HighLevelType::Place => 2,
            HighLevelType::Organization => 3,
            HighLevelType::Event => 4,
            HighLevelType::Animal => 5,
            HighLevelType::Product => 6,
        }
    }
}

/// Quality class of a concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quality {
    /// A real, specific concept with a home topic.
    Specific,
    /// A general/low-quality phrase ("my favorite"): high unit score, no
    /// home topic, should be suppressed by the relevance safety net.
    Junk,
}

/// Ground truth for one concept.
#[derive(Debug, Clone)]
pub struct ConceptSpec {
    pub id: ConceptId,
    /// Surface terms (lower-case lexicon words), 1–3 of them.
    pub terms: Vec<String>,
    /// Home topic index, or `None` for junk concepts.
    pub topic: Option<usize>,
    /// Latent interestingness in `[0, 1]` (heavy-tailed).
    pub interestingness: f64,
    /// Sub-topic center in `[0, 1)`: where within the home topic's
    /// vocabulary spectrum the concept lives. Relevance to a document is
    /// graded by center distance (see [`crate::news`]).
    pub center: f64,
    /// Taxonomy entry when the concept is a dictionary named entity;
    /// `None` for query-log concepts.
    pub entity_type: Option<(HighLevelType, &'static str)>,
    /// Geo coordinates for places (§II-A: "the meta-data contained
    /// geo-location information").
    pub geo: Option<(f64, f64)>,
    pub quality: Quality,
}

impl ConceptSpec {
    /// The concept's surface form, terms joined by spaces.
    pub fn surface(&self) -> String {
        self.terms.join(" ")
    }

    /// Is this a junk (general/low-quality) concept?
    pub fn is_junk(&self) -> bool {
        self.quality == Quality::Junk
    }
}

/// Configuration for universe generation.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Number of specific concepts.
    pub num_specific: usize,
    /// Number of junk concepts.
    pub num_junk: usize,
    /// Fraction of specific concepts that are dictionary named entities
    /// (the rest are query-log concepts).
    pub named_entity_fraction: f64,
    /// Shape of the interestingness distribution (`u^shape`); larger
    /// means fewer interesting concepts.
    pub interest_shape: f64,
    /// Number of ambiguous surface forms to create (pairs of concepts
    /// sharing one surface term, like "jaguar").
    pub num_ambiguous: usize,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        Self {
            num_specific: 1200,
            num_junk: 120,
            named_entity_fraction: 0.5,
            interest_shape: 2.5,
            num_ambiguous: 10,
        }
    }
}

/// The full set of concepts with their ground truth.
#[derive(Debug, Clone)]
pub struct ConceptUniverse {
    concepts: Vec<ConceptSpec>,
}

impl ConceptUniverse {
    /// Generate a universe over `lexicon` with `num_topics` topics.
    pub fn generate(seed: u64, lexicon: &Lexicon, config: &UniverseConfig) -> Self {
        let mut r = StdRng::seed_from_u64(seed ^ 0xc0ce97);
        let num_topics = lexicon.num_topics();
        assert!(num_topics > 0, "universe needs at least one topic");
        let mut concepts = Vec::with_capacity(config.num_specific + config.num_junk);
        let mut used_surfaces = std::collections::HashSet::new();

        // Specific concepts: surfaces drawn from the home topic's *name*
        // pool — names appear in text only where the generator embeds a
        // mention, exactly like real entity names.
        for i in 0..config.num_specific {
            let topic = i % num_topics;
            let center = r.random::<f64>();
            let mut n_terms = match r.random_range(0..10) {
                0..=3 => 1,
                4..=7 => 2,
                _ => 3,
            };
            // Rejection-sample a fresh surface; if a length is exhausted
            // (small vocabularies), escalate to longer phrases, whose
            // combinatorial space is effectively unbounded.
            let mut attempts = 0;
            let names = lexicon.names(topic);
            let terms = loop {
                let t: Vec<String> = (0..n_terms)
                    .map(|_| names[r.random_range(0..names.len())].clone())
                    .collect();
                let key = t.join(" ");
                if t.iter().collect::<std::collections::HashSet<_>>().len() == t.len()
                    && used_surfaces.insert(key)
                {
                    break t;
                }
                attempts += 1;
                if attempts % 40 == 0 && n_terms < 4 {
                    n_terms += 1;
                }
            };
            let interestingness = rng::heavy_tail01(&mut r, config.interest_shape);
            let is_entity = r.random::<f64>() < config.named_entity_fraction;
            let entity_type = if is_entity {
                let hlt = *rng::choose(&mut r, &HighLevelType::ALL);
                let sub = *rng::choose(&mut r, hlt.subtypes());
                Some((hlt, sub))
            } else {
                None
            };
            let geo = match entity_type {
                Some((HighLevelType::Place, _)) => {
                    Some((r.random_range(-90.0..90.0), r.random_range(-180.0..180.0)))
                }
                _ => None,
            };
            concepts.push(ConceptSpec {
                id: ConceptId(concepts.len() as u32),
                terms,
                topic: Some(topic),
                interestingness,
                center,
                entity_type,
                geo,
                quality: Quality::Specific,
            });
        }

        // Junk concepts: 2-term phrases of *general* vocabulary. They are
        // typed frequently in queries (the generator gives them traffic)
        // but have no home topic, so their corpus contexts never cluster.
        for _ in 0..config.num_junk {
            let terms = loop {
                let t: Vec<String> = (0..2)
                    .map(|_| {
                        rng::choose(
                            &mut r,
                            &lexicon.general()[..lexicon.general().len().min(200)],
                        )
                        .clone()
                    })
                    .collect();
                let key = t.join(" ");
                if t[0] != t[1] && used_surfaces.insert(key) {
                    break t;
                }
            };
            concepts.push(ConceptSpec {
                id: ConceptId(concepts.len() as u32),
                terms,
                topic: None,
                // Junk phrases are typed a lot; give them mid-range
                // apparent popularity so interestingness features alone
                // cannot filter them (the paper's motivation for the
                // relevance safety net).
                interestingness: 0.15 + 0.35 * r.random::<f64>(),
                center: 0.0,
                entity_type: None,
                geo: None,
                quality: Quality::Junk,
            });
        }

        // Ambiguity: pick pairs of single-term specific concepts in
        // different topics and give them the same surface term.
        let single_idx: Vec<usize> = concepts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.quality == Quality::Specific && c.terms.len() == 1)
            .map(|(i, _)| i)
            .collect();
        let mut made = 0;
        let mut tries = 0;
        while made < config.num_ambiguous && tries < 1000 && single_idx.len() >= 2 {
            tries += 1;
            let a = *rng::choose(&mut r, &single_idx);
            let b = *rng::choose(&mut r, &single_idx);
            if a == b || concepts[a].topic == concepts[b].topic {
                continue;
            }
            let term = concepts[a].terms[0].clone();
            concepts[b].terms = vec![term];
            made += 1;
        }

        Self { concepts }
    }

    /// All concepts.
    pub fn all(&self) -> &[ConceptSpec] {
        &self.concepts
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Look up by id.
    pub fn get(&self, id: ConceptId) -> &ConceptSpec {
        &self.concepts[id.0 as usize]
    }

    /// Concepts whose home topic is `t`.
    pub fn of_topic(&self, t: usize) -> impl Iterator<Item = &ConceptSpec> {
        self.concepts.iter().filter(move |c| c.topic == Some(t))
    }

    /// All junk concepts.
    pub fn junk(&self) -> impl Iterator<Item = &ConceptSpec> {
        self.concepts.iter().filter(|c| c.is_junk())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_universe() -> (Lexicon, ConceptUniverse) {
        let lex = Lexicon::generate(5, 300, 4, 60);
        let cfg = UniverseConfig {
            num_specific: 80,
            num_junk: 10,
            num_ambiguous: 3,
            ..UniverseConfig::default()
        };
        let uni = ConceptUniverse::generate(5, &lex, &cfg);
        (lex, uni)
    }

    #[test]
    fn counts_match_config() {
        let (_, uni) = small_universe();
        assert_eq!(uni.len(), 90);
        assert_eq!(uni.junk().count(), 10);
    }

    #[test]
    fn deterministic() {
        let lex = Lexicon::generate(5, 300, 4, 60);
        let cfg = UniverseConfig::default();
        let a = ConceptUniverse::generate(9, &lex, &cfg);
        let b = ConceptUniverse::generate(9, &lex, &cfg);
        assert_eq!(a.get(ConceptId(0)).terms, b.get(ConceptId(0)).terms);
        assert_eq!(
            a.get(ConceptId(42)).interestingness,
            b.get(ConceptId(42)).interestingness
        );
    }

    #[test]
    fn specific_concepts_use_topic_vocabulary() {
        let (lex, uni) = small_universe();
        for c in uni.all().iter().filter(|c| !c.is_junk()) {
            let t = c.topic.expect("specific concepts have topics");
            for term in &c.terms {
                // Ambiguous concepts borrow a surface from another topic,
                // so the invariant is: a name-pool word, never a general
                // or context-vocabulary word.
                let named = (0..lex.num_topics()).any(|k| lex.names(k).contains(term));
                assert!(named, "term {term} (topic {t}) is not a name word");
                assert!(!lex.general().contains(term));
            }
        }
    }

    #[test]
    fn junk_has_no_topic_and_general_terms() {
        let (lex, uni) = small_universe();
        for c in uni.junk() {
            assert!(c.topic.is_none());
            for term in &c.terms {
                assert!(lex.general().contains(term));
            }
        }
    }

    #[test]
    fn interestingness_in_unit_interval() {
        let (_, uni) = small_universe();
        for c in uni.all() {
            assert!((0.0..=1.0).contains(&c.interestingness));
        }
    }

    #[test]
    fn places_have_geo() {
        let lex = Lexicon::generate(5, 300, 4, 120);
        let cfg = UniverseConfig {
            num_specific: 600,
            named_entity_fraction: 1.0,
            ..UniverseConfig::default()
        };
        let uni = ConceptUniverse::generate(5, &lex, &cfg);
        let mut saw_place = false;
        for c in uni.all() {
            if let Some((HighLevelType::Place, _)) = c.entity_type {
                saw_place = true;
                let (lat, lon) = c.geo.expect("places carry geo metadata");
                assert!((-90.0..=90.0).contains(&lat));
                assert!((-180.0..=180.0).contains(&lon));
            } else if c.quality == Quality::Specific {
                assert!(c.geo.is_none());
            }
        }
        assert!(saw_place);
    }

    #[test]
    fn ambiguous_surfaces_exist() {
        let (_, uni) = small_universe();
        let mut counts = std::collections::HashMap::new();
        for c in uni.all().iter().filter(|c| c.terms.len() == 1) {
            *counts.entry(c.terms[0].clone()).or_insert(0) += 1;
        }
        assert!(
            counts.values().any(|&n| n >= 2),
            "expected at least one ambiguous surface form"
        );
    }

    #[test]
    fn subtypes_nonempty_and_codes_distinct() {
        let mut codes = std::collections::HashSet::new();
        for hlt in HighLevelType::ALL {
            assert!(!hlt.subtypes().is_empty());
            assert!(codes.insert(hlt.code()));
        }
    }
}
