//! Synthetic news stories.
//!
//! Stands in for the Yahoo! News stories that Contextual Shortcuts
//! annotates (§III). A story has one primary topic (and sometimes a
//! secondary one); its body mixes the topic vocabulary with general
//! words, and embeds entity mentions:
//!
//! * mostly concepts whose home topic matches the story (relevant — the
//!   "President Bush / Sen. Clinton / Obama / Cuba" of the §I example),
//! * a couple of off-topic concepts (the irrelevant "Texas"),
//! * occasionally a junk phrase.
//!
//! The ground-truth relevance of any concept to a story is a pure
//! function of the topic structure ([`ground_truth_relevance`]), so
//! incidental detections made later by the Shortcuts pipeline get
//! consistent labels too.

use crate::concepts::{ConceptId, ConceptSpec, ConceptUniverse};
use crate::lexicon::{center_distance, Lexicon};
use crate::rng;
use crate::rng::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ground-truth mention embedded in a story.
#[derive(Debug, Clone, PartialEq)]
pub struct Mention {
    pub concept: ConceptId,
    /// Ground-truth relevance of the concept to this story, in `[0, 1]`.
    pub relevance: f64,
}

/// One generated news story.
#[derive(Debug, Clone)]
pub struct NewsStory {
    pub id: usize,
    /// Body text (plain, sentence-punctuated).
    pub text: String,
    /// Primary topic.
    pub topic: usize,
    /// Sub-topic center of the story within the primary topic.
    pub center: f64,
    /// Optional secondary topic with its own center.
    pub secondary_topic: Option<(usize, f64)>,
    /// Concepts deliberately embedded, with ground-truth relevance.
    pub mentions: Vec<Mention>,
}

/// Configuration for news generation.
#[derive(Debug, Clone)]
pub struct NewsConfig {
    /// Number of stories.
    pub num_stories: usize,
    /// Sentence count range per story.
    pub min_sentences: usize,
    pub max_sentences: usize,
    /// Words per sentence range.
    pub min_words: usize,
    pub max_words: usize,
    /// On-topic mentions per story range.
    pub min_on_topic: usize,
    pub max_on_topic: usize,
    /// Probability of a secondary topic.
    pub p_secondary: f64,
    /// Off-topic mentions per story range.
    pub max_off_topic: usize,
    /// Probability of one junk mention.
    pub p_junk: f64,
    /// Zipf exponent for general words.
    pub general_zipf: f64,
    /// Strength of relevance-driven mention repetition: a mention is
    /// embedded `1 + floor(repetition x relevance + 0.8 u)` times.
    pub repetition: f64,
}

impl Default for NewsConfig {
    fn default() -> Self {
        Self {
            num_stories: 1000,
            min_sentences: 18,
            max_sentences: 45,
            min_words: 8,
            max_words: 16,
            min_on_topic: 4,
            max_on_topic: 8,
            p_secondary: 0.35,
            max_off_topic: 3,
            p_junk: 0.5,
            general_zipf: 1.05,
            repetition: 4.0,
        }
    }
}

/// Width of the sub-topic relevance kernel.
pub const RELEVANCE_KERNEL_SIGMA: f64 = 0.12;
/// Relevance floor for off-topic and junk concepts ("Texas" still has
/// *some* chance of a curiosity click).
pub const RELEVANCE_FLOOR: f64 = 0.05;

/// Graded relevance kernel over a wrapped center distance.
pub fn relevance_kernel(distance: f64) -> f64 {
    (-(distance / RELEVANCE_KERNEL_SIGMA).powi(2)).exp()
}

/// Ground-truth relevance of `concept` to a story on `topic` with
/// sub-topic `center` (and optionally a secondary topic/center pair).
///
/// A same-topic concept's relevance decays with the distance between its
/// sub-topic center and the story's — the §I substitution argument made
/// quantitative: a concept central to what the story is about cannot be
/// swapped out, a peripheral one can. Secondary-topic concepts are
/// discounted (0.55x), everything else sits at the floor.
pub fn ground_truth_relevance(
    concept: &ConceptSpec,
    topic: usize,
    center: f64,
    secondary_topic: Option<(usize, f64)>,
) -> f64 {
    let raw = match concept.topic {
        Some(t) if t == topic => relevance_kernel(center_distance(concept.center, center)),
        Some(t) => match secondary_topic {
            Some((st, sc)) if st == t => {
                0.55 * relevance_kernel(center_distance(concept.center, sc))
            }
            _ => 0.0,
        },
        None => 0.0,
    };
    raw.max(RELEVANCE_FLOOR)
}

/// Generate the news stories.
pub fn generate_news(
    seed: u64,
    lexicon: &Lexicon,
    universe: &ConceptUniverse,
    config: &NewsConfig,
) -> Vec<NewsStory> {
    let mut r = StdRng::seed_from_u64(seed ^ 0x4e35);
    let zipf = ZipfSampler::new(lexicon.general().len(), config.general_zipf);
    let num_topics = lexicon.num_topics();

    // Concept pools per topic with popularity weights and centers.
    let mut by_topic: Vec<Vec<(ConceptId, f64, f64)>> = vec![Vec::new(); num_topics];
    for c in universe.all() {
        if let Some(t) = c.topic {
            let weight = (0.02 + c.interestingness).powf(1.2);
            by_topic[t].push((c.id, weight, c.center));
        }
    }
    let junk_ids: Vec<ConceptId> = universe.junk().map(|c| c.id).collect();

    let mut stories = Vec::with_capacity(config.num_stories);
    for id in 0..config.num_stories {
        let topic = id % num_topics;
        let center: f64 = r.random();
        let secondary_topic = if rng::flip(&mut r, config.p_secondary) {
            Some((
                (topic + 1 + r.random_range(0..num_topics - 1)) % num_topics,
                r.random::<f64>(),
            ))
        } else {
            None
        };

        // Choose the mentions first.
        let mut mentions: Vec<Mention> = Vec::new();
        let mut mention_ids = std::collections::HashSet::new();
        let n_on = r.random_range(config.min_on_topic..=config.max_on_topic);
        for k in 0..n_on {
            // Split on-topic mentions between primary and secondary.
            let (t, t_center) = match secondary_topic {
                Some((s, sc)) if rng::flip(&mut r, 0.3) => (s, sc),
                _ => (topic, center),
            };
            if by_topic[t].is_empty() {
                continue;
            }
            // Mix central mentions (close to what the story is about)
            // with peripheral same-topic ones, so within-story relevance
            // is graded rather than uniform.
            let cid = if k % 2 == 0 {
                sample_proximate(&mut r, &by_topic[t], t_center, 0.10)
            } else {
                sample_weighted(&mut r, &by_topic[t])
            };
            if mention_ids.insert(cid) {
                mentions.push(Mention {
                    concept: cid,
                    relevance: ground_truth_relevance(
                        universe.get(cid),
                        topic,
                        center,
                        secondary_topic,
                    ),
                });
            }
        }
        // Off-topic strays (the "Texas" case).
        let n_off = r.random_range(0..=config.max_off_topic);
        for _ in 0..n_off {
            let t = (topic + 1 + r.random_range(0..num_topics - 1)) % num_topics;
            if secondary_topic.is_some_and(|(st, _)| st == t) || by_topic[t].is_empty() {
                continue;
            }
            let cid = sample_weighted(&mut r, &by_topic[t]);
            if mention_ids.insert(cid) {
                mentions.push(Mention {
                    concept: cid,
                    relevance: ground_truth_relevance(
                        universe.get(cid),
                        topic,
                        center,
                        secondary_topic,
                    ),
                });
            }
        }
        // A junk phrase now and then.
        if !junk_ids.is_empty() && rng::flip(&mut r, config.p_junk) {
            let cid = *rng::choose(&mut r, &junk_ids);
            if mention_ids.insert(cid) {
                mentions.push(Mention {
                    concept: cid,
                    relevance: RELEVANCE_FLOOR,
                });
            }
        }

        // Build the body: sentences of topic/general words, then splice
        // each mention into a random sentence.
        let n_sentences = r.random_range(config.min_sentences..=config.max_sentences);
        let mut sentences: Vec<Vec<String>> = (0..n_sentences)
            .map(|s| {
                let n_words = r.random_range(config.min_words..=config.max_words);
                let (sent_topic, sent_center) = match secondary_topic {
                    Some((sec, sc)) if s % 3 == 2 => (sec, sc),
                    _ => (topic, center),
                };
                (0..n_words)
                    .map(|_| {
                        if rng::flip(&mut r, 0.4) {
                            lexicon
                                .sample_topic_near(&mut r, sent_topic, sent_center, 0.07)
                                .to_string()
                        } else {
                            lexicon.sample_general(&mut r, &zipf).to_string()
                        }
                    })
                    .collect()
            })
            .collect();
        // Central concepts are repeated, peripheral ones mentioned once —
        // the way a story about Cuba says "Cuba" five times while "Texas"
        // appears once. This is the term-frequency signal the §II-B
        // concept vector picks up.
        // Group splices by sentence and apply them in descending position
        // order so a later insertion can never split an earlier phrase.
        let mut splices: Vec<(usize, usize, &Vec<String>)> = mentions
            .iter()
            .flat_map(|m| {
                let copies = 1
                    + (config.repetition * m.relevance + 0.8 * r.random::<f64>()).floor() as usize;
                let terms = &universe.get(m.concept).terms;
                (0..copies)
                    .map(|_| {
                        let sent = r.random_range(0..sentences.len());
                        let at = r.random_range(0..=sentences[sent].len());
                        (sent, at, terms)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        splices.sort_by_key(|s| std::cmp::Reverse((s.0, s.1)));
        for (sent, at, terms) in splices {
            for (i, t) in terms.iter().enumerate() {
                sentences[sent].insert(at + i, t.clone());
            }
        }
        let text = sentences
            .iter()
            .map(|s| {
                let mut line = s.join(" ");
                if let Some(first) = line.get_mut(0..1) {
                    first.make_ascii_uppercase();
                }
                line.push('.');
                line
            })
            .collect::<Vec<_>>()
            .join(" ");

        stories.push(NewsStory {
            id,
            text,
            topic,
            center,
            secondary_topic,
            mentions,
        });
    }
    stories
}

/// Popularity-weighted draw from a `(id, weight, center)` pool.
fn sample_weighted(r: &mut StdRng, pool: &[(ConceptId, f64, f64)]) -> ConceptId {
    let total: f64 = pool.iter().map(|p| p.1).sum();
    let mut u: f64 = r.random::<f64>() * total;
    for &(id, w, _) in pool {
        u -= w;
        if u <= 0.0 {
            return id;
        }
    }
    pool.last().expect("nonempty pool").0
}

/// Popularity x proximity weighted draw.
fn sample_proximate(
    r: &mut StdRng,
    pool: &[(ConceptId, f64, f64)],
    center: f64,
    sigma: f64,
) -> ConceptId {
    let weights: Vec<f64> = pool
        .iter()
        .map(|&(_, w, c)| {
            let d = center_distance(center, c);
            w * (-(d / sigma).powi(4)).exp() + 1e-12
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u: f64 = r.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return pool[i].0;
        }
    }
    pool.last().expect("nonempty pool").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::UniverseConfig;

    fn setup() -> (Lexicon, ConceptUniverse, Vec<NewsStory>) {
        let lex = Lexicon::generate(8, 400, 4, 60);
        let uni = ConceptUniverse::generate(
            8,
            &lex,
            &UniverseConfig {
                num_specific: 80,
                num_junk: 10,
                ..UniverseConfig::default()
            },
        );
        let news = generate_news(
            8,
            &lex,
            &uni,
            &NewsConfig {
                num_stories: 60,
                ..NewsConfig::default()
            },
        );
        (lex, uni, news)
    }

    #[test]
    fn story_count_and_ids() {
        let (_, _, news) = setup();
        assert_eq!(news.len(), 60);
        for (i, s) in news.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn mentions_present_in_text() {
        let (_, uni, news) = setup();
        for story in &news {
            for m in &story.mentions {
                let surface = uni.get(m.concept).surface();
                assert!(
                    story.text.to_lowercase().contains(&surface),
                    "story {} missing mention {surface:?}",
                    story.id
                );
            }
        }
    }

    #[test]
    fn relevance_labels_follow_topics() {
        let (_, uni, news) = setup();
        for story in &news {
            for m in &story.mentions {
                let spec = uni.get(m.concept);
                let expected =
                    ground_truth_relevance(spec, story.topic, story.center, story.secondary_topic);
                assert_eq!(m.relevance, expected);
            }
        }
    }

    #[test]
    fn most_stories_have_relevant_and_some_have_irrelevant() {
        let (_, _, news) = setup();
        let with_relevant = news
            .iter()
            .filter(|s| s.mentions.iter().any(|m| m.relevance > 0.8))
            .count();
        let with_irrelevant = news
            .iter()
            .filter(|s| s.mentions.iter().any(|m| m.relevance < 0.1))
            .count();
        assert!(
            with_relevant > news.len() / 2,
            "{with_relevant}/{}",
            news.len()
        );
        assert!(with_irrelevant > news.len() / 4);
    }

    #[test]
    fn ground_truth_relevance_cases() {
        let (_, uni, _) = setup();
        let spec = uni
            .all()
            .iter()
            .find(|c| c.topic == Some(1))
            .expect("topic-1 concept");
        // Same topic, same center: fully relevant.
        assert_eq!(ground_truth_relevance(spec, 1, spec.center, None), 1.0);
        // Same topic, opposite center: decays toward the floor.
        let far = ground_truth_relevance(spec, 1, (spec.center + 0.5) % 1.0, None);
        assert!(far < 0.2, "far-center relevance {far}");
        // Secondary topic is discounted.
        let sec = ground_truth_relevance(spec, 0, 0.0, Some((1, spec.center)));
        assert!((sec - 0.55).abs() < 1e-9);
        // Unrelated topic and junk sit at the floor.
        assert_eq!(ground_truth_relevance(spec, 0, 0.0, None), RELEVANCE_FLOOR);
        let junk = uni.junk().next().expect("junk concept");
        assert_eq!(
            ground_truth_relevance(junk, 0, 0.0, Some((1, 0.0))),
            RELEVANCE_FLOOR
        );
    }

    #[test]
    fn stories_are_sentence_punctuated() {
        let (_, _, news) = setup();
        for s in &news {
            assert!(s.text.ends_with('.'));
            assert!(ctxrank_text::sentences(&s.text).len() >= 10);
        }
    }

    #[test]
    fn deterministic() {
        let (lex, uni, _) = setup();
        let a = generate_news(
            21,
            &lex,
            &uni,
            &NewsConfig {
                num_stories: 5,
                ..NewsConfig::default()
            },
        );
        let b = generate_news(
            21,
            &lex,
            &uni,
            &NewsConfig {
                num_stories: 5,
                ..NewsConfig::default()
            },
        );
        assert_eq!(a[0].text, b[0].text);
        assert_eq!(a[4].mentions, b[4].mentions);
    }
}
