//! Configurable position-bias click models.
//!
//! The paper's click model (`clicks::simulate_story`) bakes in one bias
//! shape: a linear decay of click probability with fractional position.
//! Modern counterfactual LTR treats examination as a first-class model —
//! PBM (position-based model: examination depends only on rank) and UBM
//! (user browsing model: examination depends on the distance to the last
//! click) are the standard families. [`PositionBiasModel`] puts all of
//! them behind one trait so synthetic logs can be generated under any
//! bias regime, and [`generate_ranked_log`] produces rank-annotated
//! feedback batches ([`Event::RankedClick`]) for the debiasing pipeline
//! in `ctxrank-framework`.
//!
//! Everything here is seeded and deterministic, like the rest of
//! `ctxrank_synth`: the same configuration always yields the same log,
//! and [`simulate_story_biased`] consumes its RNG in *exactly* the same
//! order as `simulate_story`, so the legacy linear model is the special
//! case `LinearBias { strength: config.position_bias }` — bit-for-bit.

use crate::clicks::{ClickConfig, ClickRecord, StoryClicks};
use crate::concepts::{ConceptId, ConceptUniverse};
use crate::rng;
use ctxrank_querylog::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A position-bias model: the probability that a user *examines* the
/// annotation shown at `rank` (0 = top of page).
///
/// `frac` is the fractional position in `[0, 1]` (the paper's notion of
/// position); `last_click` is the rank of the most recent click above
/// this one, which only click-dependent models (UBM) consult.
pub trait PositionBiasModel {
    /// Examination probability in `[0, 1]`.
    fn examination(&self, rank: usize, frac: f64, last_click: Option<usize>) -> f64;

    /// True when examination depends on realized clicks (the UBM family).
    /// Static models (PBM, linear, none) return false, which also
    /// guarantees their RNG-order parity with `simulate_story`.
    fn depends_on_clicks(&self) -> bool {
        false
    }
}

/// No position bias: every rank is examined. Logs generated under
/// `NoBias` are the "unbiased" control arm of the debiasing experiment.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBias;

impl PositionBiasModel for NoBias {
    fn examination(&self, _rank: usize, _frac: f64, _last_click: Option<usize>) -> f64 {
        1.0
    }
}

/// The paper's linear decay: examination falls from 1.0 at the top of
/// the story to `1 - strength` at the bottom. `simulate_story` is this
/// model with `strength = ClickConfig::position_bias`.
#[derive(Debug, Clone, Copy)]
pub struct LinearBias {
    pub strength: f64,
}

impl PositionBiasModel for LinearBias {
    fn examination(&self, _rank: usize, frac: f64, _last_click: Option<usize>) -> f64 {
        1.0 - self.strength * frac.clamp(0.0, 1.0)
    }
}

/// Position-based model: `examination(rank) = (1 / (1 + rank))^eta`.
/// `eta = 1` is the classic inverse-rank propensity curve used across
/// the counterfactual-LTR literature; larger `eta` sharpens the bias.
#[derive(Debug, Clone, Copy)]
pub struct Pbm {
    pub eta: f64,
}

impl Default for Pbm {
    fn default() -> Self {
        Self { eta: 1.0 }
    }
}

impl PositionBiasModel for Pbm {
    fn examination(&self, rank: usize, _frac: f64, _last_click: Option<usize>) -> f64 {
        (1.0 / (1.0 + rank as f64)).powf(self.eta)
    }
}

/// User browsing model: examination decays with the distance to the
/// last clicked rank, `(1 / (rank - last_click))^eta`, falling back to
/// the PBM curve when nothing above was clicked. Batch-level
/// approximation: "a click at rank r" means the aggregated record at
/// rank r drew at least one click.
#[derive(Debug, Clone, Copy)]
pub struct Ubm {
    pub eta: f64,
}

impl Default for Ubm {
    fn default() -> Self {
        Self { eta: 1.0 }
    }
}

impl PositionBiasModel for Ubm {
    fn examination(&self, rank: usize, _frac: f64, last_click: Option<usize>) -> f64 {
        match last_click {
            Some(last) if last < rank => (1.0 / (rank - last) as f64).powf(self.eta),
            _ => (1.0 / (1.0 + rank as f64)).powf(self.eta),
        }
    }

    fn depends_on_clicks(&self) -> bool {
        true
    }
}

/// `simulate_story` with the position-bias factor supplied by `bias`
/// instead of the built-in linear decay (`config.position_bias` is
/// ignored). Records are ordered as annotated; the record index is the
/// rank fed to the bias model.
///
/// RNG discipline: one `log_normal` draw for views, then per record one
/// `log_normal` noise draw followed by one `binomial` draw — the exact
/// order `simulate_story` uses, so static bias models replay the same
/// random sequence.
pub fn simulate_story_biased<B: PositionBiasModel + ?Sized>(
    seed: u64,
    story_id: usize,
    universe: &ConceptUniverse,
    annotated: &[(ConceptId, f64, f64)], // (concept, relevance, position_frac)
    config: &ClickConfig,
    bias: &B,
) -> StoryClicks {
    let mut r = StdRng::seed_from_u64(seed ^ (story_id as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let views = rng::log_normal(&mut r, config.view_mu, config.view_sigma)
        .round()
        .clamp(1.0, 2_000_000.0) as u64;

    let mut last_click = None;
    let records = annotated
        .iter()
        .enumerate()
        .map(|(rank, &(cid, relevance, position_frac))| {
            let spec = universe.get(cid);
            let interest = spec.interestingness.powf(config.interest_power);
            let rel_factor = config.relevance_floor + (1.0 - config.relevance_floor) * relevance;
            let examination = bias.examination(rank, position_frac, last_click);
            let noise = rng::log_normal(&mut r, 0.0, config.noise_sigma);
            let true_ctr =
                (config.max_ctr * interest * rel_factor * examination * noise).clamp(0.0, 0.5);
            let clicks = rng::binomial(&mut r, views, true_ctr);
            if bias.depends_on_clicks() && clicks > 0 {
                last_click = Some(rank);
            }
            ClickRecord {
                concept: cid,
                position_frac,
                clicks,
                true_ctr,
            }
        })
        .collect();

    StoryClicks {
        story: story_id,
        views,
        records,
    }
}

/// Configuration for [`generate_ranked_log`].
#[derive(Debug, Clone)]
pub struct RankedLogConfig {
    pub seed: u64,
    /// Independent story (query) contexts; each gets its own surfaces.
    pub stories: usize,
    /// Ranked annotation slots per story — every batch shows all of a
    /// story's surfaces, one per slot.
    pub slots: usize,
    /// Feedback batches per story.
    pub batches: usize,
    /// Impressions per batch (the `views` of each `RankedClick`).
    pub views_per_batch: u64,
    /// Per-adjacent-pair probability of a seeded transposition applied
    /// to the base presentation order in each batch. The perturbations
    /// let every surface be observed at neighbouring ranks (what makes
    /// the propensity estimable) while the *systematic* bias of the
    /// fixed base order survives averaging.
    pub swap_prob: f64,
}

impl Default for RankedLogConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            stories: 120,
            slots: 8,
            batches: 48,
            views_per_batch: 400,
            swap_prob: 0.15,
        }
    }
}

/// One story context of a ranked log: its surfaces, their ground-truth
/// attractiveness (the click probability *given examination* — learners
/// must not touch it), and the fixed base presentation order.
#[derive(Debug, Clone)]
pub struct RankedStory {
    pub story: usize,
    /// Surface strings, one per slot index.
    pub surfaces: Vec<String>,
    /// `attractiveness[j]` is the true examined-CTR of `surfaces[j]`.
    pub attractiveness: Vec<f64>,
    /// `base_order[rank]` = slot index shown at `rank` (before the
    /// per-batch transpositions). Drawn independently of
    /// attractiveness, so rank and relevance are uncorrelated.
    pub base_order: Vec<usize>,
}

/// A biased, rank-annotated synthetic feedback log.
#[derive(Debug, Clone)]
pub struct RankedLog {
    pub stories: Vec<RankedStory>,
    /// `Event::RankedClick` records in generation order (story-major,
    /// batch-major, rank-minor).
    pub events: Vec<Event>,
}

/// Generate a rank-annotated click log under `bias`.
///
/// Each story draws `slots` surfaces with heavy-tailed attractiveness
/// and a seeded base permutation; each batch presents the (lightly
/// perturbed) order, samples `clicks ~ Binomial(views, attractiveness ×
/// examination(rank))` per slot, and emits one [`Event::RankedClick`]
/// per impression slot. Deterministic in `config.seed`.
pub fn generate_ranked_log<B: PositionBiasModel + ?Sized>(
    config: &RankedLogConfig,
    bias: &B,
) -> RankedLog {
    let mut r = StdRng::seed_from_u64(config.seed ^ 0xB1A5_C11C_0DDC_5EED);
    let mut stories = Vec::with_capacity(config.stories);
    let mut events = Vec::with_capacity(config.stories * config.batches * config.slots);

    for story in 0..config.stories {
        let surfaces: Vec<String> = (0..config.slots)
            .map(|j| format!("story{story:04} concept {j}"))
            .collect();
        let attractiveness: Vec<f64> = (0..config.slots)
            .map(|_| 0.03 + 0.4 * rng::heavy_tail01(&mut r, 2.0))
            .collect();
        // Seeded Fisher-Yates, independent of the attractiveness draws.
        let mut base_order: Vec<usize> = (0..config.slots).collect();
        for i in (1..base_order.len()).rev() {
            let j = r.random_range(0..i + 1);
            base_order.swap(i, j);
        }

        for _batch in 0..config.batches {
            let mut order = base_order.clone();
            for p in 0..order.len().saturating_sub(1) {
                if rng::flip(&mut r, config.swap_prob) {
                    order.swap(p, p + 1);
                }
            }
            let denom = (config.slots.max(2) - 1) as f64;
            let mut last_click = None;
            for (rank, &slot) in order.iter().enumerate() {
                let frac = rank as f64 / denom;
                let examination = bias.examination(rank, frac, last_click).clamp(0.0, 1.0);
                let p = (attractiveness[slot] * examination).clamp(0.0, 1.0);
                let clicks = rng::binomial(&mut r, config.views_per_batch, p);
                if bias.depends_on_clicks() && clicks > 0 {
                    last_click = Some(rank);
                }
                events.push(Event::RankedClick {
                    story: story as u64,
                    surface: surfaces[slot].clone(),
                    rank: rank as u32,
                    views: config.views_per_batch,
                    clicks,
                });
            }
        }

        stories.push(RankedStory {
            story,
            surfaces,
            attractiveness,
            base_order,
        });
    }

    RankedLog { stories, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbm_examination_decays_with_rank() {
        let pbm = Pbm { eta: 1.0 };
        let e: Vec<f64> = (0..5).map(|r| pbm.examination(r, 0.0, None)).collect();
        for w in e.windows(2) {
            assert!(w[0] > w[1], "{e:?}");
        }
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ubm_resets_after_a_click() {
        let ubm = Ubm { eta: 1.0 };
        // No click above: PBM fallback. Click right above: full examination.
        assert!(ubm.examination(4, 0.0, None) < ubm.examination(4, 0.0, Some(3)));
        assert!((ubm.examination(4, 0.0, Some(3)) - 1.0).abs() < 1e-12);
        assert!(ubm.depends_on_clicks());
        assert!(!Pbm::default().depends_on_clicks());
    }

    #[test]
    fn ranked_log_is_deterministic_and_complete() {
        let cfg = RankedLogConfig {
            stories: 3,
            batches: 4,
            slots: 5,
            ..RankedLogConfig::default()
        };
        let a = generate_ranked_log(&cfg, &Pbm::default());
        let b = generate_ranked_log(&cfg, &Pbm::default());
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 3 * 4 * 5);
        assert_eq!(a.stories.len(), 3);
        for s in &a.stories {
            let mut sorted = s.base_order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>());
            assert!(s.attractiveness.iter().all(|&x| (0.0..=0.5).contains(&x)));
        }
        let c = generate_ranked_log(
            &RankedLogConfig {
                seed: 1,
                ..cfg.clone()
            },
            &Pbm::default(),
        );
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn biased_log_clicks_decay_with_rank() {
        let cfg = RankedLogConfig {
            stories: 40,
            batches: 10,
            slots: 6,
            views_per_batch: 500,
            ..RankedLogConfig::default()
        };
        let log = generate_ranked_log(&cfg, &Pbm { eta: 1.0 });
        let mut clicks_by_rank = [0u64; 6];
        let mut views_by_rank = [0u64; 6];
        for e in &log.events {
            if let Event::RankedClick {
                rank,
                views,
                clicks,
                ..
            } = e
            {
                clicks_by_rank[*rank as usize] += clicks;
                views_by_rank[*rank as usize] += views;
            }
        }
        let ctr0 = clicks_by_rank[0] as f64 / views_by_rank[0] as f64;
        let ctr5 = clicks_by_rank[5] as f64 / views_by_rank[5] as f64;
        // Ranks and attractiveness are uncorrelated, so the aggregate
        // CTR ratio tracks the examination ratio (6x for eta = 1).
        assert!(ctr0 > 3.0 * ctr5, "ctr0 {ctr0} ctr5 {ctr5}");
    }
}
