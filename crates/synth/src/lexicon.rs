//! Deterministic pseudo-word lexicon and topic vocabularies.
//!
//! Every other generator draws its vocabulary from here. A lexicon
//! consists of a *general* pool (words any document or query may use, the
//! stand-in for everyday English) and one *distinctive* pool per topic.
//! The pools are disjoint, which gives the relevance miner the structure
//! it needs: a specific concept's context keywords come from its topic's
//! distinctive pool and therefore have high idf in the full corpus, while
//! a junk phrase's contexts are spread over the general pool (§IV-C,
//! Table II).
//!
//! Words are pronounceable syllable chains ("zorelka", "mintovar"), so
//! examples and debug output read naturally, and the generator never
//! collides with English stop-words.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const ONSETS: &[&str] = &[
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "dr", "gr", "kr",
    "pl", "st", "tr", "sk", "sl", "ch", "sh",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "", "", "n", "r", "s", "l", "k", "m", "t", "x"];

/// A generated lexicon: general vocabulary, per-topic distinctive
/// vocabularies, and per-topic *name* pools (words reserved for entity
/// and concept surfaces — "Obama" appears in a document only when the
/// document actually mentions Obama). All pools are disjoint.
#[derive(Debug, Clone)]
pub struct Lexicon {
    general: Vec<String>,
    topics: Vec<Vec<String>>,
    names: Vec<Vec<String>>,
}

impl Lexicon {
    /// Generate a lexicon with `general_size` general words and
    /// `num_topics` topics of `topic_size` distinctive words each, plus
    /// a name pool per topic sized `topic_size` as well.
    pub fn generate(seed: u64, general_size: usize, num_topics: usize, topic_size: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1e71c0);
        let mut seen: HashSet<String> = HashSet::new();
        let draw = |rng: &mut StdRng, seen: &mut HashSet<String>| -> String {
            loop {
                let syllables = rng.random_range(2..=3);
                let mut w = String::new();
                for _ in 0..syllables {
                    w.push_str(ONSETS[rng.random_range(0..ONSETS.len())]);
                    w.push_str(NUCLEI[rng.random_range(0..NUCLEI.len())]);
                    w.push_str(CODAS[rng.random_range(0..CODAS.len())]);
                }
                if w.len() >= 4 && !ctxrank_text::is_stopword(&w) && seen.insert(w.clone()) {
                    return w;
                }
            }
        };

        let general = (0..general_size)
            .map(|_| draw(&mut rng, &mut seen))
            .collect();
        let topics: Vec<Vec<String>> = (0..num_topics)
            .map(|_| (0..topic_size).map(|_| draw(&mut rng, &mut seen)).collect())
            .collect();
        let names = (0..num_topics)
            .map(|_| (0..topic_size).map(|_| draw(&mut rng, &mut seen)).collect())
            .collect();
        Self {
            general,
            topics,
            names,
        }
    }

    /// The general vocabulary.
    pub fn general(&self) -> &[String] {
        &self.general
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.topics.len()
    }

    /// A topic's distinctive vocabulary.
    pub fn topic(&self, t: usize) -> &[String] {
        &self.topics[t]
    }

    /// A topic's name pool (reserved for concept surfaces).
    pub fn names(&self, t: usize) -> &[String] {
        &self.names[t]
    }

    /// Total number of words across all pools.
    pub fn total_words(&self) -> usize {
        self.general.len()
            + self.topics.iter().map(Vec::len).sum::<usize>()
            + self.names.iter().map(Vec::len).sum::<usize>()
    }

    /// Sample a general word with Zipf-like bias toward the front of the
    /// pool (low indices are "common words").
    pub fn sample_general<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        zipf: &crate::rng::ZipfSampler,
    ) -> &str {
        &self.general[zipf.sample(rng) % self.general.len()]
    }

    /// Sample a distinctive word of topic `t` uniformly.
    pub fn sample_topic<R: Rng + ?Sized>(&self, rng: &mut R, t: usize) -> &str {
        self.topics[t][rng.random_range(0..self.topics[t].len())].as_str()
    }

    /// Sample a distinctive word of topic `t` near sub-topic `center`
    /// (in `[0, 1)`): indices are drawn from a wrapped normal around
    /// `center · len` with standard deviation `spread · len`. This gives
    /// topics internal structure, so relevance can be *graded* rather
    /// than binary.
    pub fn sample_topic_near<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        t: usize,
        center: f64,
        spread: f64,
    ) -> &str {
        let len = self.topics[t].len() as f64;
        let raw = crate::rng::normal_with(rng, center * len, spread * len);
        let idx = raw.rem_euclid(len) as usize;
        self.topics[t][idx.min(self.topics[t].len() - 1)].as_str()
    }
}

/// Wrapped distance between two sub-topic centers in `[0, 1)`; the
/// result lies in `[0, 0.5]`.
pub fn center_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(1.0);
    d.min(1.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = Lexicon::generate(7, 100, 3, 20);
        let b = Lexicon::generate(7, 100, 3, 20);
        assert_eq!(a.general, b.general);
        assert_eq!(a.topics, b.topics);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Lexicon::generate(1, 50, 2, 10);
        let b = Lexicon::generate(2, 50, 2, 10);
        assert_ne!(a.general, b.general);
    }

    #[test]
    fn pools_are_disjoint_and_sized() {
        let lex = Lexicon::generate(3, 200, 5, 30);
        assert_eq!(lex.general().len(), 200);
        assert_eq!(lex.num_topics(), 5);
        let mut all: Vec<&str> = lex.general().iter().map(String::as_str).collect();
        for t in 0..5 {
            assert_eq!(lex.topic(t).len(), 30);
            assert_eq!(lex.names(t).len(), 30);
            all.extend(lex.topic(t).iter().map(String::as_str));
            all.extend(lex.names(t).iter().map(String::as_str));
        }
        let set: HashSet<&str> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "pools must be disjoint");
        assert_eq!(lex.total_words(), 200 + 2 * 5 * 30);
    }

    #[test]
    fn words_are_clean_tokens() {
        let lex = Lexicon::generate(11, 300, 2, 50);
        for w in lex.general() {
            assert!(w.len() >= 4);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(!ctxrank_text::is_stopword(w));
            // Round-trips through the tokenizer unchanged.
            assert_eq!(ctxrank_text::tokenize_terms(w), vec![w.clone()]);
        }
    }
}
