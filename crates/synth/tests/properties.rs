//! Property-based tests for the synthetic-world generators.

use ctxrank_synth::clicks::simulate_story;
use ctxrank_synth::concepts::UniverseConfig;
use ctxrank_synth::lexicon::center_distance;
use ctxrank_synth::news::{ground_truth_relevance, relevance_kernel, RELEVANCE_FLOOR};
use ctxrank_synth::rng::{binomial, heavy_tail01, ZipfSampler};
use ctxrank_synth::{ClickConfig, ConceptUniverse, Lexicon};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Zipf samples stay in range for any size/exponent.
    #[test]
    fn zipf_in_range(n in 1usize..500, s in 0.1f64..3.0, seed in 0u64..500) {
        let z = ZipfSampler::new(n, s);
        let mut r = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut r) < n);
        }
    }

    /// Binomial samples never exceed n and match expectation in the
    /// aggregate.
    #[test]
    fn binomial_bounded(n in 0u64..5000, p in 0.0f64..1.0, seed in 0u64..500) {
        let mut r = StdRng::seed_from_u64(seed);
        let x = binomial(&mut r, n, p);
        prop_assert!(x <= n);
    }

    /// Heavy-tail samples live in (0, 1].
    #[test]
    fn heavy_tail_in_unit(shape in 0.2f64..8.0, seed in 0u64..500) {
        let mut r = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = heavy_tail01(&mut r, shape);
            prop_assert!(x > 0.0 && x <= 1.0);
        }
    }

    /// Wrapped center distance is a metric-ish quantity in [0, 0.5].
    #[test]
    fn center_distance_bounds(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let d = center_distance(a, b);
        prop_assert!((0.0..=0.5).contains(&d));
        prop_assert!((center_distance(a, b) - center_distance(b, a)).abs() < 1e-12);
        prop_assert!(center_distance(a, a) < 1e-12);
    }

    /// The relevance kernel is in (0, 1], decreasing in distance, and
    /// ground-truth relevance respects the floor.
    #[test]
    fn relevance_kernel_contract(d1 in 0.0f64..0.5, d2 in 0.0f64..0.5) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(relevance_kernel(lo) >= relevance_kernel(hi));
        prop_assert!(relevance_kernel(lo) <= 1.0 && relevance_kernel(hi) > 0.0);
    }

    /// Lexicon pools are disjoint at any size.
    #[test]
    fn lexicon_disjoint(seed in 0u64..50, general in 10usize..80,
                        topics in 1usize..5, per_topic in 5usize..25) {
        let lex = Lexicon::generate(seed, general, topics, per_topic);
        let mut all: Vec<&String> = lex.general().iter().collect();
        for t in 0..topics {
            all.extend(lex.topic(t).iter());
            all.extend(lex.names(t).iter());
        }
        let set: std::collections::HashSet<&String> = all.iter().copied().collect();
        prop_assert_eq!(set.len(), all.len());
    }

    /// Click simulation: clicks never exceed views, true CTRs are
    /// probabilities, and the same inputs reproduce exactly.
    #[test]
    fn clicks_bounded_and_deterministic(seed in 0u64..100, story in 0usize..50) {
        let lex = Lexicon::generate(3, 60, 2, 20);
        let uni = ConceptUniverse::generate(
            3,
            &lex,
            &UniverseConfig { num_specific: 10, num_junk: 2, num_ambiguous: 0, ..UniverseConfig::default() },
        );
        let annotated: Vec<_> = uni
            .all()
            .iter()
            .take(5)
            .enumerate()
            .map(|(i, c)| (c.id, 0.2 * i as f64, i as f64 / 5.0))
            .collect();
        let a = simulate_story(seed, story, &uni, &annotated, &ClickConfig::default());
        let b = simulate_story(seed, story, &uni, &annotated, &ClickConfig::default());
        prop_assert_eq!(a.views, b.views);
        for (x, y) in a.records.iter().zip(&b.records) {
            prop_assert_eq!(x.clicks, y.clicks);
            prop_assert!(x.clicks <= a.views);
            prop_assert!((0.0..=1.0).contains(&x.true_ctr));
        }
    }
}

/// Ground-truth relevance over a generated universe: always within
/// `[floor, 1]`, junk always at the floor.
#[test]
fn ground_truth_relevance_bounds() {
    let lex = Lexicon::generate(9, 80, 3, 25);
    let uni = ConceptUniverse::generate(
        9,
        &lex,
        &UniverseConfig {
            num_specific: 30,
            num_junk: 5,
            num_ambiguous: 0,
            ..UniverseConfig::default()
        },
    );
    for c in uni.all() {
        for topic in 0..3 {
            for center in [0.0, 0.33, 0.77] {
                let r = ground_truth_relevance(c, topic, center, Some((topic + 1, 0.5)));
                assert!((RELEVANCE_FLOOR..=1.0).contains(&r), "{r}");
                if c.is_junk() {
                    assert_eq!(r, RELEVANCE_FLOOR);
                }
            }
        }
    }
}
