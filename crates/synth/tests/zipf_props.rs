//! Property tests for the Zipf query-mix sampler that drives the
//! open-loop load generator's cache-hit profile.
//!
//! Two distributional laws, checked statistically over random `(n, s,
//! seed)` triples: empirical counts are (tolerantly) monotone
//! non-increasing in rank for any positive exponent, and exponent 0
//! degenerates to the uniform distribution. Tolerances are ~5 standard
//! deviations of the relevant binomial counts so a correct sampler
//! fails with negligible probability while a rank-inverted or
//! mass-concentrating bug fails immediately.

use ctxrank_synth::ZipfQueryMix;
use proptest::prelude::*;

/// Empirical histogram of `draws` samples from a fresh mix.
fn histogram(n: usize, s: f64, seed: u64, draws: usize) -> Vec<usize> {
    let mut mix = ZipfQueryMix::new(n, s, seed);
    assert_eq!(mix.len(), n);
    let mut counts = vec![0usize; n];
    for _ in 0..draws {
        let i = mix.next_index();
        assert!(i < n, "index {i} out of range {n}");
        counts[i] += 1;
    }
    counts
}

proptest! {
    /// For any positive exponent, P(rank k) strictly decreases in k, so
    /// empirical counts must be non-increasing up to sampling noise:
    /// allow ~5 sigma of the larger neighbour's binomial count.
    #[test]
    fn counts_monotone_in_rank(
        n in 2usize..48,
        s in 0.2f64..2.5,
        seed in any::<u64>(),
    ) {
        let draws = 30_000;
        let counts = histogram(n, s, seed, draws);
        for k in 0..n - 1 {
            let slack = 5.0 * ((counts[k].max(counts[k + 1]) as f64) + 25.0).sqrt();
            prop_assert!(
                counts[k] as f64 >= counts[k + 1] as f64 - slack,
                "rank {k} ({}) < rank {} ({}) beyond {slack:.0} slack (n={n}, s={s})",
                counts[k], k + 1, counts[k + 1]
            );
        }
    }

    /// Exponent 0 makes every rank weight 1/n: each empirical count
    /// stays within ~5 sigma of draws/n.
    #[test]
    fn zero_exponent_is_uniform(
        n in 2usize..32,
        seed in any::<u64>(),
    ) {
        let draws = 50_000;
        let counts = histogram(n, 0.0, seed, draws);
        let mean = draws as f64 / n as f64;
        let sigma = (mean * (1.0 - 1.0 / n as f64)).sqrt();
        for (k, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64 - mean).abs() <= 5.0 * sigma,
                "rank {k} count {c} deviates from uniform mean {mean:.1} (sigma {sigma:.1}, n={n})"
            );
        }
    }

    /// Same seed, same mix — the stream is reproducible; and the first
    /// rank of a skewed mix is sampled often (head-heaviness the cache
    /// relies on).
    #[test]
    fn deterministic_and_head_heavy(seed in any::<u64>()) {
        let a: Vec<usize> = {
            let mut m = ZipfQueryMix::new(64, 1.2, seed);
            (0..512).map(|_| m.next_index()).collect()
        };
        let b: Vec<usize> = {
            let mut m = ZipfQueryMix::new(64, 1.2, seed);
            (0..512).map(|_| m.next_index()).collect()
        };
        prop_assert_eq!(&a, &b);
        let head = a.iter().filter(|&&i| i == 0).count();
        // Rank 0 carries ~21% of the mass at s=1.2, n=64; 512 draws
        // put ~107 there with sigma ~9 — 40 is ~7 sigma below.
        prop_assert!(head >= 40, "head rank drawn only {head}/512 times");
    }
}
