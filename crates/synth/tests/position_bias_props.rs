//! Properties of the position-bias layer.
//!
//! Two facts keep the debiasing pipeline honest:
//!
//! 1. **Convergence** — under a PBM log, the aggregate CTR observed at
//!    rank `r` converges to `examination(r) × mean(attractiveness)`;
//!    ranks and attractiveness are uncorrelated by construction, so the
//!    per-rank CTR ratio *is* the examination curve. This is the signal
//!    RegressionEM recovers.
//! 2. **Parity** — the bias layer is a strict generalization of the
//!    paper's click model: `simulate_story_biased` with
//!    `LinearBias { strength: config.position_bias }` reproduces
//!    `simulate_story` bit-for-bit under the same seed (same RNG draw
//!    order, same clamps), for any configuration.

use ctxrank_querylog::Event;
use ctxrank_synth::clicks::simulate_story;
use ctxrank_synth::concepts::UniverseConfig;
use ctxrank_synth::{
    generate_ranked_log, simulate_story_biased, ClickConfig, ConceptUniverse, LinearBias, NoBias,
    Pbm, PositionBiasModel, RankedLogConfig,
};
use proptest::prelude::*;

fn universe() -> ConceptUniverse {
    let lex = ctxrank_synth::Lexicon::generate(7, 300, 4, 60);
    ConceptUniverse::generate(
        7,
        &lex,
        &UniverseConfig {
            num_specific: 80,
            num_junk: 8,
            ..UniverseConfig::default()
        },
    )
}

/// Observed CTR per rank over a whole ranked log.
fn ctr_by_rank(events: &[Event], slots: usize) -> Vec<f64> {
    let mut clicks = vec![0u64; slots];
    let mut views = vec![0u64; slots];
    for e in events {
        if let Event::RankedClick {
            rank,
            views: v,
            clicks: c,
            ..
        } = e
        {
            clicks[*rank as usize] += c;
            views[*rank as usize] += v;
        }
    }
    clicks
        .iter()
        .zip(&views)
        .map(|(&c, &v)| c as f64 / v.max(1) as f64)
        .collect()
}

#[test]
fn pbm_ctr_by_rank_converges_to_examination_times_relevance() {
    let cfg = RankedLogConfig {
        seed: 0x5EED,
        stories: 300,
        slots: 6,
        batches: 40,
        views_per_batch: 500,
        swap_prob: 0.0, // pure PBM ranks, no transposition smearing
    };
    let pbm = Pbm { eta: 1.0 };
    let log = generate_ranked_log(&cfg, &pbm);

    // mean attractiveness over every (story, slot): with swap_prob = 0
    // each rank shows a uniformly random slot of each story, so the
    // expected CTR at rank r is examination(r) × this mean.
    let mean_attract: f64 = log
        .stories
        .iter()
        .flat_map(|s| s.attractiveness.iter())
        .sum::<f64>()
        / (cfg.stories * cfg.slots) as f64;

    let observed = ctr_by_rank(&log.events, cfg.slots);
    for (rank, &ctr) in observed.iter().enumerate() {
        let expected = pbm.examination(rank, 0.0, None) * mean_attract;
        // 300 stories × 40 batches × 500 views per rank: the sample
        // mean sits within a few percent of the model's expectation.
        assert!(
            (ctr - expected).abs() < 0.08 * expected,
            "rank {rank}: observed {ctr:.4} vs expected {expected:.4}"
        );
    }
    // And the ratio curve is the examination curve itself.
    for rank in 1..cfg.slots {
        let ratio = observed[rank] / observed[0];
        let exam = pbm.examination(rank, 0.0, None);
        assert!(
            (ratio - exam).abs() < 0.1 * exam,
            "rank {rank}: ratio {ratio:.4} vs examination {exam:.4}"
        );
    }
}

#[test]
fn nobias_log_has_flat_ctr_by_rank() {
    let cfg = RankedLogConfig {
        seed: 0x5EED,
        stories: 200,
        slots: 6,
        batches: 30,
        views_per_batch: 500,
        swap_prob: 0.15,
    };
    let log = generate_ranked_log(&cfg, &NoBias);

    // Normalize each rank's observed CTR by the attractiveness actually
    // shown there (which slot appears at which rank is itself random),
    // leaving only binomial click noise — examination must be 1.0
    // everywhere.
    let attract: std::collections::HashMap<&str, f64> = log
        .stories
        .iter()
        .flat_map(|s| {
            s.surfaces
                .iter()
                .map(|x| x.as_str())
                .zip(s.attractiveness.iter().copied())
        })
        .collect();
    let mut expected_clicks = vec![0.0f64; cfg.slots];
    let mut clicks = vec![0u64; cfg.slots];
    for e in &log.events {
        if let Event::RankedClick {
            surface,
            rank,
            views,
            clicks: c,
            ..
        } = e
        {
            expected_clicks[*rank as usize] += attract[surface.as_str()] * *views as f64;
            clicks[*rank as usize] += c;
        }
    }
    for rank in 0..cfg.slots {
        let ratio = clicks[rank] as f64 / expected_clicks[rank];
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "rank {rank}: observed/expected {ratio:.4} should be 1"
        );
    }
}

proptest! {
    /// `simulate_story` is the `LinearBias` special case of the biased
    /// simulator — bit-for-bit, for any seed, story, layout and
    /// bias strength.
    #[test]
    fn linear_bias_reproduces_simulate_story_bit_for_bit(
        seed in any::<u64>(),
        story_id in 0usize..1_000,
        position_bias in 0.0f64..1.0,
        noise_sigma in 0.0f64..1.5,
        layout in prop::collection::vec((0usize..88, 0.0f64..1.0, 0.0f64..1.0), 0..12),
    ) {
        // One shared universe for the whole property run.
        use std::sync::OnceLock;
        static UNI: OnceLock<ConceptUniverse> = OnceLock::new();
        let uni = UNI.get_or_init(universe);
        let ids: Vec<_> = uni.all().iter().map(|c| c.id).collect();
        let annotated: Vec<_> = layout
            .iter()
            .map(|&(pick, relevance, frac)| (ids[pick % ids.len()], relevance, frac))
            .collect();
        let config = ClickConfig {
            position_bias,
            noise_sigma,
            ..ClickConfig::default()
        };
        let legacy = simulate_story(seed, story_id, uni, &annotated, &config);
        let biased = simulate_story_biased(
            seed,
            story_id,
            uni,
            &annotated,
            &config,
            &LinearBias { strength: position_bias },
        );
        prop_assert_eq!(&legacy, &biased);
        // Bit-for-bit, not just approximately equal.
        for (a, b) in legacy.records.iter().zip(&biased.records) {
            prop_assert_eq!(a.true_ctr.to_bits(), b.true_ctr.to_bits());
        }
    }
}
