//! End-to-end correctness of the epoch-keyed result cache over real
//! sockets: concurrent readers on a small (cache-friendly) query pool
//! while snapshots publish mid-traffic.
//!
//! The invariant under test is the one the cache design claims by
//! construction: a cached body is only ever served for the epoch that
//! ranked it, so no response may pair one epoch's number with another
//! epoch's scores — and after a publish the hit rate restarts at zero
//! because every old key is dead.

use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::{
    GlobalTidTable, PackedInterestStore, PackedRelevanceStore, ServiceHandle, Snapshot,
    SnapshotBuilder,
};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_serve::client::{one_shot, Conn};
use ctxrank_serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Same distinguishable-epoch builder as `tests/integration.rs`: the
/// probe term "sunspot" scores ~`weight`, so (epoch, relevance) pairs
/// are checkable against the publish log.
fn snapshot(weight: f64) -> Arc<Snapshot> {
    let interest = PackedInterestStore::build(&[(
        "solar flares".to_string(),
        InterestFeatures {
            freq_exact: 100,
            ..InterestFeatures::default()
        },
    )]);
    let mut tids = GlobalTidTable::new();
    let kw = RelevantTerms {
        terms: vec![(ctxrank_text::stem("sunspot"), weight)],
    };
    let relevance = PackedRelevanceStore::build(vec![("solar flares", &kw)], &mut tids);
    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[9] = (g + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("test snapshot")
}

/// A small pool of distinct queries — small enough that a Zipf-free
/// round-robin over it still re-hits every key many times per epoch.
fn rank_body(i: usize) -> String {
    format!(r#"{{"text": "sunspot radiation reading number {i}", "candidates": ["solar flares"]}}"#)
}

fn parse_rank_response(body: &str) -> (u64, f64) {
    let v: serde_json::Value = serde_json::from_str(body).expect("response JSON");
    let epoch = v.get("epoch").and_then(|e| e.as_u64()).expect("epoch");
    let results = match v.get("results") {
        Some(serde_json::Value::Seq(items)) => items,
        other => panic!("malformed results: {other:?}"),
    };
    assert_eq!(results.len(), 1);
    let relevance = results[0]
        .get("relevance")
        .and_then(|r| r.as_f64())
        .expect("relevance");
    (epoch, relevance)
}

/// `ctxrank_<name> <value>` from the Prometheus text body.
fn counter(metrics: &str, name: &str) -> u64 {
    let prefix = format!("{name} ");
    metrics
        .lines()
        .find(|l| l.starts_with(&prefix))
        .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let (status, _, body) = one_shot(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    body
}

/// K readers hammer a 4-query pool while M snapshots publish. With the
/// cache on, most responses come straight out of it — and every single
/// one must still score exactly like the epoch it claims. A stale read
/// (old epoch's body after its publish, or worse, a body paired with
/// the wrong epoch number) misses the weight check by ~10.
#[test]
fn cached_responses_never_cross_epochs_under_publish() {
    let weight_of_epoch: Arc<Mutex<HashMap<u64, f64>>> = Arc::new(Mutex::new(HashMap::new()));
    let first = snapshot(10.0);
    weight_of_epoch.lock().unwrap().insert(first.epoch(), 10.0);
    let handle = Arc::new(ServiceHandle::new(first));

    let server = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            workers: 8,
            batch_max_size: 8,
            batch_max_wait: Duration::from_micros(300),
            ..ServeConfig::default()
        }
        .with_cache(4 << 20),
    )
    .expect("start server");
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 80;
    const PUBLISHES: usize = 8;
    const POOL: usize = 4;

    let observed: Vec<(u64, f64)> = std::thread::scope(|scope| {
        let mut client_threads = Vec::new();
        for c in 0..CLIENTS {
            client_threads.push(scope.spawn(move || {
                let mut conn = Conn::connect(addr).expect("connect");
                let mut seen = Vec::with_capacity(REQUESTS);
                let mut last_epoch = 0u64;
                for r in 0..REQUESTS {
                    let body = rank_body((c + r) % POOL);
                    let (status, _, body) =
                        conn.request("POST", "/rank", Some(&body)).expect("request");
                    assert_eq!(status, 200, "body: {body}");
                    let (epoch, relevance) = parse_rank_response(&body);
                    // A cache hit must never serve an epoch older than
                    // one this client already saw.
                    assert!(
                        epoch >= last_epoch,
                        "epoch went back: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    seen.push((epoch, relevance));
                }
                seen
            }));
        }

        let weights = Arc::clone(&weight_of_epoch);
        let publisher_handle = Arc::clone(&handle);
        let publisher = scope.spawn(move || {
            for i in 0..PUBLISHES {
                let w = 10.0 * (i + 2) as f64;
                let snap = snapshot(w);
                weights.lock().unwrap().insert(snap.epoch(), w);
                publisher_handle.publish(snap);
                std::thread::sleep(Duration::from_millis(4));
            }
        });

        let mut all = Vec::new();
        for t in client_threads {
            all.extend(t.join().expect("client thread"));
        }
        publisher.join().expect("publisher");
        all
    });

    assert_eq!(observed.len(), CLIENTS * REQUESTS);
    let weights = weight_of_epoch.lock().unwrap();
    let mut distinct_epochs: Vec<u64> = Vec::new();
    for (epoch, relevance) in &observed {
        let expected = weights
            .get(epoch)
            .unwrap_or_else(|| panic!("response claimed unknown epoch {epoch}"));
        // Weights are 10 apart; a cross-epoch body misses by ~10, far
        // outside quantization noise.
        assert!(
            (relevance - expected).abs() < 0.5,
            "epoch {epoch} expected relevance ~{expected}, got {relevance} — stale cached body"
        );
        if !distinct_epochs.contains(epoch) {
            distinct_epochs.push(*epoch);
        }
    }
    assert!(
        distinct_epochs.len() >= 3,
        "traffic overlapped too few publishes: {distinct_epochs:?}"
    );

    // The pool is 4 queries × 320 requests: the cache must have
    // answered a large share of them, or this test exercised nothing.
    let metrics = scrape(addr);
    let hits = counter(&metrics, "ctxrank_cache_hits_total");
    let misses = counter(&metrics, "ctxrank_cache_misses_total");
    assert!(
        hits > (CLIENTS * REQUESTS / 4) as u64,
        "cache barely hit: {hits} hits / {misses} misses"
    );

    server.shutdown();
}

/// After a publish, the very first request for a previously-hot query
/// must MISS — the epoch in the key changed, so the old entry is dead
/// by construction — and only the re-ranked body becomes hittable.
#[test]
fn publish_resets_hit_rate_to_zero() {
    let first = snapshot(10.0);
    let handle = Arc::new(ServiceHandle::new(first));
    let server = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            // This test keeps its rank connection open across /metrics
            // scrapes on separate connections: it needs more than one
            // worker (workers: 0 resolves to the machine's thread
            // count, which can be 1) and an idle window that outlasts
            // the snapshot rebuilds between requests.
            workers: 4,
            keep_alive_timeout: Duration::from_secs(60),
            ..ServeConfig::default()
        }
        .with_cache(1 << 20),
    )
    .expect("start server");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr).expect("connect");
    let body = rank_body(0);

    // Cold: miss then fill (the batcher inserts before responding, so
    // by the time we see the 200 the entry is resident).
    let (status, _, resp) = conn.request("POST", "/rank", Some(&body)).expect("rank 1");
    assert_eq!(status, 200);
    let (epoch_a, rel_a) = parse_rank_response(&resp);
    assert!((rel_a - 10.0).abs() < 0.5);

    // Warm: the same query is a hit.
    let (status, _, resp) = conn.request("POST", "/rank", Some(&body)).expect("rank 2");
    assert_eq!(status, 200);
    assert_eq!(parse_rank_response(&resp).0, epoch_a);
    let m = scrape(addr);
    let hits_warm = counter(&m, "ctxrank_cache_hits_total");
    let misses_warm = counter(&m, "ctxrank_cache_misses_total");
    assert_eq!(hits_warm, 1, "second identical request must hit");
    assert_eq!(misses_warm, 1, "first request must miss");

    // Publish: every cached key is now dead without any flush call.
    let next = snapshot(20.0);
    let epoch_b = next.epoch();
    handle.publish(next);
    assert!(epoch_b > epoch_a);

    // Same query again: must MISS (hits unchanged), must carry the new
    // epoch and the new snapshot's scores.
    let (status, _, resp) = conn.request("POST", "/rank", Some(&body)).expect("rank 3");
    assert_eq!(status, 200);
    let (epoch, rel) = parse_rank_response(&resp);
    assert_eq!(epoch, epoch_b, "post-publish response must be re-ranked");
    assert!(
        (rel - 20.0).abs() < 0.5,
        "stale relevance {rel} after publish"
    );
    let m = scrape(addr);
    assert_eq!(
        counter(&m, "ctxrank_cache_hits_total"),
        hits_warm,
        "post-publish request hit a dead entry"
    );
    assert_eq!(counter(&m, "ctxrank_cache_misses_total"), misses_warm + 1);

    // And the re-ranked body is immediately hittable at the new epoch.
    let (status, _, resp) = conn.request("POST", "/rank", Some(&body)).expect("rank 4");
    assert_eq!(status, 200);
    assert_eq!(parse_rank_response(&resp).0, epoch_b);
    let m = scrape(addr);
    assert_eq!(counter(&m, "ctxrank_cache_hits_total"), hits_warm + 1);

    // Release the worker parked on this keep-alive connection before
    // shutdown joins the pool, or the drain waits out the idle window.
    drop(conn);
    server.shutdown();
}
