//! End-to-end tests over real sockets: concurrent clients, hot-swaps
//! under traffic, forced shedding, graceful drain.
//!
//! The torn-response test is the load-bearing one: snapshots are built
//! so each epoch produces a *distinguishable* relevance score for the
//! probe document, and every response must match the score of exactly
//! the epoch it claims — across 10+ publishes landing mid-traffic.

use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::{
    GlobalTidTable, PackedInterestStore, PackedRelevanceStore, ServiceHandle, Snapshot,
    SnapshotBuilder,
};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_serve::client::{one_shot, Conn};
use ctxrank_serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A snapshot whose only concept's single relevance keyword has weight
/// `weight` — the probe text "sunspot ..." then scores ~`weight`, so a
/// response's (epoch, relevance) pair is checkable.
fn snapshot(weight: f64) -> Arc<Snapshot> {
    let interest = PackedInterestStore::build(&[(
        "solar flares".to_string(),
        InterestFeatures {
            freq_exact: 100,
            ..InterestFeatures::default()
        },
    )]);
    let mut tids = GlobalTidTable::new();
    let kw = RelevantTerms {
        terms: vec![(ctxrank_text::stem("sunspot"), weight)],
    };
    let relevance = PackedRelevanceStore::build(vec![("solar flares", &kw)], &mut tids);
    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[9] = (g + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("test snapshot")
}

const RANK_BODY: &str =
    r#"{"text": "sunspot radiation from the telescope", "candidates": ["solar flares"]}"#;

fn parse_rank_response(body: &str) -> (u64, f64) {
    let v: serde_json::Value = serde_json::from_str(body).expect("response JSON");
    let epoch = v.get("epoch").and_then(|e| e.as_u64()).expect("epoch");
    let results = match v.get("results") {
        Some(serde_json::Value::Seq(items)) => items,
        other => panic!("malformed results: {other:?}"),
    };
    assert_eq!(results.len(), 1, "one candidate in, one result out");
    let relevance = results[0]
        .get("relevance")
        .and_then(|r| r.as_f64())
        .expect("relevance");
    assert!(results[0].get("surface").and_then(|s| s.as_str()) == Some("solar flares"));
    assert!(results[0]
        .get("score")
        .and_then(|s| s.as_f64())
        .expect("score")
        .is_finite());
    (epoch, relevance)
}

/// The acceptance-criteria test: concurrent rank traffic from N client
/// threads while 12 rebuilt snapshots are published; every response
/// must be well-formed and consistent with exactly one epoch.
#[test]
fn publish_under_traffic_yields_no_torn_responses() {
    let weight_of_epoch: Arc<Mutex<HashMap<u64, f64>>> = Arc::new(Mutex::new(HashMap::new()));
    let first = snapshot(10.0);
    weight_of_epoch.lock().unwrap().insert(first.epoch(), 10.0);
    let handle = Arc::new(ServiceHandle::new(first));

    let server = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            workers: 8,
            batch_max_size: 8,
            batch_max_wait: Duration::from_micros(300),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 50;
    const PUBLISHES: usize = 12;

    let observed: Vec<(u64, f64)> = std::thread::scope(|scope| {
        let mut client_threads = Vec::new();
        for _ in 0..CLIENTS {
            client_threads.push(scope.spawn(move || {
                let mut conn = Conn::connect(addr).expect("connect");
                let mut seen = Vec::with_capacity(REQUESTS);
                let mut last_epoch = 0u64;
                for _ in 0..REQUESTS {
                    let (status, _, body) = conn
                        .request("POST", "/rank", Some(RANK_BODY))
                        .expect("request");
                    assert_eq!(status, 200, "body: {body}");
                    let (epoch, relevance) = parse_rank_response(&body);
                    // Epochs never run backwards for a sequential client.
                    assert!(
                        epoch >= last_epoch,
                        "epoch went back: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    seen.push((epoch, relevance));
                }
                seen
            }));
        }

        // Publisher: 12 rebuilds, each registered before it can serve.
        let weights = Arc::clone(&weight_of_epoch);
        let publisher_handle = Arc::clone(&handle);
        let publisher = scope.spawn(move || {
            for i in 0..PUBLISHES {
                let w = 10.0 * (i + 2) as f64;
                let snap = snapshot(w);
                weights.lock().unwrap().insert(snap.epoch(), w);
                publisher_handle.publish(snap);
                std::thread::sleep(Duration::from_millis(3));
            }
        });

        let mut all = Vec::new();
        for t in client_threads {
            all.extend(t.join().expect("client thread"));
        }
        publisher.join().expect("publisher");
        all
    });

    assert_eq!(observed.len(), CLIENTS * REQUESTS);
    let weights = weight_of_epoch.lock().unwrap();
    let mut distinct_epochs: Vec<u64> = Vec::new();
    for (epoch, relevance) in &observed {
        let expected = weights
            .get(epoch)
            .unwrap_or_else(|| panic!("response claimed unknown epoch {epoch}"));
        // The packed store quantizes scores; the weights are 10 apart,
        // so a torn response (epoch from one snapshot, scores from
        // another) would miss by ~10, not by quantization noise.
        assert!(
            (relevance - expected).abs() < 0.5,
            "epoch {epoch} expected relevance ~{expected}, got {relevance} — torn response"
        );
        if !distinct_epochs.contains(epoch) {
            distinct_epochs.push(*epoch);
        }
    }
    // Traffic actually overlapped a meaningful number of swaps.
    assert!(
        distinct_epochs.len() >= 3,
        "expected responses from several epochs, got {distinct_epochs:?}"
    );

    server.shutdown();
}

/// A deliberately tiny rank queue plus a slow coalescing window forces
/// admission control: some requests shed with 503 + Retry-After, none
/// hang, and the shed counter shows up in /metrics.
#[test]
fn tiny_queue_sheds_with_503_instead_of_hanging() {
    let handle = Arc::new(ServiceHandle::new(snapshot(10.0)));
    let server = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            workers: 8,
            queue_capacity: 2,
            batch_max_size: 4,
            batch_max_wait: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..16)
            .map(|_| {
                scope.spawn(move || {
                    let (status, headers, body) =
                        one_shot(addr, "POST", "/rank", Some(RANK_BODY)).expect("request");
                    if status == 503 {
                        assert!(
                            headers.iter().any(|(n, _)| n == "retry-after"),
                            "503 without Retry-After: {headers:?}"
                        );
                    } else {
                        assert_eq!(status, 200, "body: {body}");
                        parse_rank_response(&body);
                    }
                    status
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("client"))
            .collect()
    });

    let shed = statuses.iter().filter(|&&s| s == 503).count();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    assert_eq!(shed + served, 16);
    assert!(shed > 0, "tiny queue never shed: {statuses:?}");
    assert!(served > 0, "everything shed: {statuses:?}");

    let (status, _, metrics) = one_shot(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("ctxrank_shed_total"),
        "missing shed counter"
    );
    let shed_line = metrics
        .lines()
        .find(|l| l.starts_with("ctxrank_shed_total"))
        .expect("shed line");
    let reported: u64 = shed_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(reported >= shed as u64);

    server.shutdown();
}

#[test]
fn healthz_metrics_and_annotate_shapes() {
    let handle = Arc::new(ServiceHandle::new(snapshot(10.0)));
    let epoch = handle.epoch();
    let server = Server::start(Arc::clone(&handle), ServeConfig::default()).expect("start");
    let addr = server.local_addr();

    let (status, _, body) = one_shot(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).expect("healthz JSON");
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(epoch));

    let (status, _, body) = one_shot(
        addr,
        "POST",
        "/annotate",
        Some(r#"{"text": "Telescopes observing sunspot radiation."}"#),
    )
    .expect("annotate");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).expect("annotate JSON");
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(epoch));
    let terms = match v.get("terms") {
        Some(serde_json::Value::Seq(items)) => items.len(),
        other => panic!("terms missing: {other:?}"),
    };
    assert!(terms >= 3, "expected stemmed terms, got {terms}");
    // "sunspot" is the only snapshot-known term in the probe text.
    assert_eq!(v.get("context_terms").and_then(|c| c.as_u64()), Some(1));

    let mut conn = Conn::connect(addr).expect("connect");
    let (status, _, _) = conn
        .request("POST", "/rank", Some(RANK_BODY))
        .expect("rank");
    assert_eq!(status, 200);
    let (status, _, metrics) = conn.request("GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    for required in [
        "ctxrank_requests_total{endpoint=\"rank\"} 1",
        "ctxrank_requests_total{endpoint=\"healthz\"} 1",
        "ctxrank_shed_total 0",
        "ctxrank_queue_depth",
        &format!("ctxrank_snapshot_epoch {epoch}") as &str,
        "ctxrank_rank_batches_total 1",
        "ctxrank_request_latency_seconds_bucket{endpoint=\"rank\",le=\"+Inf\"} 1",
        "ctxrank_request_latency_seconds_count{endpoint=\"rank\"} 1",
    ] {
        assert!(
            metrics.contains(required),
            "metrics missing {required:?}:\n{metrics}"
        );
    }

    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_a_hang() {
    let handle = Arc::new(ServiceHandle::new(snapshot(10.0)));
    let server = Server::start(handle, ServeConfig::default()).expect("start");
    let addr = server.local_addr();

    let (status, _, _) = one_shot(addr, "POST", "/rank", Some("{not json")).expect("bad json");
    assert_eq!(status, 400);
    let (status, _, _) =
        one_shot(addr, "POST", "/rank", Some(r#"{"candidates": []}"#)).expect("no text");
    assert_eq!(status, 400);
    let (status, _, _) = one_shot(addr, "GET", "/nope", None).expect("404");
    assert_eq!(status, 404);
    let (status, _, _) = one_shot(addr, "DELETE", "/rank", None).expect("405");
    assert_eq!(status, 405);
    // The shutdown endpoint is opt-in and off by default.
    let (status, _, _) = one_shot(addr, "POST", "/admin/shutdown", None).expect("admin");
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_closes_the_port() {
    let handle = Arc::new(ServiceHandle::new(snapshot(10.0)));
    let server = Server::start(
        handle,
        ServeConfig {
            workers: 4,
            enable_shutdown_endpoint: true,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.local_addr();

    for _ in 0..5 {
        let (status, _, body) = one_shot(addr, "POST", "/rank", Some(RANK_BODY)).expect("rank");
        assert_eq!(status, 200, "{body}");
    }

    // The admin endpoint only *requests* shutdown; the owner drains.
    let (status, _, _) = one_shot(addr, "POST", "/admin/shutdown", None).expect("admin");
    assert_eq!(status, 200);
    server.wait_for_shutdown_request();
    server.shutdown();

    // Port is closed: a fresh connection must fail (refused), not hang.
    let err = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(err.is_err(), "listener still accepting after shutdown");
}

/// `POST /feedback` feeds the live §VIII adjuster — naive without a
/// rank, inverse-propensity-weighted with one once a table is
/// installed — and the metrics expose both the counter and the
/// propensity-coverage gauge.
#[test]
fn feedback_endpoint_feeds_the_online_adjuster() {
    let handle = Arc::new(ServiceHandle::new(snapshot(10.0)));
    let server = Server::start(Arc::clone(&handle), ServeConfig::default()).expect("start");
    let addr = server.local_addr();

    // Naive (rank-less) feedback is accepted before any table exists.
    let (status, _, body) = one_shot(
        addr,
        "POST",
        "/feedback",
        Some(r#"{"surface": "solar flares", "views": 200, "clicks": 20}"#),
    )
    .expect("naive feedback");
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("feedback JSON");
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("recorded"));
    assert_eq!(v.get("ranked").and_then(|r| r.as_bool()), Some(false));
    assert_eq!(v.get("propensity_ranks").and_then(|r| r.as_u64()), Some(0));

    // Install a decaying propensity table and send ranked feedback.
    handle.install_propensities(
        ctxrank_framework::PropensityTable::from_examination(
            &[1.0, 0.5, 0.25],
            ctxrank_framework::DEFAULT_WEIGHT_CAP,
        )
        .expect("table"),
    );
    let (status, _, body) = one_shot(
        addr,
        "POST",
        "/feedback",
        Some(r#"{"surface": "solar flares", "rank": 2, "views": 200, "clicks": 5}"#),
    )
    .expect("ranked feedback");
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("feedback JSON");
    assert_eq!(v.get("ranked").and_then(|r| r.as_bool()), Some(true));
    assert_eq!(v.get("propensity_ranks").and_then(|r| r.as_u64()), Some(3));

    // The adjuster actually absorbed both batches.
    assert!(handle.adjustment("solar flares") != 1.0);

    // Malformed bodies are 400s, never recorded.
    for bad in [
        "{not json",
        r#"{"views": 1, "clicks": 0}"#,
        r#"{"surface": "s", "clicks": 0}"#,
        r#"{"surface": "s", "views": 1}"#,
        r#"{"surface": "s", "views": 1, "clicks": 2}"#,
        r#"{"surface": "s", "views": 1, "clicks": 0, "rank": "top"}"#,
    ] {
        let (status, _, _) = one_shot(addr, "POST", "/feedback", Some(bad)).expect("bad body");
        assert_eq!(status, 400, "body {bad:?} should be rejected");
    }

    let (status, _, metrics) = one_shot(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    for required in [
        "ctxrank_feedback_total 2",
        "ctxrank_propensity_ranks 3",
        "ctxrank_requests_total{endpoint=\"feedback\"} 8",
    ] {
        assert!(
            metrics.contains(required),
            "metrics missing {required:?}:\n{metrics}"
        );
    }

    server.shutdown();
}
