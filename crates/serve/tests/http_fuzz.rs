//! Seeded malformed-header fuzz micro-suite against a live server.
//!
//! A generator mutates a valid request template in ways that are each
//! *guaranteed* to be malformed, fires the result at a real listening
//! server, and asserts the strict oracle from the fault-model contract:
//! every hostile request gets a complete 4xx response or a clean close
//! — never a hang, never a 5xx, never a panic. Afterwards the same
//! server must still answer a well-formed request with 200.
//!
//! Failures print the seed; replay with `CTXRANK_FAULT_SEED=<seed>`.

use ctxrank_faultsim::net::{send_raw, NetOutcome};
use ctxrank_faultsim::seed_from_env;
use ctxrank_features::{InterestFeatures, RelevantTerms};
use ctxrank_framework::{
    GlobalTidTable, PackedInterestStore, PackedRelevanceStore, ServiceHandle, Snapshot,
    SnapshotBuilder,
};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_serve::client::one_shot;
use ctxrank_serve::{ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn snapshot() -> Arc<Snapshot> {
    let interest = PackedInterestStore::build(&[(
        "solar flares".to_string(),
        InterestFeatures {
            freq_exact: 100,
            ..InterestFeatures::default()
        },
    )]);
    let mut tids = GlobalTidTable::new();
    let kw = RelevantTerms {
        terms: vec![(ctxrank_text::stem("sunspot"), 10.0)],
    };
    let relevance = PackedRelevanceStore::build(vec![("solar flares", &kw)], &mut tids);
    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[9] = (g + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("test snapshot")
}

/// xorshift64* — the same family the fault plans use.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Random printable-ish garbage with no whitespace, so it stays one
/// token when the parser splits on whitespace.
fn garbage_token(rng: &mut Rng, max_len: u64) -> Vec<u8> {
    let len = 1 + rng.below(max_len);
    (0..len)
        .map(|_| {
            let c = 0x21 + rng.below(0x5E) as u8; // '!'..='~'
            if c == b':' {
                b'@'
            } else {
                c
            }
        })
        .collect()
}

/// Build one guaranteed-malformed request. Every arm either breaks the
/// request line / a header in a way `read_request` rejects (4xx) or
/// truncates the stream (clean close / 400) — none can parse cleanly.
fn malformed_request(rng: &mut Rng) -> Vec<u8> {
    let mut wire = Vec::new();
    match rng.below(9) {
        // Garbage request line: one token, no path, no version.
        0 => {
            wire.extend_from_slice(&garbage_token(rng, 60));
            wire.extend_from_slice(b"\r\n\r\n");
        }
        // Method + path but a bogus version token.
        1 => {
            wire.extend_from_slice(b"GET /healthz ");
            wire.extend_from_slice(&garbage_token(rng, 20));
            wire.extend_from_slice(b"\r\n\r\n");
        }
        // Missing the version entirely.
        2 => {
            wire.extend_from_slice(b"POST /rank\r\n\r\n");
        }
        // Valid request line, header line without a colon.
        3 => {
            wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n");
            wire.extend_from_slice(&garbage_token(rng, 40));
            wire.extend_from_slice(b"\r\n\r\n");
        }
        // Non-numeric content-length.
        4 => {
            wire.extend_from_slice(b"POST /rank HTTP/1.1\r\ncontent-length: ");
            wire.extend_from_slice(&garbage_token(rng, 12));
            wire.extend_from_slice(b"\r\n\r\n");
        }
        // Overflowing or over-limit content-length.
        5 => {
            let claimed: u128 = if rng.below(2) == 0 {
                u128::from(u64::MAX) * 2 // does not parse as usize
            } else {
                (1u128 << 30) + rng.below(1 << 20) as u128 // parses, over cap
            };
            let head = format!("POST /rank HTTP/1.1\r\ncontent-length: {claimed}\r\n\r\n");
            wire.extend_from_slice(head.as_bytes());
        }
        // One header line larger than the whole head budget.
        6 => {
            wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\nx-junk: ");
            wire.extend(std::iter::repeat_n(b'j', 64 * 1024));
            wire.extend_from_slice(b"\r\n\r\n");
        }
        // Truncated mid-request: bytes then EOF before the blank line.
        7 => {
            let full = b"POST /rank HTTP/1.1\r\ncontent-type: application/json\r\n";
            let cut = 1 + rng.below(full.len() as u64 - 1) as usize;
            wire.extend_from_slice(&full[..cut]);
        }
        // Declared body longer than what is sent before EOF.
        _ => {
            wire.extend_from_slice(b"POST /rank HTTP/1.1\r\ncontent-length: 500\r\n\r\nshort");
        }
    }
    wire
}

#[test]
fn malformed_headers_always_get_4xx_or_a_clean_close() {
    let seed = seed_from_env(0xF022_BAD5);
    eprintln!("[http_fuzz] seed = {seed} (replay with CTXRANK_FAULT_SEED={seed})");
    let mut rng = Rng::new(seed);

    let handle = Arc::new(ServiceHandle::new(snapshot()));
    let server = Server::start(
        handle,
        ServeConfig {
            workers: 4,
            keep_alive_timeout: Duration::from_millis(500),
            request_deadline: Duration::from_millis(500),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    for case in 0..150u32 {
        let wire = malformed_request(&mut rng);
        let outcome = send_raw(addr, &wire, Duration::from_secs(5)).expect("send");
        match outcome {
            NetOutcome::Status(code) => assert!(
                (400..500).contains(&code),
                "case {case} (seed {seed}): expected 4xx, got {code} for {:?}",
                String::from_utf8_lossy(&wire[..wire.len().min(120)]),
            ),
            NetOutcome::Closed => {}
            NetOutcome::HungUp => panic!(
                "case {case} (seed {seed}): server hung on {:?}",
                String::from_utf8_lossy(&wire[..wire.len().min(120)]),
            ),
        }
    }

    // The storm must not have wedged the server: a good request works.
    let (status, _, body) = one_shot(
        addr,
        "POST",
        "/rank",
        Some(r#"{"text": "sunspot radiation", "candidates": ["solar flares"]}"#),
    )
    .expect("good request after fuzzing");
    assert_eq!(status, 200, "body: {body}");

    let (status, _, metrics) = one_shot(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("ctxrank_requests_total"));

    server.shutdown();
}
