//! Epoch-keyed result cache: serve head queries without touching the
//! ranker.
//!
//! At portal traffic the query mix is heavily Zipf-skewed — most `/rank`
//! calls recompute an answer the ranker produced milliseconds ago. This
//! cache sits in front of the micro-batcher and stores **rendered
//! response bodies** keyed `(epoch, query-hash)`:
//!
//! * **Invalidation by construction.** The publish epoch is part of the
//!   key, so a `SwapCell` publish invalidates the entire cache without
//!   any flush, TTL, or version counter: a probe for the new epoch
//!   cannot match an entry ranked under the old one. A cached body
//!   embeds the epoch that ranked it, and it is only ever returned to
//!   probes carrying that same epoch — stale reads are impossible, not
//!   merely unlikely.
//! * **O(1) publish.** Publishing touches the cache not at all. Entries
//!   of dead epochs are retired *lazily*: every shard records the epoch
//!   its entries belong to, and the first access carrying a newer epoch
//!   clears that shard. Until then the dead entries are unreachable
//!   (their epoch can never be probed again — epochs are process-wide
//!   monotone) and are bounded by the existing byte budget.
//! * **Sharded locking.** Keys are distributed over N mutex-striped
//!   shards by query-hash, so concurrent workers rarely contend; there
//!   is no global lock on the hot path.
//! * **CLOCK eviction.** Each shard holds a byte budget
//!   (`capacity_bytes / shards`). Inserting past the budget advances a
//!   clock hand that clears reference bits and evicts the first
//!   unreferenced entry — LRU-approximating, O(1) amortized, no linked
//!   lists.
//!
//! Hits, misses, evictions and resident bytes are exported through the
//! existing `/metrics` registry as `ctxrank_cache_{hits,misses,
//! evictions}_total` and `ctxrank_cache_bytes`.

use crate::metrics::Metrics;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Bookkeeping bytes charged per entry on top of the body itself
/// (key, map slot, clock state) so `ctxrank_cache_bytes` tracks real
/// memory, not just payload.
const ENTRY_OVERHEAD: usize = 96;

/// Stable 64-bit FNV-1a over the request's text and candidate list —
/// the query half of the `(epoch, query-hash)` cache key. Candidate
/// order is significant (it changes the response body's order too).
pub fn query_hash(text: &str, candidates: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Field separator: "ab"+"c" must not collide with "a"+"bc".
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(text.as_bytes());
    for c in candidates {
        eat(c.as_bytes());
    }
    h
}

struct Entry {
    qhash: u64,
    body: Arc<[u8]>,
    /// CLOCK reference bit: set on hit, cleared as the hand passes.
    referenced: bool,
}

impl Entry {
    fn cost(&self) -> usize {
        self.body.len() + ENTRY_OVERHEAD
    }
}

/// One mutex stripe. All entries in a shard belong to `epoch`; the key
/// space within the shard is just the query-hash.
struct Shard {
    /// Epoch of every resident entry. A probe or insert carrying a
    /// newer epoch retires the whole shard first (lazy invalidation).
    epoch: u64,
    /// query-hash → slot in `slots`.
    map: HashMap<u64, usize>,
    slots: Vec<Entry>,
    /// CLOCK hand: index into `slots` where the next eviction scan
    /// starts.
    hand: usize,
    /// Resident bytes (bodies + [`ENTRY_OVERHEAD`] each).
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            epoch: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            bytes: 0,
        }
    }

    /// Drop every resident entry (they belong to a dead epoch) and
    /// adopt `epoch`. Retirement is not an "eviction" in the metrics:
    /// evictions count capacity pressure, retirement counts nothing —
    /// the bytes gauge alone drops.
    fn retire(&mut self, epoch: u64, metrics: &Metrics) {
        if self.bytes > 0 {
            metrics.sub_cache_bytes(self.bytes as u64);
        }
        self.map.clear();
        self.slots.clear();
        self.hand = 0;
        self.bytes = 0;
        self.epoch = epoch;
    }

    /// Evict one unreferenced entry by CLOCK sweep. Returns false only
    /// on an empty shard.
    fn evict_one(&mut self, metrics: &Metrics) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            if self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand += 1;
                continue;
            }
            let victim = self.slots.swap_remove(self.hand);
            self.map.remove(&victim.qhash);
            // swap_remove moved the tail entry into the vacated slot;
            // its index changed, so fix the map.
            if let Some(moved) = self.slots.get(self.hand) {
                self.map.insert(moved.qhash, self.hand);
            }
            self.bytes -= victim.cost();
            metrics.sub_cache_bytes(victim.cost() as u64);
            metrics.record_cache_eviction();
            return true;
        }
    }
}

/// The sharded `(epoch, query-hash)` → rendered-body cache. Shared by
/// the worker pool (probes) and the batcher (inserts) behind an `Arc`.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Byte budget per shard: `capacity_bytes / shards`.
    shard_budget: usize,
}

impl ResultCache {
    /// A cache holding at most ~`capacity_bytes` across `shards` mutex
    /// stripes. Both are clamped to at least 1.
    pub fn new(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: (capacity_bytes / shards).max(1),
        }
    }

    /// Shard selection ignores the epoch on purpose: a query maps to
    /// the same stripe across publishes, which is what lets the stripe
    /// detect and retire a dead epoch on its next access.
    fn shard(&self, qhash: u64) -> &Mutex<Shard> {
        &self.shards[(qhash % self.shards.len() as u64) as usize]
    }

    /// Look up the rendered body for `(epoch, qhash)`. A hit is only
    /// possible when the resident entries were ranked by exactly
    /// `epoch`; an access carrying a newer epoch retires the shard's
    /// dead entries first. Probes carrying an *older* epoch than the
    /// shard (a publish raced this request) miss without disturbing the
    /// newer entries.
    pub fn get(&self, epoch: u64, qhash: u64, metrics: &Metrics) -> Option<Arc<[u8]>> {
        let mut s = self.shard(qhash).lock().expect("cache shard poisoned");
        if s.epoch != epoch {
            if epoch > s.epoch {
                s.retire(epoch, metrics);
            }
            metrics.record_cache_miss();
            return None;
        }
        match s.map.get(&qhash).copied() {
            Some(i) => {
                s.slots[i].referenced = true;
                metrics.record_cache_hit();
                Some(Arc::clone(&s.slots[i].body))
            }
            None => {
                metrics.record_cache_miss();
                None
            }
        }
    }

    /// Insert the body rendered for `(epoch, qhash)`. Bodies larger
    /// than a whole shard budget are not cached; inserts for an epoch
    /// older than the shard's are dropped (the answer is already
    /// obsolete).
    pub fn insert(&self, epoch: u64, qhash: u64, body: Arc<[u8]>, metrics: &Metrics) {
        let cost = body.len() + ENTRY_OVERHEAD;
        if cost > self.shard_budget {
            return;
        }
        let mut s = self.shard(qhash).lock().expect("cache shard poisoned");
        if epoch < s.epoch {
            return;
        }
        if epoch > s.epoch {
            s.retire(epoch, metrics);
        }
        if let Some(i) = s.map.get(&qhash).copied() {
            // Two workers missed the same query in one batch window;
            // identical (epoch, qhash) means an identical body, so keep
            // the resident one.
            s.slots[i].referenced = true;
            return;
        }
        while s.bytes + cost > self.shard_budget {
            if !s.evict_one(metrics) {
                break;
            }
        }
        let slot = s.slots.len();
        s.map.insert(qhash, slot);
        s.slots.push(Entry {
            qhash,
            body,
            referenced: false,
        });
        s.bytes += cost;
        metrics.add_cache_bytes(cost as u64);
    }

    /// Resident entries across all shards (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").slots.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes across all shards (the same quantity the
    /// `ctxrank_cache_bytes` gauge tracks incrementally).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<[u8]> {
        Arc::from(text.as_bytes())
    }

    #[test]
    fn query_hash_separates_fields_and_order() {
        let h = |t: &str, c: &[&str]| {
            let c: Vec<String> = c.iter().map(|s| s.to_string()).collect();
            query_hash(t, &c)
        };
        assert_eq!(h("a", &["b"]), h("a", &["b"]));
        assert_ne!(h("ab", &["c"]), h("a", &["bc"]));
        assert_ne!(h("a", &["b", "c"]), h("a", &["c", "b"]));
        assert_ne!(h("a", &[]), h("", &["a"]));
    }

    #[test]
    fn hit_after_insert_same_epoch_only() {
        let m = Metrics::default();
        let c = ResultCache::new(1 << 20, 4);
        let q = query_hash("doc", &[]);
        assert!(c.get(5, q, &m).is_none());
        c.insert(5, q, body("r5"), &m);
        assert_eq!(c.get(5, q, &m).as_deref(), Some(b"r5".as_slice()));
        // Epoch is part of the key: the next epoch misses by construction.
        assert!(c.get(6, q, &m).is_none());
        assert_eq!(m.cache_hits_total(), 1);
        assert_eq!(m.cache_misses_total(), 2);
    }

    #[test]
    fn newer_epoch_access_retires_dead_entries() {
        let m = Metrics::default();
        let c = ResultCache::new(1 << 20, 1);
        let q1 = query_hash("one", &[]);
        let q2 = query_hash("two", &[]);
        c.insert(1, q1, body("a"), &m);
        c.insert(1, q2, body("b"), &m);
        assert_eq!(c.len(), 2);
        let resident = m.cache_bytes();
        assert!(resident > 0);
        assert_eq!(resident as usize, c.bytes());
        // A probe carrying the next epoch clears the (single) shard.
        assert!(c.get(2, q1, &m).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(m.cache_bytes(), 0);
        // Retirement is not eviction.
        assert_eq!(m.cache_evictions_total(), 0);
    }

    #[test]
    fn old_epoch_probe_and_insert_do_not_disturb_newer_entries() {
        let m = Metrics::default();
        let c = ResultCache::new(1 << 20, 1);
        let q = query_hash("doc", &[]);
        c.insert(7, q, body("new"), &m);
        // A straggler that read the epoch just before a publish:
        assert!(c.get(6, q, &m).is_none());
        c.insert(6, q, body("stale"), &m);
        assert_eq!(c.get(7, q, &m).as_deref(), Some(b"new".as_slice()));
    }

    #[test]
    fn clock_eviction_respects_budget_and_reference_bits() {
        let m = Metrics::default();
        // Budget fits exactly 3 of these entries per (single) shard.
        let one = 10 + ENTRY_OVERHEAD;
        let c = ResultCache::new(3 * one, 1);
        let q: Vec<u64> = (0..4).map(|i| query_hash(&format!("q{i}"), &[])).collect();
        for &qh in q.iter().take(3) {
            c.insert(1, qh, body("0123456789"), &m);
        }
        assert_eq!(c.len(), 3);
        // Touch q0 and q2 so their reference bits protect them.
        assert!(c.get(1, q[0], &m).is_some());
        assert!(c.get(1, q[2], &m).is_some());
        c.insert(1, q[3], body("0123456789"), &m);
        assert_eq!(c.len(), 3);
        assert_eq!(m.cache_evictions_total(), 1);
        // The unreferenced q1 was the victim; the referenced ones and
        // the newcomer are resident.
        assert!(c.get(1, q[1], &m).is_none());
        assert!(c.get(1, q[0], &m).is_some());
        assert!(c.get(1, q[2], &m).is_some());
        assert!(c.get(1, q[3], &m).is_some());
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let m = Metrics::default();
        let c = ResultCache::new(64, 1);
        let q = query_hash("big", &[]);
        c.insert(1, q, Arc::from(vec![0u8; 4096].as_slice()), &m);
        assert!(c.get(1, q, &m).is_none());
        assert_eq!(m.cache_bytes(), 0);
    }

    #[test]
    fn duplicate_insert_keeps_bytes_stable() {
        let m = Metrics::default();
        let c = ResultCache::new(1 << 20, 2);
        let q = query_hash("doc", &[]);
        c.insert(3, q, body("same"), &m);
        let after_first = m.cache_bytes();
        c.insert(3, q, body("same"), &m);
        assert_eq!(m.cache_bytes(), after_first);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        let m = Metrics::default();
        let c = ResultCache::new(1 << 20, 8);
        for i in 0..256 {
            c.insert(1, query_hash(&format!("doc {i}"), &[]), body("x"), &m);
        }
        let occupied = c
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().slots.is_empty())
            .count();
        assert!(occupied >= 6, "hash skew: only {occupied}/8 shards used");
    }
}
