//! `ctxrank-serve` — the network front door for the §VI online ranker.
//!
//! The paper's Contextual Shortcuts platform is a *serving* system:
//! annotation and key-concept ranking run inside a user-facing page
//! pipeline at portal scale. Everything below the request boundary
//! already exists in this reproduction — the immutable [`Snapshot`]
//! artifact, the wait-free hot-swap [`ServiceHandle`], the batched
//! `rank_batch` API. This crate adds the boundary itself: a
//! **zero-external-dependency HTTP/1.1 server** on
//! `std::net::TcpListener` with
//!
//! * an acceptor + worker-thread pool (sized via `CTXRANK_THREADS`,
//!   like every pool in the workspace) behind a **bounded connection
//!   queue**;
//! * a **micro-batcher** that coalesces concurrent `POST /rank`
//!   requests into single `ServiceHandle::rank_batch_online` calls —
//!   one snapshot, one adjuster read, one epoch per batch, so clients
//!   can never observe a torn response across a hot-swap;
//! * **load shedding**: either bound filling yields an immediate `503`
//!   with `Retry-After`, never unbounded memory;
//! * an optional **epoch-keyed result cache** ([`cache`]) probed by
//!   workers before the batcher — publishes invalidate by construction
//!   because the epoch is part of the key, so there are no TTLs and no
//!   stale reads;
//! * `GET /healthz`, `GET /metrics` (Prometheus text format), `POST
//!   /annotate`, and graceful **drain on shutdown** (stop accepting,
//!   finish queued work, close).
//!
//! See `DESIGN.md` §10 for the architecture diagram and the metrics
//! catalogue, and `examples/serve_demo.rs` for an end-to-end demo
//! binary.
//!
//! [`Snapshot`]: ctxrank_framework::Snapshot
//! [`ServiceHandle`]: ctxrank_framework::ServiceHandle

pub mod batcher;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod server;

pub use batcher::{Batcher, RankJob, SubmitError};
pub use cache::{query_hash, ResultCache};
pub use client::{
    one_shot, request_classified, request_with_retry, ClientConfig, Conn, RequestError,
    RequestErrorKind,
};
pub use metrics::{Endpoint, Metrics, LATENCY_BUCKETS_SECS};
pub use server::{render_rank_response, render_rank_response_sharded, ServeConfig, Server};
