//! A minimal blocking HTTP/1.1 client for loopback use: integration
//! tests, the throughput bench, and `perf_report` all talk to the
//! server through this instead of each hand-rolling socket code.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// `(status, lowercased headers, body)` of one response.
pub type HttpReply = (u16, Vec<(String, String)>, String);

/// A keep-alive connection to the server.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Scratch for status/header lines, reused across requests.
    line: String,
}

impl Conn {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            line: String::new(),
        })
    }

    /// Send one request and read the full response. `body = None` sends
    /// no body (GET). Returns `(status, headers, body)`; header names
    /// are lowercased.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpReply> {
        let body = body.unwrap_or("");
        // One buffer, one write syscall per request.
        let wire = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpReply> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(bad("connection closed before status line"));
        }
        let status: u16 = self
            .line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let line = self.line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?;
        Ok((status, headers, body))
    }
}

/// One request over a fresh connection (the "one request per
/// connection" baseline in the loopback bench).
pub fn one_shot(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpReply> {
    Conn::connect(addr)?.request(method, path, body)
}
