//! A minimal blocking HTTP/1.1 client for loopback use: integration
//! tests, the throughput bench, and `perf_report` all talk to the
//! server through this instead of each hand-rolling socket code.
//!
//! [`Conn::connect_with`] / [`request_with_retry`] add the hardening a
//! client facing a faulty network needs: connect and read timeouts (a
//! hung server fails the call instead of freezing the caller), a cap on
//! response size (a runaway `Content-Length` cannot balloon memory),
//! and bounded retries with jittered exponential backoff. The jitter is
//! seeded, so a test that retries is as replayable as one that does
//! not.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// `(status, lowercased headers, body)` of one response.
pub type HttpReply = (u16, Vec<(String, String)>, String);

/// Client-side limits and retry policy.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout — a server that stops sending mid-response
    /// fails the request instead of hanging the caller.
    pub read_timeout: Duration,
    /// Ceiling on `Content-Length` the client will buffer.
    pub max_response_bytes: usize,
    /// Extra attempts after the first (0 = no retries).
    pub retries: u32,
    /// Backoff before retry `n` (1-based) is `base · 2^(n-1)` plus up
    /// to 50% seeded jitter.
    pub backoff_base: Duration,
    /// Seed for backoff jitter: deterministic sleeps, replayable tests.
    pub jitter_seed: u64,
    /// Ceiling on how long an advertised `Retry-After` may hold the
    /// client. A shedding server chooses the hint; this keeps a
    /// misconfigured (or hostile) one from parking us for minutes.
    pub max_retry_after: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            max_response_bytes: 8 * 1024 * 1024,
            retries: 2,
            backoff_base: Duration::from_millis(20),
            jitter_seed: 0x5EED,
            max_retry_after: Duration::from_secs(5),
        }
    }
}

/// A keep-alive connection to the server.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_response_bytes: usize,
    /// Scratch for status/header lines, reused across requests.
    line: String,
}

impl Conn {
    /// Connect with no timeouts and no response-size cap — the
    /// happy-path constructor the bench and tests on a healthy loopback
    /// use.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, usize::MAX)
    }

    /// Connect under `config`: bounded connect time, bounded read time,
    /// bounded response size.
    pub fn connect_with(addr: SocketAddr, config: &ClientConfig) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        Self::from_stream(stream, config.max_response_bytes)
    }

    fn from_stream(stream: TcpStream, max_response_bytes: usize) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            max_response_bytes,
            line: String::new(),
        })
    }

    /// Send one request and read the full response. `body = None` sends
    /// no body (GET). Returns `(status, headers, body)`; header names
    /// are lowercased.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpReply> {
        let body = body.unwrap_or("");
        // One buffer, one write syscall per request.
        let wire = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpReply> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(bad("connection closed before status line"));
        }
        let status: u16 = self
            .line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let line = self.line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        if content_length > self.max_response_bytes {
            return Err(bad("response exceeds max_response_bytes"));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?;
        Ok((status, headers, body))
    }
}

/// What a failed backend request *means*, separated from the raw
/// transport error. The scatter-gather router keys its policy off this:
/// a refused connect says the process is gone (fail over to the replica
/// immediately and count the backend down), a blown deadline says the
/// process may be alive but late (fail over, but the backend stays in
/// rotation), anything else is an in-flight transport fault (failed
/// mid-exchange — also fail over, the endpoints are idempotent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestErrorKind {
    /// The backend actively refused (or could not be reached for) the
    /// TCP connect: nothing is listening.
    ConnectRefused,
    /// The connect or read budget elapsed: the backend never finished
    /// answering inside the deadline.
    DeadlineExceeded,
    /// Any other transport or protocol failure (reset mid-response,
    /// malformed reply, oversized body, ...).
    Transport,
}

impl RequestErrorKind {
    /// Stable label for metrics/logs.
    pub fn label(self) -> &'static str {
        match self {
            RequestErrorKind::ConnectRefused => "connect_refused",
            RequestErrorKind::DeadlineExceeded => "deadline_exceeded",
            RequestErrorKind::Transport => "transport",
        }
    }
}

/// A failed request annotated with *which* backend failed and *how* —
/// the per-shard identity a fan-out caller needs to route around the
/// failure instead of just reporting it.
#[derive(Debug)]
pub struct RequestError {
    /// The backend the request was addressed to.
    pub backend: SocketAddr,
    /// The routing-relevant classification of the failure.
    pub kind: RequestErrorKind,
    /// The underlying transport error.
    pub source: std::io::Error,
}

impl RequestError {
    /// Classify a raw transport error from `backend`.
    pub fn classify(backend: SocketAddr, source: std::io::Error) -> Self {
        use std::io::ErrorKind;
        let kind = match source.kind() {
            ErrorKind::ConnectionRefused => RequestErrorKind::ConnectRefused,
            // Read timeouts surface as `WouldBlock` on unix sockets and
            // `TimedOut` from `connect_timeout`; both mean the deadline
            // elapsed.
            ErrorKind::TimedOut | ErrorKind::WouldBlock => RequestErrorKind::DeadlineExceeded,
            _ => RequestErrorKind::Transport,
        };
        Self {
            backend,
            kind,
            source,
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request to {} failed ({}): {}",
            self.backend,
            self.kind.label(),
            self.source
        )
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One request under `config` with failures classified per-backend —
/// the router's fan-out primitive. No retries here: the caller decides
/// between retrying this backend and failing over based on the error's
/// [`RequestErrorKind`].
pub fn request_classified(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    config: &ClientConfig,
) -> Result<HttpReply, RequestError> {
    Conn::connect_with(addr, config)
        .and_then(|mut c| c.request(method, path, body))
        .map_err(|e| RequestError::classify(addr, e))
}

/// One request over a fresh connection (the "one request per
/// connection" baseline in the loopback bench).
pub fn one_shot(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpReply> {
    Conn::connect(addr)?.request(method, path, body)
}

/// Deterministic jitter stream for backoff sleeps — a private xorshift
/// so the client never depends on the faultsim crate.
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        // Displace seed 0 off the xorshift fixed point.
        if self.0 == 0 {
            self.0 = 0x9E37_79B9_7F4A_7C15;
        }
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Is this request worth retrying on a fresh connection? Transport
/// failures and explicit back-pressure (503) are; definitive responses
/// (2xx–4xx) are the server's answer, not a fault.
fn retryable(result: &std::io::Result<HttpReply>) -> bool {
    match result {
        Ok((status, _, _)) => *status == 503,
        Err(_) => true,
    }
}

/// The `Retry-After` delay a 503 advertises, if it carries one the
/// delta-seconds way the server emits it (the HTTP-date form is not
/// parsed — it reads as absent and the client falls back to backoff).
fn retry_after_secs(headers: &[(String, String)]) -> Option<u64> {
    headers
        .iter()
        .find(|(name, _)| name == "retry-after")
        .and_then(|(_, value)| value.trim().parse().ok())
}

/// One request under `config`, retried up to `config.retries` extra
/// times on transport errors and 503s, each attempt on a fresh
/// connection. A 503 carrying `Retry-After` sleeps exactly the
/// advertised delay (capped at `config.max_retry_after`) — the server
/// knows its queue better than our backoff curve does. Everything else
/// sleeps a jittered exponential backoff. Returns the last attempt's
/// outcome.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    config: &ClientConfig,
) -> std::io::Result<HttpReply> {
    let mut jitter = Jitter(config.jitter_seed);
    let mut attempt = 0u32;
    loop {
        let result =
            Conn::connect_with(addr, config).and_then(|mut c| c.request(method, path, body));
        if attempt >= config.retries || !retryable(&result) {
            return result;
        }
        attempt += 1;
        let advertised = match &result {
            Ok((503, headers, _)) => retry_after_secs(headers),
            _ => None,
        };
        let sleep = match advertised {
            Some(secs) => Duration::from_secs(secs).min(config.max_retry_after),
            None => {
                let base = config
                    .backoff_base
                    .saturating_mul(1 << (attempt - 1).min(16));
                // Up to +50% jitter so synchronized retriers spread out.
                let extra = base.as_micros() as u64 / 2;
                base + Duration::from_micros(if extra == 0 { 0 } else { jitter.next() % extra })
            }
        };
        std::thread::sleep(sleep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = Jitter(7);
        let mut b = Jitter(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = Jitter(8);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn zero_seed_still_produces_a_stream() {
        let mut j = Jitter(0);
        assert_ne!(j.next(), 0);
        assert_ne!(j.next(), j.next());
    }

    #[test]
    fn retryable_judgments() {
        assert!(retryable(&Err(std::io::Error::other("reset"))));
        assert!(retryable(&Ok((503, Vec::new(), String::new()))));
        assert!(!retryable(&Ok((200, Vec::new(), String::new()))));
        assert!(!retryable(&Ok((400, Vec::new(), String::new()))));
        assert!(!retryable(&Ok((408, Vec::new(), String::new()))));
    }

    /// A server that drops the first connection and answers the second:
    /// the retry path must recover transparently.
    #[test]
    fn retry_recovers_from_a_dropped_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: accept and slam shut.
            let (first, _) = listener.accept().expect("accept 1");
            drop(first);
            // Second: answer properly.
            let (mut s, _) = listener.accept().expect("accept 2");
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok")
                .expect("write");
        });
        let config = ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let (status, _, body) =
            request_with_retry(addr, "GET", "/healthz", None, &config).expect("retried ok");
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        server.join().expect("server");
    }

    /// Zero retries: the first failure is the answer.
    #[test]
    fn no_retries_means_one_attempt() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().expect("accept");
            drop(first);
        });
        let config = ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        };
        assert!(request_with_retry(addr, "GET", "/healthz", None, &config).is_err());
        server.join().expect("server");
    }

    #[test]
    fn retry_after_parsing() {
        let h = |v: &str| vec![("retry-after".to_string(), v.to_string())];
        assert_eq!(retry_after_secs(&h("3")), Some(3));
        assert_eq!(retry_after_secs(&h(" 0 ")), Some(0));
        // HTTP-date form and garbage both fall back to backoff.
        assert_eq!(retry_after_secs(&h("Fri, 08 Aug 2026 00:00:00 GMT")), None);
        assert_eq!(retry_after_secs(&h("-1")), None);
        assert_eq!(retry_after_secs(&[]), None);
        assert_eq!(
            retry_after_secs(&[("content-type".to_string(), "3".to_string())]),
            None
        );
    }

    /// A 503 with `retry-after: 0` must override the (here, enormous)
    /// exponential backoff: the whole retry completes in well under the
    /// 2 s the backoff alone would cost.
    #[test]
    fn retry_after_overrides_backoff() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept 1");
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nretry-after: 0\r\ncontent-length: 0\r\n\r\n",
            )
            .expect("write 503");
            drop(s);
            let (mut s, _) = listener.accept().expect("accept 2");
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok")
                .expect("write 200");
        });
        let config = ClientConfig {
            retries: 1,
            // So slow that landing under the deadline proves the
            // advertised delay was honored instead.
            backoff_base: Duration::from_secs(2),
            ..ClientConfig::default()
        };
        let start = std::time::Instant::now();
        let (status, _, body) =
            request_with_retry(addr, "GET", "/healthz", None, &config).expect("retried ok");
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "Retry-After: 0 was not honored; took {:?}",
            start.elapsed()
        );
        server.join().expect("server");
    }

    /// An absurd advertised delay is capped at `max_retry_after`, so a
    /// misbehaving server cannot park the client.
    #[test]
    fn retry_after_is_capped() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept 1");
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nretry-after: 9999\r\ncontent-length: 0\r\n\r\n",
            )
            .expect("write 503");
            drop(s);
            let (mut s, _) = listener.accept().expect("accept 2");
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok")
                .expect("write 200");
        });
        let config = ClientConfig {
            retries: 1,
            max_retry_after: Duration::from_millis(10),
            ..ClientConfig::default()
        };
        let start = std::time::Instant::now();
        let (status, _, _) =
            request_with_retry(addr, "GET", "/healthz", None, &config).expect("retried ok");
        assert_eq!(status, 200);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "retry-after: 9999 was not capped; took {:?}",
            start.elapsed()
        );
        server.join().expect("server");
    }

    /// Nothing listening: the typed error says `ConnectRefused` and
    /// names the backend, so a router can take the replica immediately.
    #[test]
    fn classified_connect_refused() {
        // Bind then drop to get a port with nothing listening.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let config = ClientConfig {
            connect_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        };
        let err = request_classified(addr, "GET", "/healthz", None, &config)
            .expect_err("no listener must fail");
        assert_eq!(err.kind, RequestErrorKind::ConnectRefused, "{err}");
        assert_eq!(err.backend, addr);
        assert_eq!(err.kind.label(), "connect_refused");
    }

    /// A backend that accepts and then goes silent: the typed error
    /// says `DeadlineExceeded` once the read budget elapses.
    #[test]
    fn classified_deadline_exceeded() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            // Read the request, answer nothing, hold the socket open
            // past the client's deadline.
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            std::thread::sleep(Duration::from_millis(300));
        });
        let config = ClientConfig {
            read_timeout: Duration::from_millis(50),
            ..ClientConfig::default()
        };
        let err = request_classified(addr, "GET", "/healthz", None, &config)
            .expect_err("silent backend must time out");
        assert_eq!(err.kind, RequestErrorKind::DeadlineExceeded, "{err}");
        assert_eq!(err.backend, addr);
        server.join().expect("server");
    }

    /// A backend that accepts and slams the connection shut mid-exchange
    /// is a plain transport fault, not a refused connect or a timeout.
    #[test]
    fn classified_transport_fault() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().expect("accept");
            drop(s);
        });
        let config = ClientConfig::default();
        let err = request_classified(addr, "GET", "/healthz", None, &config)
            .expect_err("dropped connection must fail");
        assert_eq!(err.kind, RequestErrorKind::Transport, "{err}");
        server.join().expect("server");
    }

    /// An absurd Content-Length is refused before allocation.
    #[test]
    fn oversized_response_is_refused() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 999999999\r\n\r\n")
                .expect("write");
        });
        let config = ClientConfig {
            max_response_bytes: 1024,
            retries: 0,
            ..ClientConfig::default()
        };
        let err = request_with_retry(addr, "GET", "/big", None, &config);
        assert!(err.is_err(), "unbounded response accepted: {err:?}");
        server.join().expect("server");
    }
}
