//! Live serving metrics, rendered in Prometheus text format.
//!
//! Everything is a plain atomic — no locks on the request path, no
//! allocation until `/metrics` renders. The histogram buckets are fixed
//! at compile time (Prometheus-style cumulative `le` buckets), so two
//! scrapes are always comparable and the exporter needs no state.

use std::sync::atomic::{AtomicU64, Ordering};

/// Endpoints that get their own counter + latency histogram. `Other`
/// absorbs 404s and bad requests so abuse is visible too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Rank,
    Annotate,
    Feedback,
    Healthz,
    Metrics,
    Other,
}

impl Endpoint {
    pub const ALL: [Endpoint; 6] = [
        Endpoint::Rank,
        Endpoint::Annotate,
        Endpoint::Feedback,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Rank => "rank",
            Endpoint::Annotate => "annotate",
            Endpoint::Feedback => "feedback",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Rank => 0,
            Endpoint::Annotate => 1,
            Endpoint::Feedback => 2,
            Endpoint::Healthz => 3,
            Endpoint::Metrics => 4,
            Endpoint::Other => 5,
        }
    }
}

/// Upper bounds of the latency buckets, in seconds. Spans sub-100µs
/// cache hits to multi-second pathologies; the final implicit bucket is
/// `+Inf`.
pub const LATENCY_BUCKETS_SECS: [f64; 12] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
];

#[derive(Default)]
struct Histogram {
    /// One slot per finite bucket plus the `+Inf` slot. Stored
    /// non-cumulative; cumulated at render time.
    buckets: [AtomicU64; LATENCY_BUCKETS_SECS.len() + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn observe(&self, secs: f64) {
        let slot = LATENCY_BUCKETS_SECS
            .iter()
            .position(|&ub| secs <= ub)
            .unwrap_or(LATENCY_BUCKETS_SECS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((secs * 1e6) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// The server's metric registry. One instance per [`crate::Server`],
/// shared by acceptor, workers and the batcher.
#[derive(Default)]
pub struct Metrics {
    requests: [AtomicU64; Endpoint::ALL.len()],
    latency: [Histogram; Endpoint::ALL.len()],
    /// Requests refused with 503 because a bound was hit (connection
    /// backlog or rank queue).
    shed: AtomicU64,
    /// Rank jobs currently queued in the micro-batcher.
    queue_depth: AtomicU64,
    /// Micro-batches executed, and documents they carried — the ratio
    /// is the realized batch size.
    batches: AtomicU64,
    batched_docs: AtomicU64,
    /// Requests that blew the per-request deadline (answered 408).
    timeouts: AtomicU64,
    /// Connections dropped on a transport error mid-request (resets,
    /// truncated sends). Idle keep-alive closes are not counted.
    io_errors: AtomicU64,
    /// Result-cache outcomes: a hit answers from the rendered body
    /// without touching the batcher or the ranker.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Entries evicted under capacity pressure (CLOCK sweep). Lazy
    /// dead-epoch retirement is *not* counted here — it only moves the
    /// bytes gauge.
    cache_evictions: AtomicU64,
    /// Resident cache bytes (bodies + per-entry overhead).
    cache_bytes: AtomicU64,
    /// Time a `/rank` job spent queued: accept to batcher dispatch.
    /// Separates "we queued too long" from "ranking was slow" when an
    /// SLO is missed.
    queue_wait: Histogram,
    /// Sealed click-log events not yet folded into the served snapshot
    /// (newest sealed segment vs. served epoch).
    ingest_lag_events: AtomicU64,
    /// Incremental delta publishes applied to the served snapshot.
    delta_publishes: AtomicU64,
    /// Bytes across live sealed click-log segments.
    segment_bytes: AtomicU64,
    /// Feedback batches accepted through `POST /feedback` and folded
    /// into the online §VIII adjuster.
    feedback: AtomicU64,
    /// Ranks covered by the installed propensity table (0 = naive, no
    /// IPW reweighting). Refreshed from the live handle at scrape time.
    propensity_ranks: AtomicU64,
}

impl Metrics {
    pub fn record_request(&self, ep: Endpoint, secs: f64) {
        self.requests[ep.index()].fetch_add(1, Ordering::Relaxed);
        self.latency[ep.index()].observe(secs);
    }

    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub fn requests_total(&self, ep: Endpoint) -> u64 {
        self.requests[ep.index()].load(Ordering::Relaxed)
    }

    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    pub fn record_batch(&self, docs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_docs.fetch_add(docs as u64, Ordering::Relaxed);
    }

    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn timeout_total(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    pub fn record_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn io_error_total(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_cache_bytes(&self, bytes: u64) {
        self.cache_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn sub_cache_bytes(&self, bytes: u64) {
        self.cache_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn cache_hits_total(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    pub fn cache_misses_total(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    pub fn cache_evictions_total(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes.load(Ordering::Relaxed)
    }

    /// Observe one job's accept→dispatch wait.
    pub fn record_queue_wait(&self, secs: f64) {
        self.queue_wait.observe(secs);
    }

    /// Set the ingest lag: sealed events not yet in the served epoch.
    pub fn set_ingest_lag_events(&self, events: u64) {
        self.ingest_lag_events.store(events, Ordering::Relaxed);
    }

    pub fn ingest_lag_events(&self) -> u64 {
        self.ingest_lag_events.load(Ordering::Relaxed)
    }

    /// Count one incremental delta publish.
    pub fn record_delta_publish(&self) {
        self.delta_publishes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn delta_publish_total(&self) -> u64 {
        self.delta_publishes.load(Ordering::Relaxed)
    }

    /// Set the live sealed-segment footprint of the click log.
    pub fn set_segment_bytes(&self, bytes: u64) {
        self.segment_bytes.store(bytes, Ordering::Relaxed);
    }

    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes.load(Ordering::Relaxed)
    }

    /// Count one accepted feedback batch.
    pub fn record_feedback(&self) {
        self.feedback.fetch_add(1, Ordering::Relaxed);
    }

    pub fn feedback_total(&self) -> u64 {
        self.feedback.load(Ordering::Relaxed)
    }

    /// Set the rank coverage of the installed propensity table.
    pub fn set_propensity_ranks(&self, ranks: u64) {
        self.propensity_ranks.store(ranks, Ordering::Relaxed);
    }

    pub fn propensity_ranks(&self) -> u64 {
        self.propensity_ranks.load(Ordering::Relaxed)
    }

    /// Jobs with an observed queue wait (tests/benches).
    pub fn queue_wait_count(&self) -> u64 {
        self.queue_wait.count.load(Ordering::Relaxed)
    }

    /// Render the whole registry in Prometheus text exposition format.
    /// `epoch` is read from the live [`ctxrank_framework::ServiceHandle`]
    /// at scrape time so the gauge always names the snapshot actually
    /// being served.
    pub fn render_prometheus(&self, epoch: u64) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP ctxrank_requests_total Requests handled, by endpoint.\n");
        out.push_str("# TYPE ctxrank_requests_total counter\n");
        for ep in Endpoint::ALL {
            out.push_str(&format!(
                "ctxrank_requests_total{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                self.requests[ep.index()].load(Ordering::Relaxed)
            ));
        }

        out.push_str("# HELP ctxrank_shed_total Requests refused with 503 under load.\n");
        out.push_str("# TYPE ctxrank_shed_total counter\n");
        out.push_str(&format!(
            "ctxrank_shed_total {}\n",
            self.shed.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP ctxrank_timeout_total Requests that exceeded the per-request deadline.\n",
        );
        out.push_str("# TYPE ctxrank_timeout_total counter\n");
        out.push_str(&format!(
            "ctxrank_timeout_total {}\n",
            self.timeouts.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP ctxrank_io_error_total Connections dropped on a transport error mid-request.\n",
        );
        out.push_str("# TYPE ctxrank_io_error_total counter\n");
        out.push_str(&format!(
            "ctxrank_io_error_total {}\n",
            self.io_errors.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP ctxrank_cache_hits_total Rank requests answered from the result cache.\n",
        );
        out.push_str("# TYPE ctxrank_cache_hits_total counter\n");
        out.push_str(&format!(
            "ctxrank_cache_hits_total {}\n",
            self.cache_hits.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ctxrank_cache_misses_total Rank requests that missed the result cache.\n",
        );
        out.push_str("# TYPE ctxrank_cache_misses_total counter\n");
        out.push_str(&format!(
            "ctxrank_cache_misses_total {}\n",
            self.cache_misses.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ctxrank_cache_evictions_total Cache entries evicted under capacity pressure.\n",
        );
        out.push_str("# TYPE ctxrank_cache_evictions_total counter\n");
        out.push_str(&format!(
            "ctxrank_cache_evictions_total {}\n",
            self.cache_evictions.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP ctxrank_cache_bytes Resident result-cache bytes.\n");
        out.push_str("# TYPE ctxrank_cache_bytes gauge\n");
        out.push_str(&format!(
            "ctxrank_cache_bytes {}\n",
            self.cache_bytes.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ctxrank_queue_depth Rank jobs waiting in the micro-batcher.\n");
        out.push_str("# TYPE ctxrank_queue_depth gauge\n");
        out.push_str(&format!(
            "ctxrank_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ctxrank_snapshot_epoch Epoch of the snapshot being served.\n");
        out.push_str("# TYPE ctxrank_snapshot_epoch gauge\n");
        out.push_str(&format!("ctxrank_snapshot_epoch {epoch}\n"));

        out.push_str(
            "# HELP ctxrank_ingest_lag_events Sealed click-log events not yet folded into the served epoch.\n",
        );
        out.push_str("# TYPE ctxrank_ingest_lag_events gauge\n");
        out.push_str(&format!(
            "ctxrank_ingest_lag_events {}\n",
            self.ingest_lag_events.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP ctxrank_delta_publish_total Incremental delta publishes applied to the served snapshot.\n",
        );
        out.push_str("# TYPE ctxrank_delta_publish_total counter\n");
        out.push_str(&format!(
            "ctxrank_delta_publish_total {}\n",
            self.delta_publishes.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ctxrank_segment_bytes Bytes across live sealed click-log segments.\n");
        out.push_str("# TYPE ctxrank_segment_bytes gauge\n");
        out.push_str(&format!(
            "ctxrank_segment_bytes {}\n",
            self.segment_bytes.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP ctxrank_feedback_total Feedback batches folded into the online CTR adjuster.\n",
        );
        out.push_str("# TYPE ctxrank_feedback_total counter\n");
        out.push_str(&format!(
            "ctxrank_feedback_total {}\n",
            self.feedback.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP ctxrank_propensity_ranks Ranks covered by the installed propensity table (0 = naive).\n",
        );
        out.push_str("# TYPE ctxrank_propensity_ranks gauge\n");
        out.push_str(&format!(
            "ctxrank_propensity_ranks {}\n",
            self.propensity_ranks.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ctxrank_rank_batches_total Micro-batches executed.\n");
        out.push_str("# TYPE ctxrank_rank_batches_total counter\n");
        out.push_str(&format!(
            "ctxrank_rank_batches_total {}\n",
            self.batches.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ctxrank_rank_batched_docs_total Documents ranked through micro-batches.\n",
        );
        out.push_str("# TYPE ctxrank_rank_batched_docs_total counter\n");
        out.push_str(&format!(
            "ctxrank_rank_batched_docs_total {}\n",
            self.batched_docs.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP ctxrank_queue_wait_seconds Rank-job wait from accept to batcher dispatch.\n\
             # TYPE ctxrank_queue_wait_seconds histogram\n",
        );
        {
            let hist = &self.queue_wait;
            let mut cumulative = 0u64;
            for (i, ub) in LATENCY_BUCKETS_SECS.iter().enumerate() {
                cumulative += hist.buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "ctxrank_queue_wait_seconds_bucket{{le=\"{ub}\"}} {cumulative}\n"
                ));
            }
            cumulative += hist.buckets[LATENCY_BUCKETS_SECS.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "ctxrank_queue_wait_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "ctxrank_queue_wait_seconds_sum {}\n",
                hist.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "ctxrank_queue_wait_seconds_count {}\n",
                hist.count.load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP ctxrank_request_latency_seconds Request latency, by endpoint.\n\
             # TYPE ctxrank_request_latency_seconds histogram\n",
        );
        for ep in Endpoint::ALL {
            let hist = &self.latency[ep.index()];
            let mut cumulative = 0u64;
            for (i, ub) in LATENCY_BUCKETS_SECS.iter().enumerate() {
                cumulative += hist.buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "ctxrank_request_latency_seconds_bucket{{endpoint=\"{}\",le=\"{ub}\"}} {cumulative}\n",
                    ep.label()
                ));
            }
            cumulative += hist.buckets[LATENCY_BUCKETS_SECS.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "ctxrank_request_latency_seconds_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {cumulative}\n",
                ep.label()
            ));
            out.push_str(&format!(
                "ctxrank_request_latency_seconds_sum{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                hist.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
            ));
            out.push_str(&format!(
                "ctxrank_request_latency_seconds_count{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                hist.count.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_count_matches() {
        let m = Metrics::default();
        m.record_request(Endpoint::Rank, 0.00005); // first bucket
        m.record_request(Endpoint::Rank, 0.002); // mid bucket
        m.record_request(Endpoint::Rank, 5.0); // +Inf only
        let text = m.render_prometheus(7);
        assert!(text
            .contains("ctxrank_request_latency_seconds_bucket{endpoint=\"rank\",le=\"0.0001\"} 1"));
        assert!(text
            .contains("ctxrank_request_latency_seconds_bucket{endpoint=\"rank\",le=\"0.0025\"} 2"));
        assert!(text
            .contains("ctxrank_request_latency_seconds_bucket{endpoint=\"rank\",le=\"+Inf\"} 3"));
        assert!(text.contains("ctxrank_request_latency_seconds_count{endpoint=\"rank\"} 3"));
        assert!(text.contains("ctxrank_snapshot_epoch 7"));
    }

    #[test]
    fn counters_and_gauges_render() {
        let m = Metrics::default();
        m.record_shed();
        m.record_shed();
        m.set_queue_depth(5);
        m.record_batch(16);
        m.record_timeout();
        m.record_io_error();
        m.record_io_error();
        m.record_io_error();
        let text = m.render_prometheus(1);
        assert!(text.contains("ctxrank_shed_total 2"));
        assert!(text.contains("ctxrank_timeout_total 1"));
        assert!(text.contains("ctxrank_io_error_total 3"));
        assert_eq!(m.timeout_total(), 1);
        assert_eq!(m.io_error_total(), 3);
        assert!(text.contains("ctxrank_queue_depth 5"));
        assert!(text.contains("ctxrank_rank_batches_total 1"));
        assert!(text.contains("ctxrank_rank_batched_docs_total 16"));
        assert!(text.contains("ctxrank_requests_total{endpoint=\"metrics\"} 0"));
    }

    #[test]
    fn cache_counters_and_bytes_render() {
        let m = Metrics::default();
        m.record_cache_miss();
        m.record_cache_hit();
        m.record_cache_hit();
        m.record_cache_eviction();
        m.add_cache_bytes(500);
        m.sub_cache_bytes(120);
        let text = m.render_prometheus(1);
        assert!(text.contains("ctxrank_cache_hits_total 2"));
        assert!(text.contains("ctxrank_cache_misses_total 1"));
        assert!(text.contains("ctxrank_cache_evictions_total 1"));
        assert!(text.contains("ctxrank_cache_bytes 380"));
        assert_eq!(m.cache_hits_total(), 2);
        assert_eq!(m.cache_misses_total(), 1);
        assert_eq!(m.cache_evictions_total(), 1);
        assert_eq!(m.cache_bytes(), 380);
    }

    #[test]
    fn ingestion_metrics_render() {
        let m = Metrics::default();
        m.set_ingest_lag_events(42);
        m.record_delta_publish();
        m.record_delta_publish();
        m.set_segment_bytes(8192);
        let text = m.render_prometheus(3);
        assert!(text.contains("ctxrank_ingest_lag_events 42"));
        assert!(text.contains("ctxrank_delta_publish_total 2"));
        assert!(text.contains("ctxrank_segment_bytes 8192"));
        assert_eq!(m.ingest_lag_events(), 42);
        assert_eq!(m.delta_publish_total(), 2);
        assert_eq!(m.segment_bytes(), 8192);
        // The lag gauge is a set-style gauge: it can go back down.
        m.set_ingest_lag_events(0);
        assert!(m
            .render_prometheus(3)
            .contains("ctxrank_ingest_lag_events 0"));
    }

    #[test]
    fn feedback_and_propensity_metrics_render() {
        let m = Metrics::default();
        m.record_feedback();
        m.record_feedback();
        m.record_feedback();
        m.set_propensity_ranks(8);
        m.record_request(Endpoint::Feedback, 0.001);
        let text = m.render_prometheus(1);
        assert!(text.contains("ctxrank_feedback_total 3"));
        assert!(text.contains("ctxrank_propensity_ranks 8"));
        assert!(text.contains("ctxrank_requests_total{endpoint=\"feedback\"} 1"));
        assert_eq!(m.feedback_total(), 3);
        assert_eq!(m.propensity_ranks(), 8);
        // Gauge semantics: replacing the table can shrink coverage.
        m.set_propensity_ranks(0);
        assert!(m
            .render_prometheus(1)
            .contains("ctxrank_propensity_ranks 0"));
    }

    #[test]
    fn queue_wait_histogram_buckets_are_cumulative() {
        let m = Metrics::default();
        m.record_queue_wait(0.00005); // first bucket
        m.record_queue_wait(0.0004); // le=0.0005
        m.record_queue_wait(3.0); // +Inf only
        let text = m.render_prometheus(1);
        assert!(text.contains("ctxrank_queue_wait_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("ctxrank_queue_wait_seconds_bucket{le=\"0.0005\"} 2"));
        assert!(text.contains("ctxrank_queue_wait_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("ctxrank_queue_wait_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ctxrank_queue_wait_seconds_count 3"));
        assert_eq!(m.queue_wait_count(), 3);
    }
}
