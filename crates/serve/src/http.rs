//! A deliberately small HTTP/1.1 implementation on blocking sockets.
//!
//! The serving layer needs exactly four verbs of HTTP: read a request
//! line, read headers until the blank line, read `Content-Length` bytes
//! of body, write a response with a handful of headers. Everything else
//! (chunked encoding, multipart, TLS, HTTP/2) is out of scope — the
//! front door runs behind a load balancer in the deployment the paper
//! describes, and the reproduction keeps the workspace dependency-free.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Ceiling on the request line + headers, and on a request body. Both
/// exist so a malicious or broken client cannot make the server buffer
/// unbounded memory — the same principle as the bounded request queue.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// `Connection: keep-alive` semantics (HTTP/1.1 default unless the
    /// client sent `Connection: close`).
    pub keep_alive: bool,
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeouts on idle
    /// keep-alive connections — the caller closes quietly).
    Io(std::io::Error),
    /// The bytes on the wire are not an HTTP request we accept.
    BadRequest(&'static str),
    /// Head or body exceeded the fixed ceilings above.
    TooLarge,
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request off the connection. `Ok(None)` means the peer
/// closed cleanly between requests (normal end of a keep-alive
/// session).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, HttpError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut head_bytes = line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut keep_alive = true;
    // One scratch buffer for every header line, cleared between lines.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 {
            return Err(HttpError::BadRequest("connection closed mid-headers"));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        keep_alive,
        body,
    }))
}

/// One response, about to be written.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After` on a shed response.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, value: &serde_json::Value) -> Self {
        let body = serde_json::to_string(value)
            .unwrap_or_else(|_| "{}".to_string())
            .into_bytes();
        Self {
            status,
            content_type: "application/json",
            body,
            extra: Vec::new(),
        }
    }

    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra.push((name, value));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto the socket. `keep_alive` controls the
/// `Connection` header the client sees.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut wire = String::with_capacity(160 + resp.body.len());
    wire.push_str(&format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    ));
    for (name, value) in &resp.extra {
        wire.push_str(name);
        wire.push_str(": ");
        wire.push_str(value);
        wire.push_str("\r\n");
    }
    wire.push_str("\r\n");
    // Head and body go out in one write: one syscall per response, and
    // no risk of the head landing in its own TCP segment.
    let mut wire = wire.into_bytes();
    wire.extend_from_slice(&resp.body);
    stream.write_all(&wire)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Run `bytes` through a real loopback socket and parse.
    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let bytes = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&bytes).expect("write");
        });
        let (stream, _) = listener.accept().expect("accept");
        let out = read_request(&mut BufReader::new(stream));
        writer.join().expect("writer");
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /rank HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
            .expect("parse")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rank");
        assert!(req.keep_alive);
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("parse")
            .expect("some");
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn closed_connection_is_none() {
        assert!(parse(b"").expect("parse").is_none());
    }

    #[test]
    fn garbage_is_bad_request() {
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let head = format!("POST /rank HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 1 << 30);
        assert!(matches!(parse(head.as_bytes()), Err(HttpError::TooLarge)));
    }
}
